"""Quickstart: approximate an expensive-UDF selection with Intel-Sample.

The scenario mirrors the paper's running example: a table of loan applicants,
an expensive credit-check UDF, and a user who accepts 80% precision and recall
(with probability 0.8) in exchange for far fewer UDF calls.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CostLedger,
    IntelSample,
    NaiveBaseline,
    OptimalOracle,
    QueryConstraints,
    load_dataset,
)
from repro.stats.metrics import result_quality


def main() -> None:
    # A Lending-Club-like dataset (synthetic, calibrated to the paper's
    # published statistics).  scale=0.2 keeps the demo fast; use scale=1.0 for
    # the paper-sized 53,000-row table.
    dataset = load_dataset("lending_club", random_state=7, scale=0.2)
    udf = dataset.make_udf("credit_check", evaluation_cost=3.0)
    constraints = QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)
    truth = dataset.ground_truth_row_ids()

    print(f"dataset: {dataset.name}, {dataset.num_rows} rows, "
          f"selectivity {dataset.overall_selectivity:.2f}")
    print(f"constraints: precision>={constraints.alpha}, recall>={constraints.beta}, "
          f"probability>={constraints.rho}\n")

    # --- the paper's algorithm -------------------------------------------------
    ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
    result = IntelSample(random_state=1).answer(
        dataset.table, udf, constraints, ledger, correlated_column="grade"
    )
    quality = result_quality(result.row_ids, truth)
    report = result.metadata["report"]
    print("Intel-Sample")
    print(f"  returned tuples     : {len(result.row_ids)}")
    print(f"  UDF evaluations     : {ledger.evaluated_count}")
    print(f"  total cost          : {ledger.total_cost:.0f}")
    print(f"  achieved precision  : {quality.precision:.3f}")
    print(f"  achieved recall     : {quality.recall:.3f}")
    print(f"  sampled tuples      : {report.sample_size}")

    # --- baselines ----------------------------------------------------------------
    naive_ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
    NaiveBaseline(random_state=2).answer(
        dataset.table, dataset.make_udf("credit_check_naive"), constraints, naive_ledger
    )
    oracle_ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
    OptimalOracle(random_state=3).answer(
        dataset.table, dataset.make_udf("credit_check_oracle"), constraints,
        oracle_ledger, correlated_column="grade",
    )
    print("\nBaselines (UDF evaluations)")
    print(f"  Naive (evaluate a random 80%) : {naive_ledger.evaluated_count}")
    print(f"  Optimal oracle (exact stats)  : {oracle_ledger.evaluated_count}")

    savings = 1.0 - ledger.evaluated_count / naive_ledger.evaluated_count
    print(f"\nIntel-Sample saves {savings:.0%} of the UDF evaluations versus Naive.")


if __name__ == "__main__":
    main()
