"""Credit screening through the query layer (catalog + engine + strategy).

Shows the database-style workflow: register a table and an expensive UDF in a
catalog, describe the query declaratively (predicate + accuracy constraints),
and let the engine run either the exact plan or the approximate Intel-Sample
strategy.  The engine audits the approximate result against the ground truth
it secretly knows, mirroring the paper's evaluation protocol.

Run with::

    python examples/credit_screening_sql.py
"""

from __future__ import annotations

from repro import Catalog, Engine, IntelSample, SelectQuery, UdfPredicate, load_dataset
from repro.db.predicate import ColumnPredicate


def main() -> None:
    dataset = load_dataset("lending_club", random_state=11, scale=0.2)
    udf = dataset.make_udf("credit_check")

    catalog = Catalog()
    catalog.register_table(dataset.table)
    catalog.register_udf(udf)
    engine = Engine(catalog, retrieval_cost=1.0, evaluation_cost=3.0)

    # SELECT * FROM lending_club WHERE credit_check(id) = 1
    #   [precision >= 0.85, recall >= 0.75 with probability 0.8]
    query = SelectQuery(
        table=dataset.table.name,
        predicate=UdfPredicate(udf),
        alpha=0.85,
        beta=0.75,
        rho=0.8,
        correlated_column="grade",
    )
    print(query.describe(), "\n")

    exact = engine.execute_exact(query)
    print(f"exact execution     : {len(exact)} tuples, cost {exact.total_cost:.0f}")

    approximate = engine.execute(query, strategy=IntelSample(random_state=4), audit=True)
    print(
        f"Intel-Sample        : {len(approximate)} tuples, cost {approximate.total_cost:.0f}, "
        f"precision {approximate.quality.precision:.3f}, recall {approximate.quality.recall:.3f}"
    )
    print(f"cost saved          : {1 - approximate.total_cost / exact.total_cost:.0%}\n")

    # The same machinery composes with cheap predicates: pre-filter to large
    # loans, then screen the remaining applicants approximately.
    filtered_query = SelectQuery(
        table=dataset.table.name,
        predicate=UdfPredicate(udf),
        cheap_predicates=[ColumnPredicate("amount", ">", 12_000)],
        alpha=1.0,
        beta=1.0,
        rho=0.99,
    )
    filtered = engine.execute(filtered_query)
    print(
        f"with cheap filter   : {len(filtered)} large-loan applicants pass the credit check "
        f"(exact, cost {filtered.total_cost:.0f})"
    )


if __name__ == "__main__":
    main()
