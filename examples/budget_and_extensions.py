"""The Section 5 extensions: cost budgets, multiple UDFs, select-then-join.

Three self-contained mini-scenarios on the Census-like dataset:

1. **Budgeted recall** — "I can afford 5,000 cost units; find as many
   high-income people as possible at 80% precision."
2. **Two chained UDF predicates** — an income check *and* a consent check,
   with accuracy specified only on the conjunction.
3. **Select-then-join** — selected people are joined with a purchases table,
   so people with many purchases matter more to the join output's accuracy.

Run with::

    python examples/budget_and_extensions.py
"""

from __future__ import annotations

from repro import QueryConstraints, load_dataset
from repro.core.extensions.budget import solve_budgeted_recall
from repro.core.extensions.join import JoinGroup, solve_join_aware
from repro.core.extensions.multi_predicate import MultiPredicateGroup, solve_multi_predicate
from repro.core.groups import SelectivityModel
from repro.db.index import GroupIndex


def build_model(dataset) -> SelectivityModel:
    """Exact per-group selectivities (stands in for a sampling phase)."""
    index = GroupIndex(dataset.table, dataset.correlated_column)
    return SelectivityModel.from_ground_truth(index, dataset.ground_truth_row_ids())


def main() -> None:
    dataset = load_dataset("census", random_state=31, scale=0.2)
    model = build_model(dataset)
    print(f"dataset: {dataset.name}, {dataset.num_rows} rows, "
          f"{len(model)} groups under {dataset.correlated_column!r}\n")

    # 1. Budget-constrained recall maximisation.
    print("1) budgeted recall (precision >= 0.8 with probability 0.8)")
    for budget in (2_000.0, 8_000.0, 20_000.0):
        solution = solve_budgeted_recall(model, precision_bound=0.8, rho=0.8, budget=budget)
        print(
            f"   budget {budget:>8.0f}: expected recall {solution.expected_recall:.2f}, "
            f"expected cost {solution.expected_cost:.0f}"
        )

    # 2. Conjunction of two expensive predicates (income check AND consent check).
    print("\n2) two chained UDF predicates")
    groups = [
        MultiPredicateGroup(
            key=group.key,
            size=group.size,
            # income-check selectivity from the data; consent assumed ~70% everywhere.
            selectivities=(group.selectivity, 0.7),
        )
        for group in model
    ]
    solution = solve_multi_predicate(groups, QueryConstraints(alpha=0.7, beta=0.7, rho=0.8))
    print(f"   expected cost            : {solution.expected_cost:.0f}")
    print(f"   expected correct returned: {solution.expected_returned_correct:.0f}")
    for key, actions in list(solution.plan.action_probabilities.items())[:3]:
        print(f"   group {key!r}: {{" + ", ".join(
            f"{'+'.join('E' if a == 'evaluate' else 'A' for a in action)}: {p:.2f}"
            for action, p in actions.items()
        ) + "}")

    # 3. Selection followed by a join with a purchases table.
    print("\n3) select-then-join (tuples weighted by join fan-out)")
    join_groups = []
    for group in model:
        # Split each group into a high-fanout and a low-fanout half.
        half = max(1, group.size // 2)
        join_groups.append(JoinGroup((group.key, "many_purchases"), half, group.selectivity, 8.0))
        join_groups.append(JoinGroup((group.key, "few_purchases"), group.size - half, group.selectivity, 1.0))
    join_solution = solve_join_aware(join_groups, QueryConstraints(0.8, 0.8, 0.8))
    print(f"   expected cost                : {join_solution.expected_cost:.0f}")
    print(f"   expected correct join output : {join_solution.expected_output_correct:.0f}")
    heavy = join_solution.plan.decision((model.groups[0].key, "many_purchases"))
    light = join_solution.plan.decision((model.groups[0].key, "few_purchases"))
    print(
        f"   first group: retrieve prob {heavy.retrieve_probability:.2f} (fanout 8) "
        f"vs {light.retrieve_probability:.2f} (fanout 1)"
    )


if __name__ == "__main__":
    main()
