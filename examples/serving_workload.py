"""Serving a repeated query workload with statistics/plan caching.

A :class:`~repro.serving.QueryService` fronts a shared catalog and replays a
1000-query trace drawn from a handful of distinct query signatures — the
shape of real dashboard/API traffic, where the same few questions arrive
over and over with different clients behind them.  The service plans each
signature once, reuses the paid-for sampling evidence across constraint
variants, and executes everything on the library-wide default vectorised
:class:`~repro.core.BatchExecutor`.

Every layer shares one :class:`~repro.db.GroupIndex` per (table, column):
the cold pipeline builds it through :meth:`~repro.db.Table.group_index`,
warm plan-cache hits reuse the same object, and the example prints both the
serving-layer index hit rate and the *global* build counter so you can see
that a 1000-query trace groups each column exactly once.

Run with::

    python examples/serving_workload.py
    python examples/serving_workload.py --shards 8 --workers 4   # sharded + threads
    python examples/serving_workload.py --shards 8 --workers 4 --executor process
    python examples/serving_workload.py --churn 2                # 2% appends between batches
    python examples/serving_workload.py --async --clients 1000   # concurrent front-end
    python examples/serving_workload.py --persist /tmp/repro-db  # durable warm restart
    python examples/serving_workload.py --memory-budget 400000   # bounded-memory serving
    python examples/serving_workload.py --scale 20 --memory-budget 8000000  # ~1M rows

``--shards N`` splits the table into N contiguous shards
(:class:`~repro.db.ShardedTable`) and ``--workers W`` serves it on a
parallel executor backend — ``--executor thread`` (the default once
sharded) for GIL-releasing label-column work, ``--executor process`` for
true multi-core python-callable UDFs over shared-memory shards.  Results
are identical to the unsharded serial run (the coin discipline is layout-
and worker-invariant); only the wall-clock changes, and only helps on
multi-core hosts with large tables.

``--async`` replays the trace through :meth:`QueryService.submit_async`
with ``--clients N`` concurrent anonymous requests: same-signature cold
arrivals coalesce onto one in-flight execution (work done once, everyone
gets the same bitwise answer), over-limit arrivals would be shed with a
typed :class:`~repro.serving.Overloaded`, and the unified
:meth:`QueryService.stats` snapshot is printed afterwards.

``--churn P`` splits the trace into batches and appends ``P``% of the
table's rows (bootstrap-resampled from the existing data) between batches.
Each append bumps the table's data generation, so the first submit of every
warm signature afterwards takes the *refresh* path — statistics topped up
with delta-only UDF work, one re-solve — instead of a cold re-plan; the
example prints the warm-hit versus refresh counts so the effect is visible.

``--persist DIR`` runs the service with durable storage under ``DIR``:
after the replay the service is shut down (checkpointing the table into
checksummed column segments and the warm state — plan-cache entries,
statistics, UDF memo — under the atomic manifest), reopened from the
manifest as a fresh process would, and asked the hottest signature again.
The example prints cold-start versus warm-restart work counters side by
side: the restarted service answers with ``plan_cache: restored`` and
**zero** UDF evaluations, bitwise identical to the pre-shutdown warm run.

``--memory-budget BYTES`` demonstrates bounded-memory serving: the table is
checkpointed into durable column segments, reopened *lazily* behind a
:class:`~repro.db.residency.ResidencyManager` with the given byte budget,
and the hottest query is answered straight off disk — segments map on
first touch, clean least-recently-used mappings are evicted to stay under
budget, and the answer is bitwise identical to an unbounded in-memory run
at the same seed.  Pick a budget smaller than the printed segment bytes to
see evictions; ``--scale 20`` grows the table to ~1M rows for an
out-of-core-sized demonstration.

``--metrics`` switches on the global :mod:`repro.obs` registry and installs
a trace sink for the replay, then prints the registry snapshot (labelled
counters, per-path latency percentiles) and the slowest query's span tree —
works in every mode, including ``--churn`` (refresh spans) and
``--shards/--workers`` (per-shard spans).
"""

from __future__ import annotations

import argparse
import asyncio
import os
import tempfile
import time

from repro import (
    Catalog,
    Engine,
    GroupIndex,
    Overloaded,
    QueryService,
    SelectQuery,
    ServiceConfig,
    ShardedTable,
    UdfPredicate,
    load_dataset,
)
from repro.db.storage import CatalogStore
from repro.obs import CollectingTraceSink, disable_metrics, enable_metrics
from repro.stats.metrics import result_quality
from repro.stats.random import RandomState

TRACE_LENGTH = 1000
DISTINCT_CLIENTS = 8


def build_trace(dataset, udf, rng: RandomState):
    """A skewed trace over a few distinct signatures (hot queries dominate)."""
    signatures = [
        dict(alpha=0.8, beta=0.8, column="grade"),
        dict(alpha=0.9, beta=0.7, column="grade"),
        dict(alpha=0.7, beta=0.9, column="grade"),
        dict(alpha=0.8, beta=0.8, column="grade_band"),
        dict(alpha=0.85, beta=0.75, column=None),  # automatic column selection
    ]
    weights = [0.40, 0.25, 0.15, 0.12, 0.08]
    queries = [
        SelectQuery(
            table=dataset.table.name,
            predicate=UdfPredicate(udf),
            alpha=spec["alpha"],
            beta=spec["beta"],
            rho=0.8,
            correlated_column=spec["column"],
        )
        for spec in signatures
    ]
    picks = rng.choice(len(queries), size=TRACE_LENGTH, replace=True, p=weights)
    return [queries[int(i)] for i in picks]


def replay(service, trace, label, churn_percent=0.0, batches=4, rng=None):
    """Replay the trace; with churn, append rows between query batches."""
    table = service.catalog.table(trace[0].table)
    started = time.perf_counter()
    evaluations = 0
    batch_size = max(1, len(trace) // batches) if churn_percent else len(trace)
    for position, query in enumerate(trace):
        if churn_percent and position and position % batch_size == 0:
            appended = append_bootstrap_delta(table, churn_percent / 100.0, rng)
            print(f"  … appended {appended} rows (generation {table.data_generation})")
        result = service.submit(
            query,
            client_id=f"client_{position % DISTINCT_CLIENTS}",
            seed=10_000 + position,
        )
        evaluations += result.ledger.evaluated_count
    elapsed = time.perf_counter() - started
    print(f"{label}")
    print(f"  queries            : {len(trace)}")
    print(f"  wall time          : {elapsed:.2f}s  ({len(trace) / elapsed:,.0f} queries/sec)")
    print(f"  charged evaluations: {evaluations}")
    return elapsed


def replay_concurrent(service, trace, clients, label):
    """Fire ``clients`` concurrent anonymous requests through submit_async.

    Same-signature requests share a seed, so cold arrivals coalesce onto
    the leader's flight; everything else is a warm plan hit.
    """
    requests = [trace[i % len(trace)] for i in range(clients)]
    seeds: dict[int, int] = {}
    for query in requests:
        seeds.setdefault(id(query), 20_000 + len(seeds))

    async def herd():
        return await asyncio.gather(
            *[
                service.submit_async(query, seed=seeds[id(query)])
                for query in requests
            ],
            return_exceptions=True,
        )

    started = time.perf_counter()
    results = asyncio.run(herd())
    elapsed = time.perf_counter() - started
    shed = sum(1 for r in results if isinstance(r, Overloaded))
    answered = [r for r in results if not isinstance(r, BaseException)]
    coalesced = sum(1 for r in answered if r.metadata.get("coalesced"))
    print(f"{label}")
    print(f"  concurrent clients : {clients}")
    print(f"  wall time          : {elapsed:.2f}s  ({clients / elapsed:,.0f} queries/sec)")
    print(f"  answered           : {len(answered)}  (coalesced: {coalesced}, shed: {shed})")
    return elapsed


def append_bootstrap_delta(table, fraction, rng: RandomState):
    """Append ``fraction`` of the table's rows, bootstrap-resampled.

    Resampling existing rows (hidden label included) keeps the delta
    schema-exact and roughly distribution-preserving — the shape of real
    churn, where tomorrow's records look like today's.
    """
    count = max(1, int(round(table.num_rows * fraction)))
    picks = rng.choice(table.num_rows, size=count, replace=True)
    delta = {name: [] for name in table.schema.column_names}
    for row_id in picks:
        row = table.row(int(row_id), include_hidden=True)
        for name, value in row.items():
            delta[name].append(value)
    return table.append_columns(delta)


def demonstrate_restart(
    service, dataset, udf, hot, persist_dir, scale, backend, workers
) -> None:
    """Shut down (persisting), warm-restart from the manifest, contrast cold.

    The pre-shutdown warm run pins the seed the restart replays: warm
    execution draws per-request coins, so bitwise parity (and a fully
    covering UDF memo) holds against the warm run at the same seed.  The
    restarted service runs the *same* executor config — a restarted
    process reads the same config it crashed with, and the per-span coin
    streams (hence the memo's coverage) follow the execution layout.
    """
    seed = 424_242
    before = udf.counter_snapshot()
    warm = service.submit(hot, seed=seed)
    warm_evals = udf.counter_delta(before)["calls"]
    started = time.perf_counter()
    service.close()  # checkpoint + journal truncate + warm state: the commit
    persist_seconds = time.perf_counter() - started

    # Warm restart: reopen the catalog from the manifest, as a fresh
    # process would, and repeat the previously-served query.
    started = time.perf_counter()
    catalog, reports = CatalogStore(persist_dir).open()
    restart_udf = dataset.make_udf("credit_check")  # UDFs are code: re-registered
    catalog.register_udf(restart_udf)
    restarted = QueryService(
        Engine(catalog),
        config=ServiceConfig(
            executor=backend, max_workers=workers, storage_dir=persist_dir
        ),
    )
    repeated = SelectQuery(
        table=hot.table,
        predicate=UdfPredicate(restart_udf),
        alpha=hot.alpha,
        beta=hot.beta,
        rho=hot.rho,
        correlated_column=hot.correlated_column,
    )
    restored = restarted.submit(repeated, seed=seed)
    restart_seconds = time.perf_counter() - started
    restart_evals = restart_udf.counter_snapshot()["calls"]
    storage = restarted.stats().storage
    restarted.close()

    # Cold start: what a process without durable warm state pays for the
    # same query — re-ingest the source data and run the full pipeline.
    started = time.perf_counter()
    cold_dataset = load_dataset("lending_club", random_state=7, scale=scale)
    cold_udf = cold_dataset.make_udf("credit_check")
    cold_catalog = Catalog()
    cold_catalog.register_table(cold_dataset.table)
    cold_catalog.register_udf(cold_udf)
    cold_service = QueryService(Engine(cold_catalog))
    cold_service.submit(
        SelectQuery(
            table=cold_dataset.table.name,
            predicate=UdfPredicate(cold_udf),
            alpha=hot.alpha,
            beta=hot.beta,
            rho=hot.rho,
            correlated_column=hot.correlated_column,
        ),
        seed=seed,
    )
    cold_seconds = time.perf_counter() - started
    cold_evals = cold_udf.counter_snapshot()["calls"]
    cold_solves = cold_service.metrics()["solver_calls"]
    cold_service.close()

    print(f"\ndurable restart (--persist {persist_dir})")
    print(f"  persisted on close  : {persist_seconds:.2f}s "
          f"(tables: {', '.join(sorted(reports))})")
    print(f"  cold start          : {cold_seconds:.2f}s, "
          f"{cold_evals} UDF evaluations, {cold_solves} solver calls")
    print(f"  warm restart        : {restart_seconds:.2f}s, "
          f"{restart_evals} UDF evaluations, "
          f"plan_cache={restored.metadata['plan_cache']}")
    print(f"  restored from disk  : {storage['restored_plans']} plans, "
          f"{storage['restored_udf_memos']} UDF memo, "
          f"{storage['restore_errors']} restore errors")
    print(f"  pre-shutdown warm run: {warm_evals} UDF evaluations; "
          f"row ids identical after restart: "
          f"{list(restored.row_ids) == list(warm.row_ids)}")


def demonstrate_bounded_memory(dataset, table, args, backend) -> None:
    """Serve the hottest signature from durable segments under a byte budget.

    The table is checkpointed into its own staging store, reopened twice
    over the *same* segments — once eagerly (unbounded, fully resident)
    and once lazily behind a :class:`ResidencyManager` with the requested
    budget — and the same seeded query is submitted to both.  Eviction
    order is bitwise-invisible: the bounded run must return the identical
    row ids while its peak residency stays at (or, transiently, one pinned
    shard above) the budget.
    """
    from repro.db.residency import ResidencyManager

    budget = args.memory_budget
    directory = tempfile.mkdtemp(prefix="repro-budget-")
    staging = Catalog()
    staging.register_table(table)
    store = CatalogStore(directory)
    store.save(staging)
    segment_bytes = sum(
        entry.stat().st_size
        for name in store.table_names()
        for entry in os.scandir(store.table_store(name).segments_dir)
        if entry.is_file()
    )

    seed = 777_000

    def run(residency, budget_bytes):
        catalog, _ = CatalogStore(directory).open(residency=residency)
        udf = dataset.make_udf("credit_check")
        catalog.register_udf(udf)
        service = QueryService(
            Engine(catalog),
            config=ServiceConfig(
                executor=backend,
                max_workers=args.workers,
                memory_budget_bytes=budget_bytes,
            ),
        )
        query = SelectQuery(
            table=table.name,
            predicate=UdfPredicate(udf),
            alpha=0.8,
            beta=0.8,
            rho=0.8,
            correlated_column="grade",
        )
        result = service.submit(query, seed=seed)
        snapshot = service.stats().storage.get("residency")
        service.close()
        return result, snapshot

    unbounded, _ = run(None, None)
    bounded, snapshot = run(ResidencyManager(budget_bytes=budget), budget)

    print(f"\nbounded-memory serving (--memory-budget {budget:,})")
    print(f"  durable segment bytes : {segment_bytes:,} "
          f"({segment_bytes / budget:.1f}x the budget)")
    print(f"  peak resident bytes   : {snapshot['peak_resident_bytes']:,} "
          f"(budget {snapshot['budget_bytes']:,})")
    print(f"  segment maps          : {snapshot['maps']}  "
          f"evictions: {snapshot['evictions']}  refaults: {snapshot['refaults']}")
    print(f"  pressure level at end : {snapshot['pressure_level']}")
    print(f"  row ids bitwise equal to unbounded run: "
          f"{list(bounded.row_ids) == list(unbounded.row_ids)}")


def print_metrics_report(service, sink) -> None:
    """Print the registry snapshot, latency percentiles and slowest trace."""
    snapshot = service.metrics_snapshot()
    counters = snapshot["registry"].get("counters", {})
    print("\nobservability (--metrics)")
    print("  registry counters (top 12 by value):")
    ranked = sorted(counters.items(), key=lambda item: -item[1])[:12]
    for name, value in ranked:
        print(f"    {name:<58s} {value:>12,.0f}")
    print("  per-path latency (ms):")
    for path, stats in sorted(snapshot["latency_ms"].items()):
        if not stats["count"]:
            continue
        print(
            f"    {path:<10s} n={stats['count']:<5d} "
            f"p50={stats['p50_ms']:.3f}  p95={stats['p95_ms']:.3f}  "
            f"p99={stats['p99_ms']:.3f}  max={stats['max_ms']:.3f}"
        )
    slowest = sink.slowest()
    if slowest is not None:
        print(
            f"  slowest query: {slowest.name} query_id={slowest.query_id} "
            f"{slowest.duration_ms:.2f}ms"
        )
        for line in slowest.format_tree().splitlines():
            print(f"    {line}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--shards", type=int, default=1,
        help="contiguous shards to split the table into (default: 1, unsharded)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="thread workers for the parallel executor backend (default: 1)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="dataset scale factor (default: 0.1, ~5k rows)",
    )
    parser.add_argument(
        "--churn", type=float, default=0.0,
        help="percent of rows to append between query batches (default: 0, "
        "no churn); appends take the serving layer's delta-refresh path",
    )
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default=None,
        help="executor backend (default: 'thread' when sharded or --workers "
        "> 1, else 'serial'; 'process' fans python-callable UDF work over "
        "shared-memory shards on a spawn process pool)",
    )
    parser.add_argument(
        "--async", dest="use_async", action="store_true",
        help="replay through the asyncio front-end (submit_async): "
        "concurrent same-signature cold requests coalesce onto one flight "
        "and the unified stats() snapshot is printed",
    )
    parser.add_argument(
        "--clients", type=int, default=1000,
        help="concurrent clients for --async (default: 1000)",
    )
    parser.add_argument(
        "--persist", metavar="DIR", default=None,
        help="durable storage directory: checkpoint the table + warm state "
        "there on shutdown, then demonstrate a warm restart (reopen from "
        "the manifest, repeat the hottest query with zero UDF evaluations) "
        "against a cold start over the same data",
    )
    parser.add_argument(
        "--memory-budget", type=int, metavar="BYTES", default=None,
        help="demonstrate bounded-memory serving: checkpoint the table into "
        "durable segments, reopen lazily under this residency budget, and "
        "answer the hottest query bitwise-identically to an unbounded run "
        "while evicting LRU segment mappings to stay under budget",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="enable the repro.obs registry + per-query tracing and print "
        "the metrics snapshot and the slowest trace tree after the replay",
    )
    args = parser.parse_args()

    dataset = load_dataset("lending_club", random_state=7, scale=args.scale)
    udf = dataset.make_udf("credit_check")
    catalog = Catalog()
    table = dataset.table
    if args.shards > 1:
        table = ShardedTable.from_table(
            dataset.table, num_shards=args.shards, max_workers=args.workers
        )
    catalog.register_table(table)
    catalog.register_udf(udf)

    parallel = args.shards > 1 or args.workers > 1
    backend = args.executor or ("thread" if parallel else "serial")
    service = QueryService(
        Engine(catalog),
        config=ServiceConfig(
            executor=backend,
            max_workers=args.workers,
            # The async herd arrives all at once; admit it wholesale (tune
            # class_limits / max_pending down to see typed Overloaded sheds).
            max_pending=max(64, 2 * args.clients),
            storage_dir=args.persist,
        ),
    )
    sink = None
    if args.metrics:
        enable_metrics()
        sink = CollectingTraceSink(capacity=TRACE_LENGTH)
        service.set_trace_sink(sink)
    trace = build_trace(dataset, udf, RandomState(2015))
    layout = (
        f"{args.shards} shards, {args.workers} workers ({backend} backend)"
        if parallel
        else f"unsharded ({backend} backend)"
    )
    print(f"dataset: {dataset.name}, {dataset.num_rows} rows; "
          f"{TRACE_LENGTH}-query trace over 5 signatures, "
          f"{DISTINCT_CLIENTS} clients; {layout}\n")

    index_builds_before = GroupIndex.builds_total
    if args.use_async:
        replay_concurrent(
            service, trace, args.clients,
            "async replay (caches cold at start, coalescing on)",
        )
    else:
        label = (
            f"replay (caches cold at start, {args.churn}% churn between batches)"
            if args.churn
            else "replay (caches cold at start)"
        )
        replay(
            service, trace, label,
            churn_percent=args.churn, rng=RandomState(99),
        )

    metrics = service.metrics()
    plans = metrics["plan_cache"]
    stats = metrics["stats_cache"]
    print("\ncache effectiveness")
    print(f"  pipeline runs (solver invocations) : {metrics['pipeline_runs']}")
    print(f"  plan cache hit rate                : {plans['hit_rate']:.1%}")
    if args.churn:
        print(f"  warm plan hits                     : {metrics['plan_hits']}")
        print(f"  generation refreshes (delta path)  : {metrics['plan_refreshes']}")
        refresh_rate = metrics["plan_refreshes"] / max(
            1, metrics["plan_hits"] + metrics["plan_refreshes"]
        )
        print(f"  refresh share of warm traffic      : {refresh_rate:.1%}")
    print(f"  labelled-sample hit rate           : {stats['labeled_samples']['hit_rate']:.1%}")
    print(f"  sample-outcome hit rate            : {stats['sample_outcomes']['hit_rate']:.1%}")
    print(f"  group-index hit rate               : {stats['indexes']['hit_rate']:.1%}")
    print(f"  group-index builds (whole trace)   : {GroupIndex.builds_total - index_builds_before}")

    # Quality spot check on the hottest signature.
    check = service.submit(trace[0], seed=99, audit=True)
    print("\nquality spot check (hottest signature)")
    print(f"  precision={check.quality.precision:.3f}  recall={check.quality.recall:.3f}")

    udf_counters = udf.counter_snapshot()
    print("\nUDF memoisation")
    print(f"  distinct evaluations paid : {udf_counters['cache_misses']}")
    print(f"  memo-cache hits           : {udf_counters['cache_hits']}")

    if args.use_async:
        stats = service.stats()
        print("\nstats() snapshot (unified serving surface)")
        print(f"  serving counters : queries={stats.serving['queries']} "
              f"coalesced={stats.serving['coalesced']} shed={stats.serving['shed']}")
        print(f"  front-end        : max_concurrency={stats.frontend['max_concurrency']} "
              f"max_pending={stats.frontend['max_pending']} "
              f"open_flights={stats.frontend['open_flights']}")
        latency = stats.latency_ms.get("all", {})
        if latency.get("count"):
            print(f"  latency (all)    : n={latency['count']} "
                  f"p50={latency['p50_ms']:.2f}ms p99={latency['p99_ms']:.2f}ms")

    if args.metrics:
        print_metrics_report(service, sink)
        disable_metrics()
    if not args.churn:
        # (under churn the bundle's precomputed truth is stale — the audit
        # above already recomputed it live through the engine)
        truth = dataset.ground_truth_row_ids()
        quality = result_quality(check.row_ids, truth)
        assert quality.precision == check.quality.precision  # audit consistency
    if args.memory_budget:
        demonstrate_bounded_memory(dataset, table, args, backend)
    if args.persist:
        demonstrate_restart(
            service, dataset, udf, trace[0], args.persist, args.scale,
            backend, args.workers,
        )


if __name__ == "__main__":
    main()
