"""Tele-marketing targeting with a logistic-regression virtual column.

The Marketing-like dataset has low selectivity (~11% of clients subscribe) and
no single obviously-correlated column.  This example lets Intel-Sample build
its own *virtual* correlated column (paper Section 4.4): it labels ~1% of the
rows, trains a logistic regressor from the visible attributes, buckets the
probability scores, and then treats the bucket id as the grouping attribute.

Run with::

    python examples/marketing_virtual_column.py
"""

from __future__ import annotations

from repro import CostLedger, IntelSample, NaiveBaseline, QueryConstraints, load_dataset
from repro.stats.metrics import result_quality


def main() -> None:
    dataset = load_dataset("marketing", random_state=23, scale=0.25)
    constraints = QueryConstraints(alpha=0.7, beta=0.7, rho=0.8)
    truth = dataset.ground_truth_row_ids()
    print(
        f"dataset: {dataset.name}, {dataset.num_rows} rows, "
        f"selectivity {dataset.overall_selectivity:.2f}"
    )

    # Virtual-column pipeline: no correlated column is named anywhere.
    ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
    strategy = IntelSample(use_virtual_column=True, num_buckets=10, random_state=5)
    result = strategy.answer(dataset.table, dataset.make_udf("subscribes"), constraints, ledger)
    quality = result_quality(result.row_ids, truth)
    report = result.metadata["report"]

    print("\nIntel-Sample with a logistic-regression virtual column")
    print(f"  grouping column     : {report.correlated_column} (virtual)")
    print(f"  UDF evaluations     : {ledger.evaluated_count}")
    print(f"  achieved precision  : {quality.precision:.3f}")
    print(f"  achieved recall     : {quality.recall:.3f}")

    # Compare against the designated real column and the naive baseline.
    real_ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
    real = IntelSample(random_state=5).answer(
        dataset.table, dataset.make_udf("subscribes_real"), constraints, real_ledger,
        correlated_column=dataset.correlated_column,
    )
    real_quality = result_quality(real.row_ids, truth)
    naive_ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
    NaiveBaseline(random_state=5).answer(
        dataset.table, dataset.make_udf("subscribes_naive"),
        QueryConstraints(alpha=0.7, beta=0.7, rho=0.8), naive_ledger,
    )

    print("\nComparison (UDF evaluations)")
    print(f"  virtual column        : {ledger.evaluated_count}")
    print(f"  real column ({dataset.correlated_column}) : {real_ledger.evaluated_count} "
          f"(precision {real_quality.precision:.2f}, recall {real_quality.recall:.2f})")
    print(f"  naive baseline        : {naive_ledger.evaluated_count}")


if __name__ == "__main__":
    main()
