"""Adaptive sampling: let the system decide how much to sample (Section 4.3).

Rather than fixing the sampling parameter ``num`` up-front, the adaptive
strategy grows it, re-solves Convex Program 4.1 after each round and stops
when the predicted total cost starts rising.  This example prints the
per-round trajectory and compares the adaptive choice against a sweep of
fixed ``num`` values (the paper's Figure 3(b) view of the same data).

Run with::

    python examples/adaptive_sampling.py
"""

from __future__ import annotations

from repro import AdaptiveIntelSample, CostLedger, IntelSample, QueryConstraints, load_dataset
from repro.sampling import TwoThirdPowerScheme
from repro.stats.metrics import result_quality


def main() -> None:
    dataset = load_dataset("prosper", random_state=17, scale=0.3)
    constraints = QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)
    truth = dataset.ground_truth_row_ids()
    print(f"dataset: {dataset.name}, {dataset.num_rows} rows\n")

    # Adaptive num selection.
    ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
    strategy = AdaptiveIntelSample(dataset.correlated_column, random_state=2)
    result = strategy.answer(dataset.table, dataset.make_udf("repaid"), constraints, ledger)
    report = result.metadata["report"]
    quality = result_quality(result.row_ids, truth)

    print("adaptive rounds (num -> predicted total cost)")
    for round_info in report.rounds:
        marker = " <- chosen" if round_info.num == report.chosen_num else ""
        print(
            f"  num={round_info.num:4.1f}  sampled={round_info.total_sampled:5d}  "
            f"predicted cost={round_info.predicted_total_cost:8.0f}{marker}"
        )
    print(
        f"\nadaptive result: {ledger.evaluated_count} evaluations, "
        f"precision {quality.precision:.2f}, recall {quality.recall:.2f}"
    )

    # Fixed-num sweep for comparison.
    print("\nfixed Two-Third-Power sweep (num -> actual evaluations)")
    for num in (0.5, 1.0, 2.0, 4.0, 8.0):
        sweep_ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
        IntelSample(
            sampling_scheme=TwoThirdPowerScheme(num=num), random_state=3
        ).answer(
            dataset.table, dataset.make_udf(f"repaid_{num}"), constraints, sweep_ledger,
            correlated_column=dataset.correlated_column,
        )
        print(f"  num={num:4.1f}  evaluations={sweep_ledger.evaluated_count}")


if __name__ == "__main__":
    main()
