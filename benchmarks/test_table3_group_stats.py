"""Table 3: group statistics of each dataset under its correlated column."""

from conftest import run_once

from repro.experiments.report import format_table
from repro.experiments.tables import table3_group_statistics


def test_table3_group_statistics(benchmark):
    rows = run_once(benchmark, table3_group_statistics)
    print("\nTable 3 — group statistics (measured vs paper)")
    print(
        format_table(
            [
                "dataset",
                "groups",
                "paper_groups",
                "size_dev",
                "paper_size_dev",
                "sel_dev",
                "paper_sel_dev",
                "corr",
                "paper_corr",
            ],
            [
                [
                    r["dataset"],
                    r["num_groups"],
                    r["paper_num_groups"],
                    round(r["size_dev"]),
                    r["paper_size_dev"],
                    round(r["selectivity_dev"], 2),
                    r["paper_selectivity_dev"],
                    round(r["correlation"], 2),
                    r["paper_correlation"],
                ]
                for r in rows
            ],
        )
    )
    for row in rows:
        assert row["num_groups"] == row["paper_num_groups"]
        assert row["correlation"] * row["paper_correlation"] > 0  # matching sign
