"""Figure 3(b): evaluations vs num for the Two-Third-Power sampling scheme."""

from conftest import run_once

from repro.experiments.experiment2 import figure3b, optimum_of
from repro.experiments.report import format_series

NUM_VALUES = (0.5, 2.0, 4.0, 8.0, 12.0)


def test_figure3b_two_third_power(benchmark, bench_config):
    results = run_once(
        benchmark,
        figure3b,
        bench_config,
        num_values=NUM_VALUES,
        iterations=1,
    )
    print("\nFigure 3(b) — evaluations vs num (Two-Third-Power sampling scheme)")
    print(format_series(results, x_label="num"))
    optima = {dataset: optimum_of(series) for dataset, series in results.items()}
    print("per-dataset optimum num:", optima)

    for dataset, series in results.items():
        naive_evaluations = bench_config.beta * bench_config.load(dataset).num_rows
        # Shape: the sweep's optimum beats Naive, and over-sampling (largest
        # num) costs at least as much as the optimum.
        assert min(series.values()) < naive_evaluations
        assert series[max(series)] >= min(series.values()) - 1e-9
