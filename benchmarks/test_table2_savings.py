"""Table 2: selectivity and savings of Intel-Sample vs the baselines per dataset."""

from conftest import run_once

from repro.experiments.report import format_table
from repro.experiments.tables import table2_savings


def test_table2_savings(benchmark, bench_config):
    rows = run_once(benchmark, table2_savings, bench_config, include_ml_baselines=True)
    print("\nTable 2 — selectivity and savings (measured vs paper)")
    print(
        format_table(
            [
                "dataset",
                "selectivity",
                "paper_sel",
                "savings_vs_naive",
                "paper_vs_naive",
                "savings_vs_ml",
                "paper_vs_ml",
            ],
            [
                [
                    r["dataset"],
                    round(r["selectivity"], 2),
                    r["paper_selectivity"],
                    round(r.get("savings_vs_naive", 0.0), 2),
                    r["paper_savings_vs_naive"],
                    round(r.get("savings_vs_ml", 0.0), 2),
                    r["paper_savings_vs_ml"],
                ]
                for r in rows
            ],
        )
    )

    by_dataset = {row["dataset"]: row for row in rows}
    # Selectivities match the paper closely (the datasets are moment-matched).
    for name, row in by_dataset.items():
        assert abs(row["selectivity"] - row["paper_selectivity"]) < 0.03
    # Savings vs Naive are positive everywhere and largest on the
    # high-selectivity LC-like dataset, smallest on Marketing — the paper's trend.
    assert by_dataset["lending_club"]["savings_vs_naive"] > 0.4
    assert (
        by_dataset["lending_club"]["savings_vs_naive"]
        > by_dataset["marketing"]["savings_vs_naive"]
    )
