"""Update workload: incremental refresh versus cold rebuild under data churn.

Builds a ~1M-row sharded table behind a warm :class:`~repro.serving.QueryService`
(expensive python UDF, plan + statistics caches hot), then appends a 1%
delta and measures how fast the *next* query is served:

* **refresh** — the incremental-ingest path: ``ShardedTable.append_columns``
  extends the mutable tail (delta-maintained arrays and merged indexes), and
  the service detects the generation bump and refreshes the warm entry in
  place — sticky correlated column, reservoir labelled-sample top-up,
  shortfall-only sampling, one re-solve — charging UDF evaluations only in
  proportion to the delta;
* **cold rebuild** — what a system without incremental ingest must do:
  re-ingest the concatenated data into a fresh table, cold-start the
  service/caches/UDF memo, and run the full pipeline (labelling, column
  selection, sampling, solve, execution) from scratch.

Wall-clock uses the suite's A/B discipline: ``WINDOWS`` interleaved,
order-alternating (refresh, cold) pairs — each window appends a *fresh*
1% delta to the warm table while the cold side re-ingests the cumulative
data — and the asserted speedup is the **median** of the per-window
ratios, so a single noisy window cannot flake the gate.  Emits
``BENCH_update.json`` (window-0 counters; seeds are fixed so they are
deterministic) with the wall-clock-independent work counters
``compare_bench.py --profile update`` gates in CI.  Asserts the tentpole
claims per window: the refresh serves the post-append query at least
``REPRO_BENCH_MIN_REFRESH_SPEEDUP`` (default 10, ``<= 0`` disarms) times
faster than the cold rebuild, with UDF evaluation counts bounded by the
appended delta, zero from-scratch group-index builds during the measured
append (extensions only — the one-time tail seal after the initial bulk
load is paid in untimed setup, modelling steady-state churn), and result
sets that cover the appended rows.  (``latency_p50_ms`` /
``latency_p99_ms`` informational keys live in the serving/coldpath payloads;
this profile measures one query per side per window, so percentiles would
be noise.)
"""

from __future__ import annotations

import json
import math
import os
import statistics
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.index import GroupIndex
from repro.db.predicate import UdfPredicate
from repro.db.query import SelectQuery
from repro.db.sharding import ShardedTable
from repro.db.udf import UserDefinedFunction
from repro.serving import QueryService

OUTPUT_PATH = Path(__file__).resolve().parent / "BENCH_update.json"

SCALE_ROWS = 1_000_000
BENCH_SHARDS = 8
#: The appended delta: 1% of the warm table (the acceptance point).
APPEND_FRACTION = 0.01
#: Warm queries replayed before the append so the UDF memo reflects a
#: genuinely warm serving process (each draws fresh per-request coins).
WARMUP_QUERIES = 5
#: Interleaved, order-alternating (refresh, cold) measurement windows;
#: each appends a fresh delta and the median per-window ratio is asserted.
WINDOWS = 3
#: Minimum cold-rebuild / refresh wall-clock ratio; ``<= 0`` disarms.
MIN_REFRESH_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_REFRESH_SPEEDUP", "10.0")
)

#: Mixed selectivities with no near-pure group: at alpha=0.9 the solved
#: plans must *evaluate* most tuples they return, so the UDF-evaluation
#: economics (what incremental ingest preserves) dominate the workload.
GROUP_FRACTIONS = (0.24, 0.20, 0.16, 0.14, 0.10, 0.08, 0.05, 0.03)
GROUP_SELECTIVITIES = (0.66, 0.48, 0.72, 0.30, 0.55, 0.62, 0.20, 0.44)

QUERY_ALPHA, QUERY_BETA, QUERY_RHO = 0.9, 0.85, 0.8


def _build_columns(rows: int, seed: int):
    """Synthetic columns with exact per-group positive counts (array-native)."""
    rng = np.random.default_rng(seed)
    sizes = [int(round(fraction * rows)) for fraction in GROUP_FRACTIONS]
    sizes[0] += rows - sum(sizes)
    codes = np.repeat(np.arange(len(sizes)), sizes)
    labels = np.zeros(rows, dtype=bool)
    start = 0
    for size, selectivity in zip(sizes, GROUP_SELECTIVITIES):
        labels[start : start + int(round(size * selectivity))] = True
        start += size
    order = rng.permutation(rows)
    codes, labels = codes[order], labels[order]
    group_names = np.array([f"g{i}" for i in range(len(sizes))])
    region_names = np.array([f"r{i}" for i in range(5)])
    return {
        "grade": group_names[codes].tolist(),
        "region": region_names[rng.integers(0, 5, rows)].tolist(),
        "is_good": labels.tolist(),
        "amount": np.abs(rng.normal(12_000, 6_000, rows)).tolist(),
    }


def _expensive_udf(name: str) -> UserDefinedFunction:
    """A genuinely expensive per-row predicate (the paper's regime).

    The trigonometric loop models UDF compute; the outcome still reveals
    the hidden label so ground truth stays exact.  Deliberately *not* a
    label-column UDF: every evaluation pays real python/per-row cost, which
    is what the delta-proportional refresh avoids re-paying.
    """

    def check(row) -> bool:
        acc = 0.0
        for k in range(50):
            acc += math.sin(acc + k + row["amount"])
        return bool(row["is_good"]) ^ (acc > 1e9)  # acc term never trips

    return UserDefinedFunction(name=name, func=check)


def _concat(a, b):
    return {name: a[name] + b[name] for name in a}


def _query(table_name: str, udf: UserDefinedFunction) -> SelectQuery:
    return SelectQuery(
        table=table_name,
        predicate=UdfPredicate(udf),
        alpha=QUERY_ALPHA,
        beta=QUERY_BETA,
        rho=QUERY_RHO,
        correlated_column=None,  # automatic column selection: the full pipeline
    )


def _refresh_window(service, table, udf, query, delta_columns, seed):
    """One measured refresh event: append a fresh 1% delta, serve the query."""
    rows_before_delta = table.num_rows
    builds_before = GroupIndex.builds_total
    extensions_before = GroupIndex.extensions_total
    metrics_before = service.metrics()
    udf_before = udf.counter_snapshot()
    started = time.perf_counter()
    table.append_columns(delta_columns)
    result = service.submit(query, seed=seed)
    seconds = time.perf_counter() - started
    metrics = service.metrics()
    return {
        "seconds": round(seconds, 4),
        "udf_evaluations": int(udf.counter_delta(udf_before)["calls"]),
        "charged_evaluations": int(result.ledger.evaluated_count),
        "solver_calls": int(
            metrics["solver_calls"] - metrics_before["solver_calls"]
        ),
        "plan_refreshes": int(
            metrics["plan_refreshes"] - metrics_before["plan_refreshes"]
        ),
        "group_index_builds": int(GroupIndex.builds_total - builds_before),
        "group_index_extensions": int(
            GroupIndex.extensions_total - extensions_before
        ),
        "path": result.metadata["plan_cache"],
        "covers_delta": bool(
            any(int(row_id) >= rows_before_delta for row_id in result.row_ids)
        ),
    }


def _cold_window(cumulative_columns, seed):
    """One cold rebuild: re-ingest the cumulative data, cold-serve the query."""
    cold_udf = _expensive_udf("update_cold")
    started = time.perf_counter()
    rebuilt = ShardedTable.from_columns(
        "update_bench",
        cumulative_columns,
        hidden_columns=["is_good"],
        num_shards=BENCH_SHARDS,
    )
    cold_catalog = Catalog()
    cold_catalog.register_table(rebuilt)
    cold_catalog.register_udf(cold_udf)
    cold_service = QueryService(Engine(cold_catalog))
    cold_result = cold_service.submit(_query("update_bench", cold_udf), seed=seed)
    seconds = time.perf_counter() - started
    return {
        "seconds": round(seconds, 4),
        "udf_evaluations": int(cold_udf.counter_snapshot()["calls"]),
        "charged_evaluations": int(cold_result.ledger.evaluated_count),
        "solver_calls": int(cold_service.metrics()["solver_calls"]),
    }


def _update_comparison():
    base_columns = _build_columns(SCALE_ROWS, seed=2015)
    appended_rows = int(round(SCALE_ROWS * APPEND_FRACTION))
    seed_delta = _build_columns(appended_rows, seed=55)

    # ---- incremental side: a warm service over a sharded table ------------
    table = ShardedTable.from_columns(
        "update_bench",
        base_columns,
        hidden_columns=["is_good"],
        num_shards=BENCH_SHARDS,
    )
    # A seed append before any serving: the initial bulk-load layout ends in
    # a *full* shard, so the first-ever append pays a one-time tail seal.
    # Steady-state churn (what the measured events model) appends into the
    # small re-chunked tail.
    table.append_columns(seed_delta)
    udf = _expensive_udf("update_inc")
    catalog = Catalog()
    catalog.register_table(table)
    catalog.register_udf(udf)
    service = QueryService(Engine(catalog))
    query = _query("update_bench", udf)

    service.submit(query, seed=100)  # cold warm-up (plans + statistics)
    warm_started = time.perf_counter()
    warm_evals = 0
    for position in range(WARMUP_QUERIES):
        before = udf.counter_snapshot()
        service.submit(query, seed=200 + position)
        warm_evals += udf.counter_delta(before)["calls"]
    warm_seconds = time.perf_counter() - warm_started
    warm = {
        "seconds": round(warm_seconds, 4),
        "queries_per_second": round(WARMUP_QUERIES / warm_seconds, 2),
        "udf_evaluations": int(warm_evals),
    }

    # ---- measured events: WINDOWS interleaved (refresh, cold) pairs -------
    # Each window appends a *fresh* 1% delta to the warm table; the cold
    # side re-ingests the cumulative data including that delta.  Order
    # alternates so drift in either direction cancels in the median.
    cumulative = _concat(base_columns, seed_delta)
    refresh_windows = []
    cold_windows = []
    for window in range(WINDOWS):
        delta_columns = _build_columns(appended_rows, seed=77 + window)
        cumulative = _concat(cumulative, delta_columns)
        refresh_first = window % 2 == 0
        if refresh_first:
            refresh_windows.append(
                _refresh_window(
                    service, table, udf, query, delta_columns, 300 + window
                )
            )
        cold_windows.append(_cold_window(cumulative, 300 + window))
        if not refresh_first:
            refresh_windows.append(
                _refresh_window(
                    service, table, udf, query, delta_columns, 300 + window
                )
            )
    speedups = [
        cold["seconds"] / max(refresh["seconds"], 1e-9)
        for refresh, cold in zip(refresh_windows, cold_windows)
    ]
    return appended_rows, warm, refresh_windows, cold_windows, speedups


def test_update_workload(benchmark):
    appended_rows, warm, refresh_windows, cold_windows, speedups = run_once(
        benchmark, _update_comparison
    )
    refresh, cold = refresh_windows[0], cold_windows[0]
    speedup = statistics.median(speedups)

    print(
        f"\nUpdate workload — {SCALE_ROWS} rows + {appended_rows} appended "
        f"({APPEND_FRACTION:.0%}) per window, {BENCH_SHARDS} shards, "
        f"median of {WINDOWS} interleaved refresh/cold windows"
    )
    print(
        f"  warm (pre-append)  : {warm['queries_per_second']:>8} q/s, "
        f"{warm['udf_evaluations']} UDF evaluations over {WARMUP_QUERIES} queries"
    )
    print(
        f"  refresh (append+query): {refresh['seconds']:.2f}s, "
        f"{refresh['udf_evaluations']} UDF evaluations, "
        f"{refresh['solver_calls']} solver calls, "
        f"{refresh['group_index_builds']} index builds / "
        f"{refresh['group_index_extensions']} extensions"
    )
    print(
        f"  cold rebuild+query : {cold['seconds']:.2f}s, "
        f"{cold['udf_evaluations']} UDF evaluations"
    )
    print(
        "  refresh speedup    : "
        + ", ".join(f"{value:.1f}x" for value in speedups)
        + f" -> median {speedup:.1f}x"
    )

    payload = {
        "rows": SCALE_ROWS + appended_rows,  # warm-table rows at append time
        "appended_rows": appended_rows,
        "shards": BENCH_SHARDS,
        "append_fraction": APPEND_FRACTION,
        "windows": WINDOWS,
        # Window 0 counters: seeds are fixed, so they are deterministic.
        "warm": warm,
        "refresh": refresh,
        "cold": cold,
        "refresh_speedup": round(speedup, 2),
        "speedup_windows": [round(value, 2) for value in speedups],
        "cpu_count": os.cpu_count(),
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {OUTPUT_PATH.name}")

    for refresh in refresh_windows:
        # The serving layer took the refresh path, exactly once, with one
        # solve — every window, not just the first append after warm-up.
        assert refresh["path"] == "refresh"
        assert refresh["plan_refreshes"] == 1
        assert refresh["solver_calls"] == 1
        # Delta-proportional UDF work: each append+query event evaluates
        # (and charges) at most one delta's worth of tuples — never the table.
        assert refresh["udf_evaluations"] <= appended_rows, (
            f"refresh evaluated {refresh['udf_evaluations']} tuples for a "
            f"{appended_rows}-row delta"
        )
        assert refresh["charged_evaluations"] <= appended_rows
        # Warm indexes were extended, never rebuilt: zero from-scratch
        # factorisations during a steady-state append (a tail seal would be
        # the only legitimate source, and these deltas fit the re-chunked
        # tail).
        assert refresh["group_index_extensions"] >= 1
        assert refresh["group_index_builds"] == 0
        # The refreshed plan actually serves the appended rows.
        assert refresh["covers_delta"], "refresh result never returns appended rows"
    # The acceptance claim: >= 10x faster than the cold-rebuild path.
    if MIN_REFRESH_SPEEDUP > 0:
        assert speedup >= MIN_REFRESH_SPEEDUP, (
            f"post-append query only {speedup:.1f}x faster than cold rebuild "
            f"(median of {WINDOWS} windows; required {MIN_REFRESH_SPEEDUP}x; "
            "set REPRO_BENCH_MIN_REFRESH_SPEEDUP to tune)"
        )
