"""Shared configuration for the benchmark suite.

Each benchmark regenerates one table or figure of the paper on proportionally
scaled-down datasets (so the whole suite runs in minutes) and prints the
numeric series that the paper plots.  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the printed tables; drop it to just collect timings.  Scale and
iteration counts can be raised via the environment variables
``REPRO_BENCH_SCALE`` and ``REPRO_BENCH_ITERATIONS`` for paper-sized runs.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.experiments.harness import ExperimentConfig  # noqa: E402

#: Dataset scale used by the benchmarks (0.1 = 10% of the paper's row counts).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))

#: Repetitions per measured point.
BENCH_ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "2"))


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment configuration shared by every benchmark."""
    return ExperimentConfig(
        scale=BENCH_SCALE,
        iterations=BENCH_ITERATIONS,
        alpha=0.8,
        beta=0.8,
        rho=0.8,
        sample_fraction=0.05,
        seed=2015,
    )


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
