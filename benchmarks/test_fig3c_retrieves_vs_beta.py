"""Figure 3(c): expected retrievals vs the recall constraint beta (alpha = 0.8)."""

from conftest import run_once

from repro.experiments.experiment3 import figure3c, is_convex_increasing
from repro.experiments.report import format_series

BETAS = (0.2, 0.5, 0.8, 0.9)
MULTIPLIERS = (2.5, 3.5, 4.5)


def test_figure3c_retrieves_vs_beta(benchmark, bench_config):
    results = run_once(
        benchmark,
        figure3c,
        bench_config,
        betas=BETAS,
        num_multipliers=MULTIPLIERS,
        iterations=1,
    )
    series = {f"num={m}*alpha": values for m, values in results.items()}
    print("\nFigure 3(c) — retrievals vs beta (LC, alpha = 0.8)")
    print(format_series(series, x_label="beta"))

    # Paper shape: the number of retrievals grows with the recall requirement.
    for values in results.values():
        assert is_convex_increasing(values)
        assert values[max(values)] > values[min(values)]
