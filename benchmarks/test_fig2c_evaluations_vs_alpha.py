"""Figure 2(c): expected evaluations vs the precision constraint alpha (beta = 0.8)."""

from conftest import run_once

from repro.experiments.experiment3 import figure2c, is_convex_increasing
from repro.experiments.report import format_series

ALPHAS = (0.2, 0.5, 0.8, 0.9)
MULTIPLIERS = (2.5, 3.5, 4.5)


def test_figure2c_evaluations_vs_alpha(benchmark, bench_config):
    results = run_once(
        benchmark,
        figure2c,
        bench_config,
        alphas=ALPHAS,
        num_multipliers=MULTIPLIERS,
        iterations=1,
    )
    series = {f"num={m}*alpha": values for m, values in results.items()}
    print("\nFigure 2(c) — evaluations vs alpha (LC, beta = 0.8)")
    print(format_series(series, x_label="alpha"))

    # Paper shape: cost increases towards alpha = 0.9 for every multiplier.
    for values in results.values():
        assert is_convex_increasing(values)
