"""Figure 3(a): evaluations vs the Constant sampling scheme parameter c."""

from conftest import run_once

from repro.experiments.experiment2 import figure3a
from repro.experiments.report import format_series

CONSTANT_VALUES = (5, 25, 80, 250)


def test_figure3a_constant_sampling(benchmark, bench_config):
    results = run_once(
        benchmark,
        figure3a,
        bench_config,
        constant_values=CONSTANT_VALUES,
        iterations=1,
    )
    print("\nFigure 3(a) — evaluations vs c (Constant sampling scheme)")
    print(format_series(results, x_label="c"))

    # Shape: each dataset's sweep stays below exhaustive evaluation, and the
    # high-selectivity LC-like dataset beats the Naive baseline outright.
    for dataset, series in results.items():
        assert min(series.values()) < bench_config.load(dataset).num_rows
    lc = bench_config.load("lending_club")
    assert min(results["lending_club"].values()) < bench_config.beta * lc.num_rows
