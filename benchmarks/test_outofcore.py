"""Out-of-core point: a durable table ~4x the memory budget, served bounded.

Builds a sharded table whose committed segments total roughly four times
the configured ``memory_budget_bytes``, then answers the same query twice
through a :class:`~repro.serving.QueryService`:

* **unbounded** — the eager open: every segment mapped up front;
* **bounded** — the lazy open under a :class:`ResidencyManager` holding a
  quarter of the table, so serving *must* evict and refault mid-query.

The acceptance contract of bounded-memory serving is gated, not the
wall-clock: row ids and every work counter (UDF evaluations, solver
calls, charged retrieves/evaluations) are compared bitwise and their
absolute deltas committed as **zero** — ``compare_bench.py --profile
outofcore`` turns any non-zero fresh value into an unbounded relative
drift, i.e. an exact ±0 gate.  ``bounded.evictions`` is committed > 0
(the run genuinely exercised eviction) and the peak resident bytes must
stay under budget + one pinned shard's columns.  Peak RSS is recorded
informationally; it is process-wide and monotonic, so it never gates.

Emits ``BENCH_outofcore.json``.
"""

from __future__ import annotations

import json
import os
import resource
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.predicate import UdfPredicate
from repro.db.query import SelectQuery
from repro.db.residency import ResidencyManager
from repro.db.sharding import ShardedTable
from repro.db.storage import TableStore
from repro.db.udf import UserDefinedFunction
from repro.serving import QueryService, ServiceConfig

OUTPUT_PATH = Path(__file__).resolve().parent / "BENCH_outofcore.json"

BENCH_ROWS = 200_000
BENCH_SHARDS = 8
TABLE_NAME = "outofcore_bench"
QUERY_SEED = 2015
#: The budget is this fraction of the committed segment bytes: the table
#: is ~4x larger than what the manager may keep resident.
BUDGET_FRACTION = 0.25

GROUP_FRACTIONS = (0.24, 0.20, 0.16, 0.14, 0.10, 0.08, 0.05, 0.03)
GROUP_SELECTIVITIES = (0.66, 0.48, 0.72, 0.30, 0.55, 0.62, 0.20, 0.44)


def _build_columns(rows: int, seed: int = 2015):
    rng = np.random.default_rng(seed)
    sizes = [int(round(fraction * rows)) for fraction in GROUP_FRACTIONS]
    sizes[0] += rows - sum(sizes)
    codes = np.repeat(np.arange(len(sizes)), sizes)
    labels = np.zeros(rows, dtype=bool)
    start = 0
    for size, selectivity in zip(sizes, GROUP_SELECTIVITIES):
        labels[start : start + int(round(size * selectivity))] = True
        start += size
    order = rng.permutation(rows)
    codes, labels = codes[order], labels[order]
    group_names = np.array([f"g{i}" for i in range(len(sizes))])
    return {
        "grade": group_names[codes].tolist(),
        "is_good": labels.tolist(),
        "amount": np.abs(rng.normal(12_000, 6_000, rows)).tolist(),
    }


def _segment_bytes(store: TableStore) -> int:
    return sum(
        os.path.getsize(os.path.join(store.segments_dir, name))
        for name in os.listdir(store.segments_dir)
    )


def _serve(table, tag, budget_bytes=None):
    """Answer the benchmark query once; return (row_ids, counters, residency)."""
    udf = UserDefinedFunction.from_label_column(f"ooc_{tag}", "is_good")
    catalog = Catalog()
    catalog.register_table(table)
    catalog.register_udf(udf)
    service = QueryService(
        Engine(catalog),
        config=ServiceConfig(memory_budget_bytes=budget_bytes),
    )
    query = SelectQuery(
        table=TABLE_NAME,
        predicate=UdfPredicate(udf),
        alpha=0.9,
        beta=0.85,
        rho=0.8,
        correlated_column="grade",
    )
    started = time.perf_counter()
    result = service.submit(query, seed=QUERY_SEED)
    seconds = time.perf_counter() - started
    counters = {
        "seconds": round(seconds, 4),
        "udf_evaluations": int(udf.counter_snapshot()["calls"]),
        "charged_evaluations": int(result.ledger.evaluated_count),
        "charged_retrieves": int(result.ledger.retrieved_count),
        "solver_calls": int(service.metrics()["solver_calls"]),
    }
    residency = service.stats().storage.get("residency")
    service.close()
    return np.asarray(result.row_ids, dtype=np.intp), counters, residency


def _max_shard_column_bytes(table) -> int:
    """The pin allowance: the largest single shard's summed column bytes."""
    worst = 0
    for shard in table.shards:
        total = 0
        for column in shard.schema.column_names:
            # payload_bytes comes from the validated header, so the
            # allowance is known before anything is mapped (and equals the
            # mapped nbytes for fixed-width columns).
            total += shard.segment_handle(column).payload_bytes
        worst = max(worst, total)
    return worst


def _outofcore_comparison():
    columns = _build_columns(BENCH_ROWS)
    directory = tempfile.mkdtemp(prefix="repro-outofcore-bench-")
    try:
        source = ShardedTable.from_columns(
            TABLE_NAME, columns, hidden_columns=["is_good"], num_shards=BENCH_SHARDS
        )
        store = TableStore(os.path.join(directory, TABLE_NAME))
        store.save(source)
        del source
        segment_bytes = _segment_bytes(store)
        budget = int(segment_bytes * BUDGET_FRACTION)

        eager, _ = store.open()
        eager_ids, eager_counters, _ = _serve(eager, "eager")
        del eager

        manager = ResidencyManager()
        lazy, _ = store.open(residency=manager)
        pin_allowance = _max_shard_column_bytes(lazy)
        bounded_ids, bounded_counters, residency = _serve(
            lazy, "bounded", budget_bytes=budget
        )
        del lazy
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return (
        segment_bytes,
        budget,
        pin_allowance,
        (eager_ids, eager_counters),
        (bounded_ids, bounded_counters),
        residency,
        peak_rss_mb,
    )


def test_outofcore_workload(benchmark):
    (
        segment_bytes,
        budget,
        pin_allowance,
        (eager_ids, eager_counters),
        (bounded_ids, bounded_counters),
        residency,
        peak_rss_mb,
    ) = run_once(benchmark, _outofcore_comparison)

    parity = {
        "row_ids_mismatch": int(not np.array_equal(eager_ids, bounded_ids)),
        "udf_evaluations_abs_delta": abs(
            bounded_counters["udf_evaluations"] - eager_counters["udf_evaluations"]
        ),
        "charged_evaluations_abs_delta": abs(
            bounded_counters["charged_evaluations"]
            - eager_counters["charged_evaluations"]
        ),
        "charged_retrieves_abs_delta": abs(
            bounded_counters["charged_retrieves"]
            - eager_counters["charged_retrieves"]
        ),
        "solver_calls_abs_delta": abs(
            bounded_counters["solver_calls"] - eager_counters["solver_calls"]
        ),
    }

    print(
        f"\nOut-of-core point — {BENCH_ROWS} rows, {BENCH_SHARDS} shards, "
        f"{segment_bytes / 1e6:.1f} MB of segments over a "
        f"{budget / 1e6:.1f} MB budget ({1 / BUDGET_FRACTION:.0f}x)"
    )
    print(
        f"  unbounded : {eager_counters['seconds']:.2f}s, "
        f"{eager_counters['udf_evaluations']} UDF evaluations"
    )
    print(
        f"  bounded   : {bounded_counters['seconds']:.2f}s, "
        f"{residency['evictions']} evictions, {residency['refaults']} refaults, "
        f"peak resident {residency['peak_resident_bytes'] / 1e6:.1f} MB"
    )
    print(
        f"  parity    : {parity} (gated at exactly 0)"
    )
    print(f"  peak RSS  : {peak_rss_mb:.0f} MB (informational)")

    payload = {
        "rows": BENCH_ROWS,
        "shards": BENCH_SHARDS,
        "segment_bytes": segment_bytes,
        "budget_bytes": budget,
        "pin_allowance_bytes": pin_allowance,
        "unbounded": eager_counters,
        "bounded": {
            **bounded_counters,
            "maps": int(residency["maps"]),
            "evictions": int(residency["evictions"]),
            "refaults": int(residency["refaults"]),
            "peak_resident_bytes": int(residency["peak_resident_bytes"]),
        },
        "parity": parity,
        "peak_rss_mb": round(peak_rss_mb, 1),
        "cpu_count": os.cpu_count(),
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {OUTPUT_PATH.name}")

    # The bounded-memory acceptance contract, asserted before committing:
    # bitwise parity at ±0, genuine eviction pressure, and a peak residency
    # no higher than budget plus one pinned shard's columns.
    assert all(value == 0 for value in parity.values()), parity
    assert residency["evictions"] > 0
    assert residency["map_faults"] == 0 and residency["evict_faults"] == 0
    assert residency["peak_resident_bytes"] <= budget + pin_allowance
