"""Ablation benchmarks for the design choices called out in DESIGN.md.

* Safety margins: dropping the Hoeffding margin makes the plan cheaper but
  erodes the probability of meeting the constraints.
* BiGreedy vs the scipy LP: identical costs, so the solver-free algorithm is a
  safe default.
* Independent-groups vs unknown-correlations convex program: the independent
  variant is never more expensive.
"""

import numpy as np
from conftest import run_once

from repro.core.bigreedy import solve_bigreedy
from repro.core.constraints import CostModel, QueryConstraints
from repro.core.estimated import solve_estimated_selectivity
from repro.core.executor import PlanExecutor
from repro.core.groups import SelectivityModel
from repro.core.hoeffding_lp import SelectivityMargins, solve_perfect_selectivity_lp
from repro.db.index import GroupIndex
from repro.db.udf import CostLedger
from repro.experiments.report import format_table
from repro.stats.metrics import result_quality


def margin_ablation(dataset, constraints, runs=10):
    """Satisfaction rates with and without the Hoeffding safety margins."""
    index = GroupIndex(dataset.table, dataset.correlated_column)
    truth = dataset.ground_truth_row_ids()
    model = SelectivityModel.from_ground_truth(index, truth)
    outcomes = {}
    for label, margins in (
        ("with_margins", None),
        ("no_margins", SelectivityMargins(0.0, 0.0)),
    ):
        plan = solve_bigreedy(model, constraints, margins=margins).plan
        satisfied = 0
        for seed in range(runs):
            udf = dataset.make_udf(f"ablate_{label}_{seed}")
            ledger = CostLedger()
            result = PlanExecutor(random_state=seed).execute(
                dataset.table, index, udf, plan, ledger
            )
            quality = result_quality(result.returned_row_ids, truth)
            if quality.satisfies(constraints.alpha, constraints.beta):
                satisfied += 1
        outcomes[label] = {
            "satisfaction_rate": satisfied / runs,
            "expected_cost": plan.expected_cost(model, CostModel(), include_sampling=False),
        }
    return outcomes


def test_margin_ablation(benchmark, bench_config):
    dataset = bench_config.load("prosper")
    constraints = QueryConstraints(0.8, 0.8, 0.8)
    outcomes = run_once(benchmark, margin_ablation, dataset, constraints)
    print("\nAblation — Hoeffding safety margins (Prosper-like dataset)")
    print(
        format_table(
            ["variant", "satisfaction_rate", "expected_cost"],
            [
                [label, values["satisfaction_rate"], round(values["expected_cost"])]
                for label, values in outcomes.items()
            ],
        )
    )
    assert outcomes["no_margins"]["expected_cost"] <= outcomes["with_margins"]["expected_cost"]
    assert (
        outcomes["with_margins"]["satisfaction_rate"]
        >= outcomes["no_margins"]["satisfaction_rate"]
    )


def solver_comparison(model, constraints):
    greedy = solve_bigreedy(model, constraints)
    lp = solve_perfect_selectivity_lp(model, constraints)
    independent = solve_estimated_selectivity(model, constraints, independent=True)
    unknown = solve_estimated_selectivity(model, constraints, independent=False)
    return {
        "bigreedy": greedy.expected_cost,
        "scipy_lp": lp.expected_cost,
        "convex_independent": independent.expected_cost,
        "lp_unknown_correlations": unknown.expected_cost,
    }


def test_solver_equivalence_and_convex_ablation(benchmark, bench_config):
    dataset = bench_config.load("census")
    index = GroupIndex(dataset.table, dataset.correlated_column)
    truth = dataset.ground_truth_row_ids()
    exact = SelectivityModel.from_ground_truth(index, truth)
    # Re-interpret the exact selectivities as estimates with a small variance
    # so that the convex programs have something to be cautious about.
    # The variance corresponds to a few hundred samples per group; much larger
    # values make the deliberately conservative unknown-correlations program
    # infeasible at benchmark scale.
    estimated = SelectivityModel.from_selectivities(
        sizes={g.key: g.size for g in exact},
        selectivities={g.key: g.selectivity for g in exact},
        variances={g.key: 1e-4 for g in exact},
    )
    constraints = QueryConstraints(0.8, 0.8, 0.8)
    costs = run_once(benchmark, solver_comparison, estimated, constraints)
    print("\nAblation — solver comparison (Census-like dataset)")
    print(format_table(["solver", "expected_cost"], [[k, round(v)] for k, v in costs.items()]))

    assert np.isclose(costs["bigreedy"], costs["scipy_lp"], rtol=1e-3)
    assert costs["convex_independent"] <= costs["lp_unknown_correlations"] + 1e-6
    # Uncertainty-aware plans can only be at least as expensive as the
    # perfect-selectivity LP run on the same means.
    assert costs["convex_independent"] >= costs["bigreedy"] - 1e-6
