"""Figure 1(a): UDF evaluations of Naive vs Intel-Sample vs Optimal per dataset."""

from conftest import run_once

from repro.experiments.experiment1 import figure1a
from repro.experiments.report import format_table


def test_figure1a_cost_comparison(benchmark, bench_config):
    results = run_once(benchmark, figure1a, bench_config)
    rows = []
    for dataset, by_strategy in results.items():
        rows.append(
            [
                dataset,
                round(by_strategy["naive"].mean_evaluations),
                round(by_strategy["intel_sample"].mean_evaluations),
                round(by_strategy["optimal"].mean_evaluations),
            ]
        )
    print("\nFigure 1(a) — mean UDF evaluations per dataset")
    print(format_table(["dataset", "naive", "intel_sample", "optimal"], rows))

    for dataset, by_strategy in results.items():
        naive = by_strategy["naive"].mean_evaluations
        intel = by_strategy["intel_sample"].mean_evaluations
        optimal = by_strategy["optimal"].mean_evaluations
        # Paper shape: Optimal <= Intel-Sample < Naive on every dataset.
        assert optimal <= intel * 1.05
        assert intel < naive
