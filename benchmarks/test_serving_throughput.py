"""Serving throughput: cold (no caches) versus warm (cached) trace replay.

Replays a repeated-query trace through two identically configured
:class:`~repro.serving.QueryService` instances:

* **cold** — caches disabled and the UDF memo reset before every query,
  modelling today's one-shot behaviour where every ``Engine.execute`` call
  recomputes statistics and plans from scratch;
* **warm** — statistics/plan caching on and the memo shared, the serving
  subsystem's amortised path.

Emits ``BENCH_serving.json`` next to this file (queries/sec plus the work
breakdown) and asserts the amortisation claim: the warm replay performs at
least 5x fewer UDF evaluations + solver calls than the cold replay.  Also
asserts that the vectorised :class:`~repro.serving.BatchExecutor` is
deterministic — identical ``QueryResult.row_ids`` for a fixed seed — on
three datasets.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import run_once

from repro.core.constraints import QueryConstraints
from repro.core.pipeline import IntelSample
from repro.datasets.registry import load_dataset
from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.predicate import UdfPredicate
from repro.db.query import SelectQuery
from repro.db.udf import CostLedger
from repro.serving import BatchExecutor, QueryService

TRACE_LENGTH = 80
OUTPUT_PATH = Path(__file__).resolve().parent / "BENCH_serving.json"
DETERMINISM_DATASETS = ("lending_club", "census", "marketing")


def _build_workload(scale: float):
    dataset = load_dataset("lending_club", random_state=2015, scale=scale)
    udf = dataset.make_udf("served_bench")
    catalog = Catalog()
    catalog.register_table(dataset.table)
    catalog.register_udf(udf)
    signatures = [
        dict(alpha=0.8, beta=0.8),
        dict(alpha=0.9, beta=0.7),
        dict(alpha=0.7, beta=0.9),
        dict(alpha=0.85, beta=0.75),
    ]
    queries = [
        SelectQuery(
            table=dataset.table.name,
            predicate=UdfPredicate(udf),
            alpha=spec["alpha"],
            beta=spec["beta"],
            rho=0.8,
            correlated_column="grade",
        )
        for spec in signatures
    ]
    trace = [queries[i % len(queries)] for i in range(TRACE_LENGTH)]
    return dataset, catalog, udf, trace


def _replay(service: QueryService, udf, trace, reset_memo: bool):
    udf_evaluations = 0
    started = time.perf_counter()
    for position, query in enumerate(trace):
        if reset_memo:
            # Cold semantics: nothing survives between queries, exactly like
            # calling Engine.execute from scratch each time.
            udf.reset()
        before = udf.call_count
        service.submit(query, seed=50_000 + position)
        udf_evaluations += udf.call_count - before
    elapsed = time.perf_counter() - started
    solver_calls = service.metrics()["solver_calls"]
    return {
        "seconds": round(elapsed, 4),
        "queries_per_second": round(len(trace) / elapsed, 2),
        "udf_evaluations": int(udf_evaluations),
        "solver_calls": int(solver_calls),
        "work": int(udf_evaluations + solver_calls),
    }


def _serving_comparison(scale: float):
    # Cold: caching disabled, memo wiped per query.
    dataset, catalog, udf, trace = _build_workload(scale)
    cold_service = QueryService(
        Engine(catalog), plan_cache_size=0, stats_cache_size=0, free_memoized=False
    )
    cold = _replay(cold_service, udf, trace, reset_memo=True)

    # Warm: fresh identical workload with caching on.
    dataset, catalog, udf, trace = _build_workload(scale)
    warm_service = QueryService(Engine(catalog))
    warm = _replay(warm_service, udf, trace, reset_memo=False)
    warm["plan_cache"] = warm_service.metrics()["plan_cache"]
    return dataset, cold, warm


def _batch_determinism(scale: float):
    results = {}
    for name in DETERMINISM_DATASETS:
        dataset = load_dataset(name, random_state=11, scale=scale)
        constraints = QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)

        def run():
            strategy = IntelSample(
                random_state=1234,
                executor_factory=lambda rng: BatchExecutor(random_state=rng),
            )
            return strategy.answer(
                dataset.table,
                dataset.make_udf(f"det_{name}"),
                constraints,
                CostLedger(),
                correlated_column=dataset.correlated_column,
            )

        first, second = run(), run()
        assert first.row_ids == second.row_ids, (
            f"BatchExecutor not seed-deterministic on {name}"
        )
        results[name] = {
            "rows": dataset.num_rows,
            "returned": len(first.row_ids),
            "identical_across_runs": True,
        }
    return results


def test_serving_throughput(benchmark, bench_config):
    scale = min(bench_config.scale, 0.05)
    dataset, cold, warm = run_once(benchmark, _serving_comparison, scale)

    print("\nServing throughput — cold (no caches) vs warm (cached)")
    for label, row in (("cold", cold), ("warm", warm)):
        print(
            f"  {label}: {row['queries_per_second']:>8} q/s, "
            f"{row['udf_evaluations']} UDF evaluations, "
            f"{row['solver_calls']} solver calls"
        )

    determinism = _batch_determinism(min(scale, 0.05))
    ratio = cold["work"] / max(1, warm["work"])
    print(f"  amortisation: {ratio:.1f}x fewer evaluations+solves when warm")

    payload = {
        "dataset": dataset.name,
        "rows": dataset.num_rows,
        "trace_length": TRACE_LENGTH,
        "cold": cold,
        "warm": warm,
        "work_ratio_cold_over_warm": round(ratio, 2),
        "batch_executor_determinism": determinism,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {OUTPUT_PATH.name}")

    # The amortisation claim: warm serving does >=5x less expensive work.
    assert ratio >= 5.0, f"warm replay only {ratio:.1f}x cheaper than cold"
    # Throughput moves the same way (wall-clock is noisier, so just ordered).
    assert warm["queries_per_second"] > cold["queries_per_second"]
