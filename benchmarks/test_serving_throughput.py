"""Serving throughput: cold (no caches) versus warm (cached) trace replay.

Replays a repeated-query trace through two identically configured
:class:`~repro.serving.QueryService` instances:

* **cold** — caches disabled and the UDF memo reset before every query,
  modelling first-sight traffic where every query recomputes statistics and
  plans from scratch (the table-resident group-index cache stays, as it
  would in any live system);
* **warm** — statistics/plan caching on and the memo shared, the serving
  subsystem's amortised path.

Emits ``BENCH_serving.json`` next to this file (queries/sec plus the work
breakdown) and asserts two claims:

* **amortisation** — the warm replay performs at least 5x fewer UDF
  evaluations + solver calls than the cold replay;
* **cold-path vectorisation** — the cold replay now runs at least 3x the
  queries/sec of the committed pre-vectorisation baseline (the PR-2
  ``BENCH_serving.json``, measured on the same harness), with the same UDF
  evaluation / solver-call work counters.

Alongside wall-clock numbers the payload records *wall-clock-independent*
cold-path counters — group-index builds and bulk vs per-row UDF API calls —
which ``compare_bench.py`` gates in CI so the cold path cannot silently
regress to per-tuple work.  ``test_coldpath_scaling`` adds a ~25k-row cold
bench point (``BENCH_coldpath.json``) proving the vectorised cold path holds
up at 10x the table size.

Each replay row also carries informational ``latency_p50_ms`` /
``latency_p99_ms`` keys (from the service's always-on latency histograms);
``compare_bench.py`` prints them in its diff but never gates them.  The warm
replay additionally writes ``BENCH_serving_metrics.prom`` (Prometheus
snapshot of the enabled obs registry) and ``BENCH_serving_slowlog.jsonl``
(slowest trace trees) for CI artifact upload.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import run_once

from repro.core.constraints import QueryConstraints
from repro.core.executor import BatchExecutor
from repro.core.pipeline import IntelSample
from repro.datasets.registry import load_dataset
from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.index import GroupIndex
from repro.db.predicate import UdfPredicate
from repro.db.query import SelectQuery
from repro.db.udf import CostLedger
from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    disable_metrics,
    enable_metrics,
    write_prometheus_snapshot,
)
from repro.serving import QueryService, ServiceConfig

TRACE_LENGTH = 80
OUTPUT_PATH = Path(__file__).resolve().parent / "BENCH_serving.json"
COLDPATH_OUTPUT_PATH = Path(__file__).resolve().parent / "BENCH_coldpath.json"
#: CI artifacts (uploaded by the bench-regression job, not committed).
PROM_SNAPSHOT_PATH = Path(__file__).resolve().parent / "BENCH_serving_metrics.prom"
SLOW_LOG_PATH = Path(__file__).resolve().parent / "BENCH_serving_slowlog.jsonl"
DETERMINISM_DATASETS = ("lending_club", "census", "marketing")

#: Cold-path queries/sec of the committed PR-2 baseline (tuple-at-a-time
#: sampling/labelling and per-query GroupIndex rebuilds) on this harness at
#: scale 0.05.  The vectorised cold path must beat it by >= 3x.
PRE_VECTORISATION_COLD_QPS = 12.96

#: Rows of the scaling bench point (~25k at lending_club scale 0.5).
COLDPATH_SCALE = 0.5
COLDPATH_TRACE_LENGTH = 8


def _build_workload(scale: float):
    dataset = load_dataset("lending_club", random_state=2015, scale=scale)
    udf = dataset.make_udf("served_bench")
    catalog = Catalog()
    catalog.register_table(dataset.table)
    catalog.register_udf(udf)
    signatures = [
        dict(alpha=0.8, beta=0.8),
        dict(alpha=0.9, beta=0.7),
        dict(alpha=0.7, beta=0.9),
        dict(alpha=0.85, beta=0.75),
    ]
    queries = [
        SelectQuery(
            table=dataset.table.name,
            predicate=UdfPredicate(udf),
            alpha=spec["alpha"],
            beta=spec["beta"],
            rho=0.8,
            correlated_column="grade",
        )
        for spec in signatures
    ]
    trace = [queries[i % len(queries)] for i in range(TRACE_LENGTH)]
    return dataset, catalog, udf, trace


def _replay(service: QueryService, udf, trace, reset_memo: bool):
    udf_evaluations = 0
    bulk_calls = 0
    row_calls = 0
    index_builds_before = GroupIndex.builds_total
    started = time.perf_counter()
    for position, query in enumerate(trace):
        if reset_memo:
            # Cold semantics: nothing survives between queries, exactly like
            # calling Engine.execute from scratch each time.
            udf.reset()
        before = udf.counter_snapshot()
        service.submit(query, seed=50_000 + position)
        delta = udf.counter_delta(before)
        udf_evaluations += delta["calls"]
        bulk_calls += delta["bulk_calls"]
        row_calls += delta["row_calls"]
    elapsed = time.perf_counter() - started
    solver_calls = service.metrics()["solver_calls"]
    # Always-on service histograms: informational latency percentiles ride
    # along in the payload but are never gated (wall-clock is runner-noisy).
    latency = service.latency_snapshot().get("all") or {}
    return {
        "seconds": round(elapsed, 4),
        "queries_per_second": round(len(trace) / elapsed, 2),
        "latency_p50_ms": _round_ms(latency.get("p50_ms")),
        "latency_p99_ms": _round_ms(latency.get("p99_ms")),
        "udf_evaluations": int(udf_evaluations),
        "solver_calls": int(solver_calls),
        "work": int(udf_evaluations + solver_calls),
        "group_index_builds": int(GroupIndex.builds_total - index_builds_before),
        "udf_bulk_calls": int(bulk_calls),
        "udf_row_calls": int(row_calls),
    }


def _round_ms(value):
    return None if value is None else round(value, 3)


def _serving_comparison(scale: float):
    # Cold: caching disabled, memo wiped per query.
    dataset, catalog, udf, trace = _build_workload(scale)
    cold_service = QueryService(
        Engine(catalog),
        config=ServiceConfig(plan_cache_size=0, stats_cache_size=0, free_memoized=False),
    )
    cold = _replay(cold_service, udf, trace, reset_memo=True)

    # Warm: fresh identical workload with caching on.  The warm replay runs
    # with the obs registry enabled and a slow-query trace sink installed so
    # CI can upload a Prometheus snapshot and a slow-query log as artifacts;
    # the registry only observes, so every gated counter is unaffected.
    dataset, catalog, udf, trace = _build_workload(scale)
    warm_service = QueryService(Engine(catalog))
    registry = MetricsRegistry()
    enable_metrics(registry)
    slow_log = SlowQueryLog(threshold_ms=0.0, capacity=16)
    warm_service.set_trace_sink(slow_log)
    try:
        warm = _replay(warm_service, udf, trace, reset_memo=False)
    finally:
        disable_metrics()
    write_prometheus_snapshot(registry, str(PROM_SNAPSHOT_PATH))
    SLOW_LOG_PATH.write_text(slow_log.to_json_lines())
    warm["plan_cache"] = warm_service.metrics()["plan_cache"]
    return dataset, cold, warm


def _batch_determinism(scale: float):
    results = {}
    for name in DETERMINISM_DATASETS:
        dataset = load_dataset(name, random_state=11, scale=scale)
        constraints = QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)

        def run():
            strategy = IntelSample(
                random_state=1234,
                executor_factory=lambda rng: BatchExecutor(random_state=rng),
            )
            return strategy.answer(
                dataset.table,
                dataset.make_udf(f"det_{name}"),
                constraints,
                CostLedger(),
                correlated_column=dataset.correlated_column,
            )

        first, second = run(), run()
        assert first.row_ids == second.row_ids, (
            f"BatchExecutor not seed-deterministic on {name}"
        )
        results[name] = {
            "rows": dataset.num_rows,
            "returned": len(first.row_ids),
            "identical_across_runs": True,
        }
    return results


def test_serving_throughput(benchmark, bench_config):
    scale = min(bench_config.scale, 0.05)
    dataset, cold, warm = run_once(benchmark, _serving_comparison, scale)

    print("\nServing throughput — cold (no caches) vs warm (cached)")
    for label, row in (("cold", cold), ("warm", warm)):
        print(
            f"  {label}: {row['queries_per_second']:>8} q/s, "
            f"{row['udf_evaluations']} UDF evaluations, "
            f"{row['solver_calls']} solver calls, "
            f"{row['group_index_builds']} index builds, "
            f"{row['udf_bulk_calls']} bulk / {row['udf_row_calls']} per-row UDF calls"
        )

    determinism = _batch_determinism(min(scale, 0.05))
    ratio = cold["work"] / max(1, warm["work"])
    speedup = cold["queries_per_second"] / PRE_VECTORISATION_COLD_QPS
    print(f"  amortisation: {ratio:.1f}x fewer evaluations+solves when warm")
    print(
        f"  cold-path vectorisation: {speedup:.1f}x the pre-vectorisation "
        f"baseline ({PRE_VECTORISATION_COLD_QPS} q/s)"
    )

    payload = {
        "dataset": dataset.name,
        "rows": dataset.num_rows,
        "trace_length": TRACE_LENGTH,
        "cold": cold,
        "warm": warm,
        "work_ratio_cold_over_warm": round(ratio, 2),
        "cold_speedup_vs_pre_vectorisation": round(speedup, 2),
        "batch_executor_determinism": determinism,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {OUTPUT_PATH.name}")

    # The amortisation claim: warm serving does >=5x less expensive work.
    assert ratio >= 5.0, f"warm replay only {ratio:.1f}x cheaper than cold"
    # Throughput moves the same way (wall-clock is noisier, so just ordered).
    assert warm["queries_per_second"] > cold["queries_per_second"]
    # The vectorisation claim: the cold path is >=3x the PR-2 baseline.
    assert speedup >= 3.0, (
        f"cold path only {speedup:.1f}x the pre-vectorisation baseline "
        f"({cold['queries_per_second']} vs {PRE_VECTORISATION_COLD_QPS} q/s)"
    )
    # The cold path must stay batched: no per-row UDF API calls, and index
    # builds bounded by the distinct columns ever grouped (not the trace).
    assert cold["udf_row_calls"] == 0, "cold path fell back to per-row UDF calls"
    assert cold["group_index_builds"] <= dataset.table.num_columns


def _coldpath_scaling(scale: float, trace_length: int):
    dataset, catalog, udf, trace = _build_workload(scale)
    service = QueryService(
        Engine(catalog),
        config=ServiceConfig(plan_cache_size=0, stats_cache_size=0, free_memoized=False),
    )
    replay = _replay(service, udf, trace[:trace_length], reset_memo=True)
    return dataset, replay


def test_coldpath_scaling(benchmark):
    """Cold-path throughput at ~25k rows (10x the serving bench point).

    The pre-vectorisation cold path was O(rows) *python* per query, so its
    throughput collapsed linearly with table size.  The array-native cold
    path keeps per-query python work O(groups): even at 10x the rows it must
    beat the pre-vectorisation baseline's throughput at 2.6k rows.
    """
    dataset, replay = run_once(
        benchmark, _coldpath_scaling, COLDPATH_SCALE, COLDPATH_TRACE_LENGTH
    )
    assert 20_000 <= dataset.num_rows <= 35_000, "scaling point drifted from ~25k rows"

    print(
        f"\nCold-path scaling — {dataset.num_rows} rows: "
        f"{replay['queries_per_second']} q/s, "
        f"{replay['udf_evaluations']} UDF evaluations, "
        f"{replay['group_index_builds']} index builds, "
        f"{replay['udf_bulk_calls']} bulk / {replay['udf_row_calls']} per-row UDF calls"
    )

    payload = {
        "dataset": dataset.name,
        "rows": dataset.num_rows,
        "trace_length": COLDPATH_TRACE_LENGTH,
        "cold": replay,
        "small_scale_reference_qps": PRE_VECTORISATION_COLD_QPS,
    }
    COLDPATH_OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {COLDPATH_OUTPUT_PATH.name}")

    assert replay["udf_row_calls"] == 0, "cold path fell back to per-row UDF calls"
    assert replay["queries_per_second"] >= PRE_VECTORISATION_COLD_QPS, (
        "vectorised cold path at 10x rows should still beat the "
        "pre-vectorisation throughput at 2.6k rows"
    )
