"""Observability overhead guard: instrumentation must stay near-free.

Replays the warm serving trace of ``test_serving_throughput`` twice over a
fully warmed :class:`~repro.serving.QueryService` — once with the default
null registry and no trace sink, once with the :mod:`repro.obs` registry
enabled *and* a trace sink installed (the maximal instrumentation a
production deployment would run) — and asserts two claims:

* **wall-clock** — over ``ROUNDS`` interleaved plain/instrumented pairs,
  the median per-pair slowdown is at most ``REPRO_BENCH_MAX_OBS_OVERHEAD``
  (default 0.05 = 5%).  Like the other wall-clock asserts this is
  env-tunable and disarmed (``"0"`` or negative) in the CI test matrix,
  where noisy-neighbour runners would flake it; the dedicated
  bench-regression job keeps it armed.
* **counter identity** — the work counters (UDF evaluations, memo hits,
  bulk/row API calls, solver calls) of an instrumented replay are *bitwise
  identical* to an uninstrumented one: the registry observes, it never
  participates.  This half always runs — it is deterministic.
"""

from __future__ import annotations

import os
import statistics
import time

from conftest import run_once
from test_serving_throughput import _build_workload

from repro.db.engine import Engine
from repro.obs import CollectingTraceSink, disable_metrics, enable_metrics
from repro.serving import QueryService

#: Allowed relative slowdown of the instrumented warm replay; ``<= 0``
#: disarms the wall-clock assert (counter identity still runs).
MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_MAX_OBS_OVERHEAD", "0.05"))

#: Interleaved, order-alternating measurement pairs; the median of
#: per-pair ratios cancels machine-load drift that an unpaired
#: best-of-N cannot.
ROUNDS = 15

#: Consecutive trace replays per timed measurement — a larger timed unit
#: shrinks the relative size of scheduler jitter.
REPLAYS_PER_MEASUREMENT = 2

#: Independent measurement windows before the wall-clock gate fails; the
#: best window counts (regressions inflate all windows, bursts don't).
MEASUREMENT_ATTEMPTS = 3


def _warm_service(scale: float):
    dataset, catalog, udf, trace = _build_workload(scale)
    service = QueryService(Engine(catalog))
    replay_seeds = [70_000 + position for position in range(len(trace))]
    # Two warm-up replays with the measurement seeds: the first pays the
    # cold planning work, the second settles the UDF memo over every row any
    # measurement seed will touch, so measured replays do identical work.
    for _ in range(2):
        for seed, query in zip(replay_seeds, trace):
            service.submit(query, seed=seed)
    return service, udf, trace, replay_seeds


def _replay(service, trace, seeds) -> float:
    started = time.perf_counter()
    for seed, query in zip(seeds, trace):
        service.submit(query, seed=seed)
    return time.perf_counter() - started


def _measure(service, trace, seeds) -> float:
    return sum(_replay(service, trace, seeds) for _ in range(REPLAYS_PER_MEASUREMENT))


def _counter_delta(service, udf, trace, seeds):
    before = udf.counter_snapshot()
    solver_before = service.metrics()["solver_calls"]
    _replay(service, trace, seeds)
    delta = udf.counter_delta(before)
    delta["solver_calls"] = service.metrics()["solver_calls"] - solver_before
    return delta


def _instrumented(service):
    """Enable the maximal production instrumentation on ``service``."""
    enable_metrics()
    service.set_trace_sink(CollectingTraceSink(capacity=8))


def _uninstrumented(service):
    service.set_trace_sink(None)
    disable_metrics()


def _overhead_comparison(scale: float):
    service, udf, trace, seeds = _warm_service(scale)

    plain_delta = _counter_delta(service, udf, trace, seeds)
    _instrumented(service)
    try:
        instrumented_delta = _counter_delta(service, udf, trace, seeds)
    finally:
        _uninstrumented(service)

    # Up to MEASUREMENT_ATTEMPTS independent measurement windows, keeping
    # the best (lowest-ratio) one: a genuine regression inflates every
    # window, a noisy-neighbour burst inflates only the windows it lands
    # on — so "pass if any window passes" keeps the gate's teeth while
    # taking the flake rate down to p^attempts.
    ratio, plain, instrumented = _measure_ratio(service, trace, seeds)
    for _ in range(MEASUREMENT_ATTEMPTS - 1):
        if not (MAX_OVERHEAD > 0 and ratio - 1.0 > MAX_OVERHEAD):
            break
        retry_ratio, retry_plain, retry_instrumented = _measure_ratio(
            service, trace, seeds
        )
        if retry_ratio < ratio:
            ratio, plain, instrumented = retry_ratio, retry_plain, retry_instrumented

    return plain, instrumented, ratio, plain_delta, instrumented_delta, len(trace)


def _measure_ratio(service, trace, seeds):
    """Median instrumented/plain ratio over interleaved, order-alternating pairs.

    Machine-load drift hits both sides of an adjacent pair alike, order
    alternation cancels the systematic penalty of running second in a pair
    (frequency-boost decay), and the median of per-pair ratios discards
    spike rounds that an unpaired best-of-N comparison would silently
    absorb.
    """
    ratios = []
    plain_times = []
    instrumented_times = []
    for round_index in range(ROUNDS):
        plain_first = round_index % 2 == 0
        if plain_first:
            plain_times.append(_measure(service, trace, seeds))
        _instrumented(service)
        try:
            instrumented_times.append(_measure(service, trace, seeds))
        finally:
            _uninstrumented(service)
        if not plain_first:
            plain_times.append(_measure(service, trace, seeds))
        ratios.append(instrumented_times[-1] / plain_times[-1])

    per_replay = 1.0 / REPLAYS_PER_MEASUREMENT
    return (
        statistics.median(ratios),
        min(plain_times) * per_replay,
        min(instrumented_times) * per_replay,
    )


def test_obs_overhead(benchmark, bench_config):
    scale = min(bench_config.scale, 0.05)
    plain, instrumented, ratio, plain_delta, instrumented_delta, queries = run_once(
        benchmark, _overhead_comparison, scale
    )

    overhead = ratio - 1.0
    print("\nObservability overhead — warm serving replay, median of "
          f"{ROUNDS} interleaved pairs ({queries} queries)")
    print(f"  uninstrumented : {plain * 1000:.2f}ms best  "
          f"({queries / plain:,.0f} q/s)")
    print(f"  instrumented   : {instrumented * 1000:.2f}ms best  "
          f"({queries / instrumented:,.0f} q/s)")
    print(f"  overhead       : {overhead:+.2%} "
          f"(limit {MAX_OVERHEAD:.0%}, armed={MAX_OVERHEAD > 0})")

    # Counter identity is deterministic and always gated: instrumentation
    # must never change what the serving path computes or charges.
    assert instrumented_delta == plain_delta, (
        "work counters diverged under instrumentation: "
        f"{plain_delta} -> {instrumented_delta}"
    )
    if MAX_OVERHEAD > 0:
        assert overhead <= MAX_OVERHEAD, (
            f"instrumentation overhead {overhead:+.2%} exceeds "
            f"{MAX_OVERHEAD:.0%} on the warm serving path"
        )
