"""Figure 1(b): UDF evaluations of the Learning/Multiple baselines vs Intel-Sample."""

from conftest import run_once

from repro.experiments.experiment1 import figure1b
from repro.experiments.report import format_table


def test_figure1b_ml_baselines(benchmark, bench_config):
    results = run_once(benchmark, figure1b, bench_config)
    rows = []
    for dataset, by_strategy in results.items():
        rows.append(
            [
                dataset,
                round(by_strategy["learning"].mean_evaluations),
                round(by_strategy["multiple"].mean_evaluations),
                round(by_strategy["intel_sample"].mean_evaluations),
            ]
        )
    print("\nFigure 1(b) — mean UDF evaluations, ML baselines vs Intel-Sample")
    print(format_table(["dataset", "learning", "multiple", "intel_sample"], rows))

    # Paper shape: Intel-Sample is at least competitive with the best ML
    # baseline on every dataset (the paper's gaps are larger on real data
    # because its features are far less predictive than its groups).
    for dataset, by_strategy in results.items():
        best_ml = min(
            by_strategy["learning"].mean_evaluations,
            by_strategy["multiple"].mean_evaluations,
        )
        assert by_strategy["intel_sample"].mean_evaluations <= best_ml * 1.25
