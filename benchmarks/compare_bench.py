"""Diff a fresh benchmark JSON against the committed baseline.

The serving-throughput benchmarks emit deterministic *work counters* (UDF
evaluations, solver calls, group-index builds, bulk vs per-row UDF API
calls, warm/cold amortisation ratio, plan-cache hit rate) alongside noisy
wall-clock numbers.  This script compares only the counters, with a
relative tolerance, and exits non-zero when any counter regressed beyond
it — the ``bench-regression`` CI job runs it against the baselines
committed in the repository so solver, caching or vectorisation changes
cannot silently degrade the serving path.

Seven profiles select which counters are gated:

* ``serving`` (default) — the cold/warm trace replay of
  ``BENCH_serving.json``;
* ``coldpath`` — the ~25k-row cold scaling point of
  ``BENCH_coldpath.json``;
* ``scale`` — the 1M-row sharded/multi-core point of ``BENCH_scale.json``:
  the label-column and python-callable workloads replayed serial vs thread
  vs process pool, whose parity deltas (backend-vs-serial work counters and
  row-id mismatches) are committed as zero and therefore gated at *exactly*
  zero (any non-zero delta is an unbounded relative drift);
* ``update`` — the 1M-row incremental-ingest point of ``BENCH_update.json``
  (1% append to a warm table): refresh-path UDF/solver work must stay
  delta-proportional and ``group_index_builds`` stays at exactly zero;
* ``traffic`` — the ≥1000-concurrent-client asyncio point of
  ``BENCH_traffic.json``: warm-path work counters are deterministic by
  construction (``free_memoized=False``) and the shedding audit's
  ``accounting_delta`` is committed as 0 — every ``Overloaded`` raise must
  be counted, never silent.  Queries/sec and latency stay informational;
* ``restart`` — the 1M-row durable warm-restart point of
  ``BENCH_restart.json``: the first post-restart request must be a
  restored warm hit (``plan_restored`` pinned at 1) with every work and
  corruption counter (``udf_evaluations``, ``solver_calls``,
  ``row_ids_mismatch``, ``restore_errors``, ``rebuilds``,
  ``checksum_failures``) committed as zero and therefore gated at
  *exactly* zero.  The restart speedup and persist time are wall-clock
  and stay informational;
* ``outofcore`` — the bounded-memory point of ``BENCH_outofcore.json``:
  a durable table ~4x the residency budget served lazily.  Every
  ``parity.*`` counter (row-id mismatches and absolute work-counter
  deltas between the bounded and unbounded runs) is committed as zero
  and gated at *exactly* zero, and ``bounded.evictions`` is committed
  above zero so a run that stopped exercising eviction pressure fails
  the gate.  Peak RSS and peak resident bytes are informational.

Counters that *improved* beyond the tolerance do not fail the build, but are
reported loudly: a drifted baseline hides future regressions, so the
benchmark should be re-run and the baseline JSON re-committed.

A second, *informational* key class (``latency_p50_ms`` / ``latency_p99_ms``
from the serving layer's always-on histograms, plus anything passed via
repeated ``--informational`` flags) is printed in the diff for context but
never gates: latency is wall-clock and drifts with runner load.

Usage::

    python benchmarks/compare_bench.py \
        --baseline /tmp/BENCH_serving.baseline.json \
        --fresh benchmarks/BENCH_serving.json \
        --tolerance 0.15 \
        --profile serving
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, Tuple

#: ``(json path, lower_is_better)`` for every gated counter, per profile.
#: Wall-clock fields (seconds, queries_per_second) are deliberately absent:
#: they vary with runner load and would make the gate flaky.  The
#: ``group_index_builds`` / ``udf_*_calls`` counters are the cold-path
#: vectorisation gate: index builds must stay amortised by the shared table
#: cache and UDF work must stay batched (per-row API calls pinned at 0).
GATED_COUNTERS: Tuple[Tuple[str, bool], ...] = (
    ("cold.udf_evaluations", True),
    ("cold.solver_calls", True),
    ("cold.group_index_builds", True),
    ("cold.udf_bulk_calls", True),
    ("cold.udf_row_calls", True),
    ("warm.udf_evaluations", True),
    ("warm.solver_calls", True),
    ("warm.work", True),
    ("warm.group_index_builds", True),
    ("warm.udf_row_calls", True),
    ("work_ratio_cold_over_warm", False),
    ("warm.plan_cache.hit_rate", False),
)

COLDPATH_COUNTERS: Tuple[Tuple[str, bool], ...] = (
    ("rows", False),
    ("cold.udf_evaluations", True),
    ("cold.solver_calls", True),
    ("cold.group_index_builds", True),
    ("cold.udf_bulk_calls", True),
    ("cold.udf_row_calls", True),
)

#: The scale profile pins the sharded/parallel engine to the unsharded one:
#: the ``parity.*_abs_delta`` counters are absolute sharded-vs-unsharded
#: differences, committed as 0 — any non-zero fresh value is an unbounded
#: relative drift, so the ±tolerance gate degenerates to an exact ±0 gate.
SCALE_COUNTERS: Tuple[Tuple[str, bool], ...] = (
    ("rows", False),
    ("shards", False),
    ("workers", False),
    ("serial.udf_evaluations", True),
    ("serial.solver_calls", True),
    ("serial.udf_row_calls", True),
    ("python_udf.serial.udf_evaluations", True),
    ("python_udf.serial.solver_calls", True),
    ("parity.udf_evaluations_abs_delta", True),
    ("parity.solver_calls_abs_delta", True),
    ("parity.row_ids_mismatch", True),
    ("parity.thread_python_udf_evaluations_abs_delta", True),
    ("parity.thread_python_solver_calls_abs_delta", True),
    ("parity.thread_python_row_ids_mismatch", True),
    ("parity.process_udf_evaluations_abs_delta", True),
    ("parity.process_solver_calls_abs_delta", True),
    ("parity.process_row_ids_mismatch", True),
    ("parity.workload_row_ids_mismatch", True),
)

#: The update profile gates the incremental-ingest economics: the refresh
#: path's UDF evaluations and solver calls must stay delta-proportional
#: (appended_rows bounds them in-test), ``plan_refreshes`` pins that the
#: serving layer actually took the refresh path, and ``group_index_builds``
#: is committed as 0 — any from-scratch refactorisation during a
#: steady-state append is an unbounded relative drift from that zero.
UPDATE_COUNTERS: Tuple[Tuple[str, bool], ...] = (
    ("rows", False),
    ("appended_rows", True),
    ("warm.udf_evaluations", True),
    ("refresh.udf_evaluations", True),
    ("refresh.charged_evaluations", True),
    ("refresh.solver_calls", True),
    ("refresh.plan_refreshes", False),
    ("refresh.group_index_builds", True),
    ("cold.udf_evaluations", True),
)

#: The traffic profile gates the asyncio front-end's economics: with
#: ``free_memoized=False`` every warm execution's charged work is a pure
#: function of (plan, seed), so the herd's summed counters are exact, and
#: the shedding audit's ``accounting_delta`` (Overloaded raises minus the
#: ``shed`` counter) is committed as 0 — gated at exactly ±0, shedding can
#: never go silent.  The deadline audit (PR 8) is gated the same way:
#: every parked-past-deadline request raises the typed ``DeadlineExceeded``
#: and lands on the ``deadline_exceeded`` counter, so
#: ``deadline.accounting_delta`` and ``deadline.unexpected`` are committed
#: as 0 and gated at exactly ±0.  Latency and q/s stay informational:
#: wall-clock only.
TRAFFIC_COUNTERS: Tuple[Tuple[str, bool], ...] = (
    ("rows", False),
    ("clients", False),
    ("signatures", False),
    ("work.queries", False),
    ("work.plan_hits", False),
    ("work.solver_calls", True),
    ("work.udf_evaluations", True),
    ("work.shed", True),
    ("shed.fired", False),
    ("shed.shed_count", True),
    ("shed.silent_drops", True),
    ("shed.accounting_delta", True),
    ("deadline.fired", False),
    ("deadline.exceeded_count", False),
    ("deadline.unexpected", True),
    ("deadline.accounting_delta", True),
)

#: The restart profile gates the durable warm-restart contract: zero UDF
#: evaluations, zero solver calls, bitwise-identical row ids and a clean
#: recovery path (no restore errors, rebuilds or checksum failures) are
#: all committed as 0, so any non-zero fresh value is an unbounded
#: relative drift and the ±tolerance gate degenerates to exact ±0.  The
#: cold side's counters pin what a from-scratch rebuild costs — if they
#: collapse, the speedup claim is measuring the wrong thing.
RESTART_COUNTERS: Tuple[Tuple[str, bool], ...] = (
    ("rows", False),
    ("shards", False),
    ("windows", False),
    ("restored.plan_restored", False),
    ("restored.udf_evaluations", True),
    ("restored.charged_evaluations", True),
    ("restored.solver_calls", True),
    ("restored.row_ids_mismatch", True),
    ("restored.restore_errors", True),
    ("restored.rebuilds", True),
    ("restored.checksum_failures", True),
    ("restored.segments_loaded", True),
    ("cold.udf_evaluations", True),
    ("cold.solver_calls", True),
)

#: The outofcore profile gates the bounded-memory serving contract: the
#: ``parity.*`` counters are absolute bounded-vs-unbounded differences,
#: committed as 0 — any non-zero fresh value is an unbounded relative
#: drift, so the ±tolerance gate degenerates to an exact ±0 gate — and
#: ``bounded.evictions`` is committed above zero with *higher is better*
#: polarity, so a run whose eviction pressure collapses (the table no
#: longer overflows the budget) regresses the gate instead of silently
#: measuring an in-core workload.
OUTOFCORE_COUNTERS: Tuple[Tuple[str, bool], ...] = (
    ("rows", False),
    ("shards", False),
    ("parity.row_ids_mismatch", True),
    ("parity.udf_evaluations_abs_delta", True),
    ("parity.charged_evaluations_abs_delta", True),
    ("parity.charged_retrieves_abs_delta", True),
    ("parity.solver_calls_abs_delta", True),
    ("unbounded.udf_evaluations", True),
    ("unbounded.solver_calls", True),
    ("bounded.udf_evaluations", True),
    ("bounded.maps", True),
    ("bounded.evictions", False),
)

PROFILES: Dict[str, Tuple[Tuple[str, bool], ...]] = {
    "serving": GATED_COUNTERS,
    "coldpath": COLDPATH_COUNTERS,
    "scale": SCALE_COUNTERS,
    "update": UPDATE_COUNTERS,
    "traffic": TRAFFIC_COUNTERS,
    "restart": RESTART_COUNTERS,
    "outofcore": OUTOFCORE_COUNTERS,
}

#: Keys printed alongside the gate for context but NEVER gated: wall-clock
#: derived numbers (latency percentiles) vary with runner load, so drift in
#: them is expected and informational only.  Extend ad hoc with repeated
#: ``--informational dotted.key`` flags.
INFORMATIONAL_COUNTERS: Dict[str, Tuple[str, ...]] = {
    "serving": (
        "cold.latency_p50_ms",
        "cold.latency_p99_ms",
        "warm.latency_p50_ms",
        "warm.latency_p99_ms",
    ),
    "coldpath": ("cold.latency_p50_ms", "cold.latency_p99_ms"),
    "scale": ("parallel_speedup", "thread_python_speedup", "process_speedup"),
    "update": (),
    "traffic": ("latency.qps", "latency.p50_ms", "latency.p99_ms"),
    "restart": ("restart_speedup", "persist_seconds"),
    "outofcore": (
        "peak_rss_mb",
        "bounded.peak_resident_bytes",
        "bounded.refaults",
        "budget_bytes",
        "segment_bytes",
    ),
}


def _lookup(payload: dict, dotted: str) -> float:
    node = payload
    for part in dotted.split("."):
        node = node[part]
    return float(node)


def _classify(
    baseline: float, fresh: float, lower_is_better: bool, tolerance: float
) -> str:
    """One of ``ok`` / ``regression`` / ``improvement`` for a counter pair."""
    scale = max(abs(baseline), 1e-12)
    drift = (fresh - baseline) / scale
    if abs(drift) <= tolerance:
        return "ok"
    got_worse = drift > 0 if lower_is_better else drift < 0
    return "regression" if got_worse else "improvement"


def compare(
    baseline: dict, fresh: dict, tolerance: float, profile: str = "serving"
) -> Iterator[Tuple[str, float, float, str]]:
    """Yield ``(counter, baseline_value, fresh_value, verdict)`` rows."""
    for dotted, lower_is_better in PROFILES[profile]:
        try:
            base_value = _lookup(baseline, dotted)
            fresh_value = _lookup(fresh, dotted)
        except (KeyError, TypeError):
            # A missing counter means the benchmark schema changed without
            # re-baselining — that is itself a regression of the gate.
            yield dotted, float("nan"), float("nan"), "missing"
            continue
        yield dotted, base_value, fresh_value, _classify(
            base_value, fresh_value, lower_is_better, tolerance
        )


def informational_rows(
    baseline: dict, fresh: dict, profile: str, extra: Tuple[str, ...] = ()
) -> Iterator[Tuple[str, float, float]]:
    """Yield ``(key, baseline_value, fresh_value)`` for ungated context keys.

    Keys absent from either payload yield ``nan`` on that side — older
    baselines predating an informational key must not break the gate.
    """
    seen = set()
    for dotted in INFORMATIONAL_COUNTERS.get(profile, ()) + tuple(extra):
        if dotted in seen:
            continue
        seen.add(dotted)
        try:
            base_value = _lookup(baseline, dotted)
        except (KeyError, TypeError):
            base_value = float("nan")
        try:
            fresh_value = _lookup(fresh, dotted)
        except (KeyError, TypeError):
            fresh_value = float("nan")
        yield dotted, base_value, fresh_value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        required=True,
        help="baseline JSON to gate against — a copy of the *committed* "
        "BENCH_serving.json taken before running the benchmark (the "
        "benchmark rewrites the file in place, so there is deliberately "
        "no default: it would compare the fresh file to itself)",
    )
    parser.add_argument(
        "--fresh", type=Path, required=True, help="freshly generated JSON to gate"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed relative drift per counter (default: 0.15)",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="serving",
        help="which benchmark's counters to gate (default: serving)",
    )
    parser.add_argument(
        "--informational",
        action="append",
        default=[],
        metavar="DOTTED.KEY",
        help="extra JSON key to print in the diff without gating it "
        "(repeatable); latency percentiles are included per profile by "
        "default",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())

    rows = list(compare(baseline, fresh, args.tolerance, args.profile))
    width = max(len(name) for name, *_ in rows)
    print(
        f"benchmark counter gate "
        f"(profile {args.profile}, tolerance ±{args.tolerance:.0%})"
    )
    for name, base_value, fresh_value, verdict in rows:
        marker = {"ok": " ", "improvement": "+", "regression": "!", "missing": "?"}[
            verdict
        ]
        print(
            f"  {marker} {name:<{width}}  baseline={base_value:<12g} "
            f"fresh={fresh_value:<12g} {verdict}"
        )

    info_rows = list(
        informational_rows(baseline, fresh, args.profile, tuple(args.informational))
    )
    if info_rows:
        print("informational (never gated):")
        info_width = max(len(name) for name, *_ in info_rows)
        for name, base_value, fresh_value in info_rows:
            print(
                f"  i {name:<{info_width}}  baseline={base_value:<12g} "
                f"fresh={fresh_value:<12g}"
            )

    regressions = [row for row in rows if row[-1] in ("regression", "missing")]
    improvements = [name for name, *_rest, verdict in rows if verdict == "improvement"]
    if improvements:
        print(
            "note: counters improved beyond tolerance "
            f"({', '.join(improvements)}); re-run the benchmark and commit the "
            "fresh baseline JSON so the gate keeps gating."
        )
    if regressions:
        # Name each breached counter with its values so the failure is
        # actionable straight from the CI log, without opening the JSONs.
        print(f"FAIL: {len(regressions)} counter(s) regressed (tolerance ±{args.tolerance:.0%}):")
        for name, base_value, fresh_value, verdict in regressions:
            if verdict == "missing":
                print(
                    f"  ! {name}: missing from baseline or fresh payload "
                    "(benchmark schema changed without re-baselining)"
                )
                continue
            if abs(base_value) < 1e-9:
                detail = f"delta {fresh_value - base_value:+g} from a zero baseline"
            else:
                detail = f"drift {(fresh_value - base_value) / abs(base_value):+.1%}"
            print(
                f"  ! {name}: baseline={base_value:g} fresh={fresh_value:g} ({detail})"
            )
        return 1
    print("OK: all gated counters within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
