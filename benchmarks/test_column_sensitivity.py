"""Section 6.2.1: Intel-Sample cost when forced to use each candidate column."""

from conftest import run_once

from repro.experiments.experiment1 import column_sensitivity
from repro.experiments.report import format_mapping


def test_column_sensitivity(benchmark, bench_config):
    results = run_once(benchmark, column_sensitivity, bench_config, dataset_name="lending_club")
    print("\nSection 6.2.1 — evaluations per forced correlated column (LC)")
    print(format_mapping({k: round(v) for k, v in results.items()}, "column", "evaluations"))

    naive = results.pop("__naive__")
    best_column = min(results, key=results.get)
    worst_cost = max(results.values())
    # Paper shape: the designated column (grade) is (near-)best, uncorrelated
    # columns cost more, and even the worst column beats Naive.
    assert results["grade"] <= min(results.values()) * 1.1
    assert worst_cost > results["grade"]
    assert worst_cost < naive
    assert best_column in ("grade", "grade_band")
