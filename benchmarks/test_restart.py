"""Restart point: warm reopen from durable storage versus cold rebuild.

Builds a ~1M-row sharded table behind a :class:`~repro.serving.QueryService`
configured with ``storage_dir``, serves a query cold then warm (same seed
the measurement replays), and shuts the service down — checkpointing the
table into checksummed segments and persisting the warm state (plan-cache
entries, statistics, group-index codes, UDF memo) under the manifest.
Then two restart paths answer the *same previously-served query*:

* **warm restart** — reopen the catalog from the manifest (segments
  validate block CRCs and come back as read-only memmaps), restore the
  warm state, and serve: the first request must report
  ``plan_cache: "restored"`` and execute with **zero** UDF evaluations,
  returning row ids bitwise identical to the pre-shutdown warm run;
* **cold rebuild** — what a system without durable warm state must do:
  re-ingest the source columns into a fresh table and run the entire cold
  pipeline (labelling, column selection, sampling, solve, execution).

Wall-clock uses the suite's A/B discipline: ``WINDOWS`` interleaved,
order-alternating (restore, cold) pairs, and the asserted speedup is the
**median** of the per-window ratios — a single noisy window cannot flake
the gate.  Emits ``BENCH_restart.json``; the zero-committed work counters
(``restored.udf_evaluations``, ``restored.solver_calls``,
``restored.row_ids_mismatch``, ``restored.restore_errors``, ...) are gated
at exactly ±0 by ``compare_bench.py --profile restart`` in CI.  The
speedup itself (default floor ``REPRO_BENCH_MIN_RESTART_SPEEDUP`` = 10x,
``<= 0`` disarms) is wall-clock and never part of the JSON gate.
"""

from __future__ import annotations

import json
import math
import os
import shutil
import statistics
import tempfile
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.predicate import UdfPredicate
from repro.db.query import SelectQuery
from repro.db.sharding import ShardedTable
from repro.db.storage import CatalogStore
from repro.db.udf import UserDefinedFunction
from repro.serving import QueryService, ServiceConfig

OUTPUT_PATH = Path(__file__).resolve().parent / "BENCH_restart.json"

SCALE_ROWS = 1_000_000
BENCH_SHARDS = 8
TABLE_NAME = "restart_bench"
#: The seed the pre-shutdown warm run and every measured restart replay
#: share: warm execution draws per-request coins, so bitwise parity (and a
#: fully covering UDF memo) holds against the *warm* run at the same seed.
RESTART_SEED = 7
#: Interleaved, order-alternating (restore, cold) measurement windows; the
#: median per-window ratio is asserted.
WINDOWS = 3
#: Minimum warm-restart / cold-rebuild wall-clock ratio; ``<= 0`` disarms.
MIN_RESTART_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_RESTART_SPEEDUP", "10.0")
)

GROUP_FRACTIONS = (0.24, 0.20, 0.16, 0.14, 0.10, 0.08, 0.05, 0.03)
GROUP_SELECTIVITIES = (0.66, 0.48, 0.72, 0.30, 0.55, 0.62, 0.20, 0.44)

QUERY_ALPHA, QUERY_BETA, QUERY_RHO = 0.9, 0.85, 0.8


def _build_columns(rows: int, seed: int = 2015):
    """Array-native synthetic columns with exact per-group positive counts."""
    rng = np.random.default_rng(seed)
    sizes = [int(round(fraction * rows)) for fraction in GROUP_FRACTIONS]
    sizes[0] += rows - sum(sizes)
    codes = np.repeat(np.arange(len(sizes)), sizes)
    labels = np.zeros(rows, dtype=bool)
    start = 0
    for size, selectivity in zip(sizes, GROUP_SELECTIVITIES):
        labels[start : start + int(round(size * selectivity))] = True
        start += size
    order = rng.permutation(rows)
    codes, labels = codes[order], labels[order]
    group_names = np.array([f"g{i}" for i in range(len(sizes))])
    return {
        "grade": group_names[codes].tolist(),
        "is_good": labels.tolist(),
        "amount": np.abs(rng.normal(12_000, 6_000, rows)).tolist(),
    }


def _expensive_udf(name: str) -> UserDefinedFunction:
    """An expensive per-row predicate (see ``test_update_workload``)."""

    def check(row) -> bool:
        acc = 0.0
        for k in range(50):
            acc += math.sin(acc + k + row["amount"])
        return bool(row["is_good"]) ^ (acc > 1e9)  # acc term never trips

    return UserDefinedFunction(name=name, func=check)


def _query(udf: UserDefinedFunction) -> SelectQuery:
    return SelectQuery(
        table=TABLE_NAME,
        predicate=UdfPredicate(udf),
        alpha=QUERY_ALPHA,
        beta=QUERY_BETA,
        rho=QUERY_RHO,
        correlated_column=None,  # automatic column selection: full cold pipeline
    )


def _persist_workload(columns, storage_dir):
    """Serve cold + warm at RESTART_SEED, shut down, persist everything."""
    table = ShardedTable.from_columns(
        TABLE_NAME, columns, hidden_columns=["is_good"], num_shards=BENCH_SHARDS
    )
    udf = _expensive_udf("restart_served")
    catalog = Catalog()
    catalog.register_table(table)
    catalog.register_udf(udf)
    service = QueryService(
        Engine(catalog), config=ServiceConfig(storage_dir=storage_dir)
    )
    service.submit(_query(udf), seed=100)  # cold: plans, statistics, memo
    warm = service.submit(_query(udf), seed=RESTART_SEED)
    assert warm.metadata["plan_cache"] == "hit"
    started = time.perf_counter()
    service.close()  # checkpoint + warm state, the durable commit
    persist_seconds = time.perf_counter() - started
    return np.asarray(warm.row_ids, dtype=np.intp), persist_seconds


def _restore_window(storage_dir, warm_row_ids):
    """One timed warm restart: manifest open -> restored warm hit."""
    started = time.perf_counter()
    catalog, reports = CatalogStore(storage_dir).open()
    udf = _expensive_udf("restart_served")  # UDFs are code: re-registered under the same name
    catalog.register_udf(udf)
    service = QueryService(
        Engine(catalog), config=ServiceConfig(storage_dir=storage_dir)
    )
    result = service.submit(_query(udf), seed=RESTART_SEED)
    seconds = time.perf_counter() - started
    storage = service.stats().storage
    window = {
        "seconds": round(seconds, 4),
        "plan_cache": result.metadata["plan_cache"],
        "plan_restored": int(service.metrics()["plan_restored"]),
        "udf_evaluations": int(udf.counter_snapshot()["calls"]),
        "charged_evaluations": int(result.ledger.evaluated_count),
        "solver_calls": int(service.metrics()["solver_calls"]),
        "row_ids_mismatch": int(
            not np.array_equal(
                np.asarray(result.row_ids, dtype=np.intp), warm_row_ids
            )
        ),
        "restore_errors": int(storage["restore_errors"]),
        "rebuilds": int(storage["rebuilds"]),
        "checksum_failures": int(storage["checksum_failures"]),
        "segments_loaded": int(
            reports[TABLE_NAME].to_dict()["segments_loaded"]
        ),
    }
    service.close()
    return window


def _cold_window(columns):
    """One timed cold rebuild: re-ingest + full cold pipeline."""
    started = time.perf_counter()
    table = ShardedTable.from_columns(
        TABLE_NAME, columns, hidden_columns=["is_good"], num_shards=BENCH_SHARDS
    )
    udf = _expensive_udf("restart_cold")
    catalog = Catalog()
    catalog.register_table(table)
    catalog.register_udf(udf)
    service = QueryService(Engine(catalog))
    result = service.submit(_query(udf), seed=RESTART_SEED)
    seconds = time.perf_counter() - started
    window = {
        "seconds": round(seconds, 4),
        "udf_evaluations": int(udf.counter_snapshot()["calls"]),
        "charged_evaluations": int(result.ledger.evaluated_count),
        "solver_calls": int(service.metrics()["solver_calls"]),
    }
    service.close()
    return window


def _restart_comparison():
    columns = _build_columns(SCALE_ROWS)
    storage_dir = tempfile.mkdtemp(prefix="repro-restart-bench-")
    try:
        warm_row_ids, persist_seconds = _persist_workload(columns, storage_dir)
        restore_windows = []
        cold_windows = []
        for window in range(WINDOWS):
            restore_first = window % 2 == 0
            if restore_first:
                restore_windows.append(_restore_window(storage_dir, warm_row_ids))
            cold_windows.append(_cold_window(columns))
            if not restore_first:
                restore_windows.append(_restore_window(storage_dir, warm_row_ids))
    finally:
        shutil.rmtree(storage_dir, ignore_errors=True)
    speedups = [
        cold["seconds"] / max(restore["seconds"], 1e-9)
        for restore, cold in zip(restore_windows, cold_windows)
    ]
    return persist_seconds, restore_windows, cold_windows, speedups


def test_restart_workload(benchmark):
    persist_seconds, restore_windows, cold_windows, speedups = run_once(
        benchmark, _restart_comparison
    )
    restored, cold = restore_windows[0], cold_windows[0]
    speedup = statistics.median(speedups)

    print(
        f"\nRestart point — {SCALE_ROWS} rows, {BENCH_SHARDS} shards, "
        f"median of {WINDOWS} interleaved restore/cold windows"
    )
    print(f"  persist (close)  : {persist_seconds:.2f}s")
    print(
        f"  warm restart     : {restored['seconds']:.2f}s, "
        f"plan_cache={restored['plan_cache']}, "
        f"{restored['udf_evaluations']} UDF evaluations, "
        f"{restored['segments_loaded']} segments"
    )
    print(
        f"  cold rebuild     : {cold['seconds']:.2f}s, "
        f"{cold['udf_evaluations']} UDF evaluations, "
        f"{cold['solver_calls']} solver calls"
    )
    print(
        "  restart speedup  : "
        + ", ".join(f"{value:.1f}x" for value in speedups)
        + f" -> median {speedup:.1f}x"
    )

    payload = {
        "rows": SCALE_ROWS,
        "shards": BENCH_SHARDS,
        "windows": WINDOWS,
        "persist_seconds": round(persist_seconds, 4),
        # Window 0 counters; every window is asserted identical below, so
        # the committed values are deterministic.
        "restored": restored,
        "cold": cold,
        "restart_speedup": round(speedup, 2),
        "speedup_windows": [round(value, 2) for value in speedups],
        "cpu_count": os.cpu_count(),
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {OUTPUT_PATH.name}")

    # The durable-restart claims, every window: the first post-restart
    # request is a restored warm hit with zero UDF evaluations and answers
    # bitwise identical to the pre-shutdown warm run at the same seed; the
    # recovery path saw no corruption, no rebuild, no restore errors.
    for window in restore_windows:
        assert window["plan_cache"] == "restored"
        assert window["plan_restored"] == 1
        assert window["udf_evaluations"] == 0
        assert window["solver_calls"] == 0
        assert window["row_ids_mismatch"] == 0
        assert window["restore_errors"] == 0
        assert window["rebuilds"] == 0
        assert window["checksum_failures"] == 0
    # Work counters are deterministic: the windows must agree exactly.
    stable = [
        {k: w[k] for k in w if k != "seconds"} for w in restore_windows
    ]
    assert all(window == stable[0] for window in stable[1:])
    assert all(
        {k: w[k] for k in w if k != "seconds"}
        == {k: cold[k] for k in cold if k != "seconds"}
        for w in cold_windows[1:]
    )
    if MIN_RESTART_SPEEDUP > 0:
        assert speedup >= MIN_RESTART_SPEEDUP, (
            f"warm restart only {speedup:.1f}x faster than cold rebuild "
            f"(required {MIN_RESTART_SPEEDUP}x; set "
            "REPRO_BENCH_MIN_RESTART_SPEEDUP to tune)"
        )
