"""Traffic point: the asyncio front-end under >=1000 concurrent clients.

Simulates a production-shaped open load against one warm
:class:`~repro.serving.QueryService`: ``TRAFFIC_CLIENTS`` concurrent
``submit_async`` requests drawing from ``len(SIGNATURES)`` query signatures
with a zipfian popularity mix (rank-``ZIPF_S`` weights — a few hot
signatures, a long tail), per-request fixed seeds, over a sharded ~80k-row
table.

Work is deterministic by construction: the service runs with
``free_memoized=False`` so every warm execution charges the full
plan-determined work — a pure function of (plan, seed), independent of
request interleaving — and all signatures are warmed sequentially first, so
the async phase is pure warm-path traffic.  ``BENCH_traffic.json`` commits
those work counters plus a **shedding audit**: a dedicated overload phase
blocks the service with a gated UDF, fires a fixed burst over the admission
limit, and records that every over-limit request raised a typed
:class:`~repro.serving.Overloaded` *and* was counted on the ``shed`` metric
(``shed.accounting_delta`` is the raise-vs-count difference, committed as 0
and gated at exactly ±0 — shedding is never silent).  A **deadline audit**
(PR 8) does the same for per-request deadlines: a burst of requests parked
behind a gated flight leader, each carrying a short ``timeout_s``, must all
raise the typed :class:`~repro.resilience.DeadlineExceeded` — never hang,
never silently complete — and every raise must be counted on the
``deadline_exceeded`` metric (``deadline.accounting_delta`` committed as 0,
gated at exactly ±0).  Queries/sec and p50/p99 latency come from the
always-on serving histograms and are reported as informational keys only
(wall-clock never gates).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.db import Catalog, Engine, ShardedTable, UserDefinedFunction
from repro.db.predicate import UdfPredicate
from repro.db.query import SelectQuery
from repro.resilience import DeadlineExceeded
from repro.serving import Overloaded, QueryService, ServiceConfig

OUTPUT_PATH = Path(__file__).resolve().parent / "BENCH_traffic.json"

TRAFFIC_ROWS = 80_000
TRAFFIC_SHARDS = 4
TRAFFIC_CLIENTS = 1200
ZIPF_S = 1.1
#: (alpha, beta) per signature; rho fixed at 0.8.
SIGNATURES = (
    (0.90, 0.85),
    (0.92, 0.80),
    (0.88, 0.90),
    (0.85, 0.85),
    (0.93, 0.75),
    (0.87, 0.80),
)

#: Overload phase: burst size and per-class admission limit.
SHED_BURST = 32
SHED_LIMIT = 5

#: Deadline phase: parked-follower burst size and per-request timeout.
DEADLINE_BURST = 8
DEADLINE_TIMEOUT_S = 0.2

GROUP_FRACTIONS = (0.30, 0.22, 0.18, 0.12, 0.10, 0.08)
GROUP_SELECTIVITIES = (0.60, 0.30, 0.80, 0.20, 0.50, 0.85)


def _build_table(rows: int, name: str, seed: int = 2015):
    rng = np.random.default_rng(seed)
    sizes = [int(round(fraction * rows)) for fraction in GROUP_FRACTIONS]
    sizes[0] += rows - sum(sizes)
    codes = np.repeat(np.arange(len(sizes)), sizes)
    labels = np.zeros(rows, dtype=bool)
    start = 0
    for size, selectivity in zip(sizes, GROUP_SELECTIVITIES):
        labels[start : start + int(round(size * selectivity))] = True
        start += size
    order = rng.permutation(rows)
    codes, labels = codes[order], labels[order]
    names = np.array([f"g{i}" for i in range(len(sizes))])
    return ShardedTable.from_columns(
        name,
        {
            "grade": names[codes].tolist(),
            "is_good": labels.tolist(),
        },
        hidden_columns=["is_good"],
        num_shards=TRAFFIC_SHARDS,
    )


def _query(table_name: str, udf, alpha: float, beta: float) -> SelectQuery:
    return SelectQuery(
        table=table_name,
        predicate=UdfPredicate(udf),
        alpha=alpha,
        beta=beta,
        rho=0.8,
        correlated_column="grade",
    )


def _zipf_requests():
    """The deterministic (signature_rank, seed) sequence of the load phase."""
    weights = 1.0 / np.power(np.arange(1, len(SIGNATURES) + 1, dtype=float), ZIPF_S)
    weights /= weights.sum()
    rng = np.random.default_rng(777)
    ranks = rng.choice(len(SIGNATURES), size=TRAFFIC_CLIENTS, p=weights)
    return [(int(rank), 10_000 + position) for position, rank in enumerate(ranks)]


def _load_phase():
    table = _build_table(TRAFFIC_ROWS, "traffic_bench")
    udf = UserDefinedFunction.from_label_column("traffic_udf", "is_good")
    catalog = Catalog()
    catalog.register_table(table)
    catalog.register_udf(udf)
    service = QueryService(
        Engine(catalog),
        config=ServiceConfig(
            # Deterministic charged work per (plan, seed): never memo-discount.
            free_memoized=False,
            max_concurrency=8,
            # The throughput phase wants the full client herd admitted;
            # admission economics are audited separately in the shed phase.
            max_pending=2 * TRAFFIC_CLIENTS,
        ),
    )
    queries = [
        _query("traffic_bench", udf, alpha, beta) for alpha, beta in SIGNATURES
    ]
    # Sequential warm-up: all planning/sampling happens here, so the timed
    # phase is pure warm traffic and its counters are interleaving-free.
    for position, query in enumerate(queries):
        service.submit(query, seed=5_000 + position)
    requests = _zipf_requests()

    async def herd():
        return await asyncio.gather(
            *[
                service.submit_async(queries[rank], seed=seed)
                for rank, seed in requests
            ]
        )

    started = time.perf_counter()
    results = asyncio.run(herd())
    elapsed = time.perf_counter() - started

    evaluations = sum(int(r.ledger.evaluated_count) for r in results)
    retrievals = sum(int(r.ledger.retrieved_count) for r in results)
    metrics = service.metrics()
    latency = service.latency_snapshot().get("all", {})
    return {
        "work": {
            "queries": int(metrics["queries"]),
            "plan_hits": int(metrics["plan_hits"]),
            "solver_calls": int(metrics["solver_calls"]),
            "coalesced": int(metrics["coalesced"]),
            "shed": int(metrics["shed"]),
            "udf_evaluations": evaluations,
            "retrievals": retrievals,
        },
        "latency": {
            "qps": round(TRAFFIC_CLIENTS / elapsed, 2),
            "p50_ms": latency.get("p50_ms"),
            "p99_ms": latency.get("p99_ms"),
        },
    }


def _shed_phase():
    table = _build_table(2_000, "shed_bench", seed=7)
    gate = threading.Event()

    def gated(row):
        gate.wait(timeout=60)
        return bool(row["is_good"])

    udf = UserDefinedFunction("shed_udf", gated)
    catalog = Catalog()
    catalog.register_table(table)
    catalog.register_udf(udf)
    service = QueryService(
        Engine(catalog),
        config=ServiceConfig(
            max_concurrency=1, class_limits={"approximate": SHED_LIMIT}
        ),
    )
    query = _query("shed_bench", udf, 0.85, 0.85)

    async def overload():
        leader = asyncio.create_task(service.submit_async(query, seed=1))
        while not service._async_flights:
            await asyncio.sleep(0.005)
        burst_tasks = [
            asyncio.create_task(service.submit_async(query, seed=1))
            for _ in range(SHED_BURST)
        ]
        # One yield lets every burst task run its (synchronous) admission
        # segment in creation order: over-limit tasks finish shed, in-limit
        # ones park on the leader's flight.  Only then release the leader —
        # gathering first would deadlock on the coalesced followers.
        await asyncio.sleep(0)
        gate.set()
        burst = await asyncio.gather(*burst_tasks, return_exceptions=True)
        await leader
        return burst

    burst = asyncio.run(overload())
    raised = sum(1 for item in burst if isinstance(item, Overloaded))
    completed = sum(1 for item in burst if not isinstance(item, BaseException))
    silent = len(burst) - raised - completed  # anything neither answered nor typed
    counted = int(service.metrics()["shed"])
    return {
        "fired": SHED_BURST,
        "limit": SHED_LIMIT,
        "shed_count": raised,
        "completed": completed + 1,  # + the leader
        "silent_drops": silent,
        # raised-vs-counted difference: committed 0, gated at exactly +-0.
        "accounting_delta": raised - counted,
    }


def _deadline_phase():
    """Requests parked past their deadline: typed, counted, never hung.

    A gated leader holds the coalescing flight for a cold signature while a
    burst of short-``timeout_s`` followers parks behind it.  Every follower
    must surface :class:`DeadlineExceeded` (the typed error — a silent
    completion or a hang would be a resilience regression), and every raise
    must land on the ``deadline_exceeded`` counter.
    """
    table = _build_table(2_000, "deadline_bench", seed=9)
    gate = threading.Event()

    def gated(row):
        gate.wait(timeout=60)
        return bool(row["is_good"])

    udf = UserDefinedFunction("deadline_udf", gated)
    catalog = Catalog()
    catalog.register_table(table)
    catalog.register_udf(udf)
    service = QueryService(
        Engine(catalog), config=ServiceConfig(max_concurrency=1)
    )
    query = _query("deadline_bench", udf, 0.85, 0.85)

    async def parked():
        leader = asyncio.create_task(service.submit_async(query, seed=1))
        while not service._async_flights:
            await asyncio.sleep(0.005)
        burst_tasks = [
            asyncio.create_task(
                service.submit_async(query, seed=1, timeout_s=DEADLINE_TIMEOUT_S)
            )
            for _ in range(DEADLINE_BURST)
        ]
        # The followers' deadlines all fire while the leader stays gated;
        # gather settles them before the leader is released.
        burst = await asyncio.gather(*burst_tasks, return_exceptions=True)
        gate.set()
        await leader
        return burst

    burst = asyncio.run(parked())
    raised = sum(1 for item in burst if isinstance(item, DeadlineExceeded))
    unexpected = len(burst) - raised  # hung, answered, or wrongly-typed
    counted = int(service.metrics()["deadline_exceeded"])
    return {
        "fired": DEADLINE_BURST,
        "timeout_s": DEADLINE_TIMEOUT_S,
        "exceeded_count": raised,
        "unexpected": unexpected,
        # raised-vs-counted difference: committed 0, gated at exactly +-0.
        "accounting_delta": raised - counted,
    }


def _traffic_point():
    load = _load_phase()
    shed = _shed_phase()
    deadline = _deadline_phase()
    return {
        "rows": TRAFFIC_ROWS,
        "shards": TRAFFIC_SHARDS,
        "clients": TRAFFIC_CLIENTS,
        "signatures": len(SIGNATURES),
        "zipf_s": ZIPF_S,
        "executor": "serial",
        **load,
        "shed": shed,
        "deadline": deadline,
    }


def test_traffic_async_frontend(benchmark):
    payload = run_once(benchmark, _traffic_point)

    work, shed, latency = payload["work"], payload["shed"], payload["latency"]
    deadline = payload["deadline"]
    print(
        f"\nTraffic point — {payload['clients']} clients over "
        f"{payload['signatures']} signatures (zipf s={payload['zipf_s']}), "
        f"{payload['rows']} rows"
    )
    print(
        f"  {latency['qps']} q/s, p50 {latency['p50_ms']} ms, "
        f"p99 {latency['p99_ms']} ms (informational)"
    )
    print(
        f"  work: {work['queries']} queries, {work['plan_hits']} plan hits, "
        f"{work['solver_calls']} solver calls, "
        f"{work['udf_evaluations']} UDF evaluations"
    )
    print(
        f"  shed: {shed['shed_count']}/{shed['fired']} over limit "
        f"{shed['limit']}, accounting delta {shed['accounting_delta']}"
    )
    print(
        f"  deadline: {deadline['exceeded_count']}/{deadline['fired']} typed "
        f"at {deadline['timeout_s']}s, accounting delta "
        f"{deadline['accounting_delta']}"
    )
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {OUTPUT_PATH.name}")

    # The whole herd was answered: every client a warm plan hit, none shed.
    assert work["queries"] == TRAFFIC_CLIENTS + len(SIGNATURES)
    assert work["plan_hits"] == TRAFFIC_CLIENTS
    assert work["shed"] == 0
    # Shedding is typed and counted, never silent.
    assert shed["silent_drops"] == 0
    assert shed["accounting_delta"] == 0
    assert shed["shed_count"] == SHED_BURST - (SHED_LIMIT - 1)
    assert shed["completed"] == SHED_LIMIT
    # Deadlines are typed and counted, never silent, never a hang.
    assert deadline["exceeded_count"] == DEADLINE_BURST
    assert deadline["unexpected"] == 0
    assert deadline["accounting_delta"] == 0
