"""Figure 2(a): fraction of runs meeting the precision constraint vs rho."""

from conftest import run_once

from repro.experiments.experiment1 import figure2a_2b
from repro.experiments.report import format_series

RHO_VALUES = (0.5, 0.7, 0.9)
ITERATIONS = 6


def test_figure2a_precision_satisfaction(benchmark, bench_config):
    results = run_once(
        benchmark,
        figure2a_2b,
        bench_config,
        rho_values=RHO_VALUES,
        dataset_names=("lending_club", "prosper"),
        iterations=ITERATIONS,
    )
    series = {
        dataset: {rho: rates["precision_rate"] for rho, rates in per_rho.items()}
        for dataset, per_rho in results.items()
    }
    print("\nFigure 2(a) — fraction of runs satisfying the precision constraint")
    print(format_series(series, x_label="rho"))

    # Paper shape: the satisfaction rate sits above the requested rho
    # (allowing one failure of slack at this small iteration count).
    slack = 1.0 / ITERATIONS + 1e-9
    for per_rho in series.values():
        for rho, rate in per_rho.items():
            assert rate >= rho - slack
