"""Figure 1(c): evaluations vs sampling parameter with a logistic-regression virtual column."""

from conftest import run_once

from repro.experiments.experiment2 import figure1c
from repro.experiments.report import format_series


NUM_VALUES = (1.0, 2.5, 5.0, 9.0)


def test_figure1c_virtual_column_sweep(benchmark, bench_config):
    results = run_once(
        benchmark,
        figure1c,
        bench_config,
        num_values=NUM_VALUES,
        iterations=1,
    )
    print("\nFigure 1(c) — evaluations vs num (logistic-regression virtual column)")
    print(format_series(results, x_label="num"))

    # Shape: the virtual-column pipeline is always cheaper than evaluating the
    # whole table, and on the high-selectivity LC-like dataset it also beats
    # the Naive baseline (beta * n evaluations).  At the benchmark's reduced
    # scale the low-selectivity Marketing dataset is close to the break-even
    # the paper reports (3% savings), so it is only held to the weaker bound.
    for dataset, series in results.items():
        dataset_bundle = bench_config.load(dataset)
        assert min(series.values()) < dataset_bundle.num_rows
    lc = bench_config.load("lending_club")
    assert min(results["lending_club"].values()) < bench_config.beta * lc.num_rows
