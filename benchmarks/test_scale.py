"""Scale point: sharded multi-core execution at 1M rows, pinned to serial.

Builds a ~1M-row synthetic table (8 groups, mixed selectivities chosen so the
solved plans do real evaluation work) and replays the same 3-query cold trace
under two workloads:

* **label-column UDF** (vectorised NumPy evaluation) — serial vs the
  ``BENCH_WORKERS``-thread :class:`~repro.core.ParallelBatchExecutor` over an
  8-shard :class:`~repro.db.ShardedTable`.  Threads suffice here: per-span
  work stays inside GIL-releasing kernels.
* **python-callable UDF** (:class:`~repro.db.udf.RevealLabel`, evaluated row
  by row — the paper's expensive-predicate regime) — serial vs the thread
  pool vs :class:`~repro.core.procpool.ProcessPoolBatchExecutor` over
  shared-memory shards.  The thread replay is the motivation exhibit (GIL
  serialisation holds it near/below 1x); the **process** replay is the one
  that must scale, and the one the speedup assert arms on.

Because the coin discipline is position-addressable and the process parent
replays serial charging while folding, every replay is *bitwise identical*:
same returned row ids, same UDF evaluations, same solver calls, for every
backend, shard layout and worker count.  ``BENCH_scale.json`` records all
replays plus ``parity.*`` counters (committed as zero;
``compare_bench.py --profile scale`` gates them at exactly ±0 in CI,
alongside the serial work counters at ±15%).

Throughput scaling is asserted only where it can physically happen: on hosts
with >= ``BENCH_WORKERS`` cores the **process** replay of the python-UDF
workload must reach ``REPRO_BENCH_MIN_PARALLEL_SPEEDUP`` (default 2.0,
``<= 0`` disarms) times the serial q/s.  The armed ratio follows the
suite's A/B discipline: ``WINDOWS`` interleaved, order-alternating
(serial, process) replay pairs, asserted on the **median** per-window
ratio so a single noisy window cannot flake the gate (the replays are
bitwise identical, so repeating them perturbs only wall-clock).  Thread
speedups are recorded but never asserted — the label-path fan is
memory-bandwidth bound and the python-path fan is the anti-exhibit.
Wall-clock is never part of the JSON gate.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.core import IntelSample, QueryConstraints
from repro.core.parallel import ParallelBatchExecutor
from repro.core.procpool import ProcessPoolBatchExecutor
from repro.db import CostLedger, ShardedTable, Table, UserDefinedFunction
from repro.db.shm import release_exports
from repro.db.udf import RevealLabel

OUTPUT_PATH = Path(__file__).resolve().parent / "BENCH_scale.json"

#: Rows of the scale point (the ISSUE floor is 500k).
SCALE_ROWS = 1_000_000
BENCH_SHARDS = 8
BENCH_WORKERS = 4
#: (alpha, beta) per trace query; rho is fixed at 0.8.
TRACE = ((0.9, 0.85), (0.92, 0.8), (0.88, 0.9))
#: Interleaved, order-alternating (serial, process) python-UDF replay
#: pairs; the median per-window q/s ratio is the armed assert.
WINDOWS = 3
#: Minimum process-over-serial q/s on the python-UDF workload, on hosts with
#: >= BENCH_WORKERS cores.  Set REPRO_BENCH_MIN_PARALLEL_SPEEDUP=0 to disarm.
MIN_PARALLEL_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_PARALLEL_SPEEDUP", "2.0")
)

#: Group layout: sizes skewed, selectivities mixed (no group is pure), so
#: precision repair forces the plans to evaluate a large tuple fraction —
#: the UDF/execution work the parallel fan-out is supposed to absorb.
GROUP_FRACTIONS = (0.26, 0.20, 0.16, 0.12, 0.10, 0.08, 0.05, 0.03)
GROUP_SELECTIVITIES = (0.62, 0.35, 0.78, 0.22, 0.55, 0.88, 0.12, 0.45)


def _build_columns(rows: int, seed: int = 2015):
    """Array-native synthetic columns (exact per-group positive counts)."""
    rng = np.random.default_rng(seed)
    sizes = [int(round(fraction * rows)) for fraction in GROUP_FRACTIONS]
    sizes[0] += rows - sum(sizes)
    codes = np.repeat(np.arange(len(sizes)), sizes)
    labels = np.zeros(rows, dtype=bool)
    start = 0
    for size, selectivity in zip(sizes, GROUP_SELECTIVITIES):
        labels[start : start + int(round(size * selectivity))] = True
        start += size
    order = rng.permutation(rows)
    codes, labels = codes[order], labels[order]
    group_names = np.array([f"g{i}" for i in range(len(sizes))])
    return {
        "grade": group_names[codes].tolist(),
        "is_good": labels.tolist(),
        "amount": np.abs(rng.normal(12_000, 6_000, rows)).tolist(),
    }


def _replay(table, workers: int, tag: str, executor_cls=ParallelBatchExecutor,
            python_udf: bool = False):
    """Run the cold trace (fresh UDF per query, index built lazily in-query)."""
    elapsed = 0.0
    udf_evaluations = 0
    solver_calls = 0
    row_calls = 0
    results = []
    for position, (alpha, beta) in enumerate(TRACE):
        if python_udf:
            # No label_column attribute: every backend takes the per-row
            # python-callable path (RevealLabel is module-level, so the spec
            # still ships to workers).
            udf = UserDefinedFunction(
                f"scale_{tag}_{position}", RevealLabel("is_good", True)
            )
        else:
            udf = UserDefinedFunction.from_label_column(
                f"scale_{tag}_{position}", "is_good"
            )
        ledger = CostLedger()
        strategy = IntelSample(
            random_state=9_000 + position,
            executor_factory=lambda rng: executor_cls(rng, max_workers=workers),
        )
        started = time.perf_counter()
        result = strategy.answer(
            table,
            udf,
            QueryConstraints(alpha=alpha, beta=beta, rho=0.8),
            ledger,
            correlated_column="grade",
        )
        elapsed += time.perf_counter() - started
        udf_evaluations += ledger.evaluated_count
        solver_calls += 1
        row_calls += udf.row_calls
        results.append(np.asarray(result.row_ids, dtype=np.intp))
    return {
        "seconds": round(elapsed, 4),
        "queries_per_second": round(len(TRACE) / elapsed, 2),
        "udf_evaluations": int(udf_evaluations),
        "solver_calls": int(solver_calls),
        "udf_row_calls": int(row_calls),
    }, results


def _abs_deltas(reference, other, other_results, reference_results, prefix=""):
    mismatches = sum(
        0 if np.array_equal(a, b) else 1
        for a, b in zip(reference_results, other_results)
    )
    return {
        f"{prefix}udf_evaluations_abs_delta": abs(
            other["udf_evaluations"] - reference["udf_evaluations"]
        ),
        f"{prefix}solver_calls_abs_delta": abs(
            other["solver_calls"] - reference["solver_calls"]
        ),
        f"{prefix}row_ids_mismatch": int(mismatches),
    }


def _scale_comparison():
    columns = _build_columns(SCALE_ROWS)
    serial_table = Table.from_columns(
        "scale_bench", columns, hidden_columns=["is_good"]
    )
    sharded_table = ShardedTable.from_columns(
        "scale_bench",
        columns,
        hidden_columns=["is_good"],
        num_shards=BENCH_SHARDS,
        max_workers=BENCH_WORKERS,
    )
    # Label-column workload: serial vs thread fan (unchanged exhibit).
    serial, serial_results = _replay(serial_table, workers=1, tag="serial")
    parallel, parallel_results = _replay(
        sharded_table, workers=BENCH_WORKERS, tag="parallel"
    )
    # Python-callable workload: serial vs thread (anti-exhibit) vs process.
    # The armed serial-vs-process ratio runs WINDOWS interleaved,
    # order-alternating pairs; every replay is bitwise identical (the coin
    # discipline is position-addressable), so repetition perturbs only
    # wall-clock and window 0's counters/results stand for all windows.
    py_thread, py_thread_results = _replay(
        sharded_table, workers=BENCH_WORKERS, tag="py_thread", python_udf=True
    )
    py_serial_windows = []
    py_process_windows = []
    for window in range(WINDOWS):
        serial_first = window % 2 == 0
        if serial_first:
            py_serial_windows.append(
                _replay(serial_table, workers=1, tag="py_serial", python_udf=True)
            )
        py_process_windows.append(
            _replay(
                sharded_table,
                workers=BENCH_WORKERS,
                tag="py_process",
                executor_cls=ProcessPoolBatchExecutor,
                python_udf=True,
            )
        )
        if not serial_first:
            py_serial_windows.append(
                _replay(serial_table, workers=1, tag="py_serial", python_udf=True)
            )
    py_serial, py_serial_results = py_serial_windows[0]
    py_process, py_process_results = py_process_windows[0]
    process_speedup_windows = [
        proc["queries_per_second"] / serial["queries_per_second"]
        for (serial, _), (proc, _) in zip(py_serial_windows, py_process_windows)
    ]
    release_exports(sharded_table)
    parity = _abs_deltas(serial, parallel, parallel_results, serial_results)
    parity.update(
        _abs_deltas(
            py_serial, py_thread, py_thread_results, py_serial_results,
            prefix="thread_python_",
        )
    )
    parity.update(
        _abs_deltas(
            py_serial, py_process, py_process_results, py_serial_results,
            prefix="process_",
        )
    )
    # The two workloads must also agree with each other: the evaluation path
    # (vectorised labels vs python calls vs worker processes) may never
    # change which rows a plan touches.
    parity["workload_row_ids_mismatch"] = sum(
        0 if np.array_equal(a, b) else 1
        for a, b in zip(serial_results, py_serial_results)
    )
    # Window determinism: the repeated replays must agree on every work
    # counter — only wall-clock may differ between windows.
    wall_clock = ("seconds", "queries_per_second")
    for windows in (py_serial_windows, py_process_windows):
        stable = [
            {k: v for k, v in stats.items() if k not in wall_clock}
            for stats, _ in windows
        ]
        assert all(window == stable[0] for window in stable[1:]), (
            f"python-UDF replay work counters drifted across windows: {stable}"
        )
    return {
        "serial": serial,
        "parallel": parallel,
        "python_udf": {
            "serial": py_serial,
            "thread": py_thread,
            "process": py_process,
        },
        "parity": parity,
        "process_speedup_windows": process_speedup_windows,
    }


def test_scale_sharded_parallel(benchmark):
    data = run_once(benchmark, _scale_comparison)
    serial, parallel = data["serial"], data["parallel"]
    python_udf, parity = data["python_udf"], data["parity"]

    thread_speedup = parallel["queries_per_second"] / serial["queries_per_second"]
    py_thread_speedup = (
        python_udf["thread"]["queries_per_second"]
        / python_udf["serial"]["queries_per_second"]
    )
    speedup_windows = data["process_speedup_windows"]
    process_speedup = statistics.median(speedup_windows)
    print(
        f"\nScale point — {SCALE_ROWS} rows, {BENCH_SHARDS} shards, "
        f"{BENCH_WORKERS} workers, median of {WINDOWS} interleaved "
        "serial/process windows"
    )
    rows = (
        ("label serial", serial),
        ("label thread", parallel),
        ("python serial", python_udf["serial"]),
        ("python thread", python_udf["thread"]),
        ("python process", python_udf["process"]),
    )
    for label, row in rows:
        print(
            f"  {label:>14}: {row['queries_per_second']:>7} q/s, "
            f"{row['udf_evaluations']} UDF evaluations, "
            f"{row['solver_calls']} solver calls"
        )
    print(
        f"  thread speedup (label): {thread_speedup:.2f}x   "
        f"thread speedup (python): {py_thread_speedup:.2f}x   "
        "process speedup (python): "
        + ", ".join(f"{value:.2f}x" for value in speedup_windows)
        + f" -> median {process_speedup:.2f}x"
    )

    payload = {
        "rows": SCALE_ROWS,
        "shards": BENCH_SHARDS,
        "workers": BENCH_WORKERS,
        "trace_length": len(TRACE),
        "windows": WINDOWS,
        "serial": serial,
        "parallel": parallel,
        "python_udf": python_udf,
        # Committed as exact zeros; the scale gate profile fails on any
        # non-zero fresh value (an unbounded relative drift from 0).
        "parity": parity,
        "parallel_speedup": round(thread_speedup, 2),
        "thread_python_speedup": round(py_thread_speedup, 2),
        "process_speedup": round(process_speedup, 2),
        "process_speedup_windows": [
            round(value, 2) for value in speedup_windows
        ],
        "cpu_count": os.cpu_count(),
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {OUTPUT_PATH.name}")

    # Exact parity: sharding, threads and processes must not change the work.
    for key, value in parity.items():
        assert value == 0, f"parity breach: {key}={value}"
    assert serial["udf_row_calls"] == 0 and parallel["udf_row_calls"] == 0, (
        "label-column scale path fell back to per-row UDF calls"
    )

    # Throughput scaling, where the hardware can deliver it: the armed assert
    # rides on the process pool — the thread pool is *expected* to sit near
    # (or below) 1x on the python-UDF workload, which is the whole point.
    cores = os.cpu_count() or 1
    if cores >= BENCH_WORKERS and MIN_PARALLEL_SPEEDUP > 0:
        assert process_speedup >= MIN_PARALLEL_SPEEDUP, (
            f"process-pool python-UDF throughput only {process_speedup:.2f}x "
            f"serial (median of {WINDOWS} windows) at {SCALE_ROWS} rows with "
            f"{BENCH_WORKERS} workers on {cores} cores (required "
            f"{MIN_PARALLEL_SPEEDUP}x; set REPRO_BENCH_MIN_PARALLEL_SPEEDUP "
            "to tune)"
        )
