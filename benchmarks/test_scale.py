"""Scale point: sharded + parallel execution at 1M rows, pinned to serial.

Builds a ~1M-row synthetic table (8 groups, mixed selectivities chosen so the
solved plans do real evaluation work) and replays the same 3-query cold trace
twice:

* **serial** — monolithic :class:`~repro.db.Table`,
  :class:`~repro.core.ParallelBatchExecutor` in its documented
  ``max_workers=1`` serial fallback;
* **parallel** — 8-shard :class:`~repro.db.ShardedTable`,
  ``BENCH_WORKERS`` thread workers (index builds, sampling evaluation and
  plan execution all fan across shards).

Because the parallel executor's coin discipline is position-addressable, the
two replays are *bitwise identical*: same returned row ids, same UDF
evaluations, same solver calls, for every shard layout and worker count.
``BENCH_scale.json`` records both replays plus ``parity.*_abs_delta``
counters (committed as zero; ``compare_bench.py --profile scale`` gates them
at exactly ±0 in CI, alongside the serial work counters at ±15%).

Throughput scaling is asserted only where it can physically happen: on hosts
with >= ``BENCH_WORKERS`` cores the parallel replay must reach
``REPRO_BENCH_MIN_PARALLEL_SPEEDUP`` (default 2.0) times the serial q/s.
Wall-clock is never part of the JSON gate — it would flake with runner load.
(The serving/coldpath payloads additionally carry informational
``latency_p50_ms``/``latency_p99_ms`` keys; this profile runs the strategy
directly — no :class:`QueryService`, so no latency histograms to report.)
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.core import IntelSample, QueryConstraints
from repro.core.parallel import ParallelBatchExecutor
from repro.db import CostLedger, ShardedTable, Table, UserDefinedFunction

OUTPUT_PATH = Path(__file__).resolve().parent / "BENCH_scale.json"

#: Rows of the scale point (the ISSUE floor is 500k).
SCALE_ROWS = 1_000_000
BENCH_SHARDS = 8
BENCH_WORKERS = 4
#: (alpha, beta) per trace query; rho is fixed at 0.8.
TRACE = ((0.9, 0.85), (0.92, 0.8), (0.88, 0.9))
#: Minimum parallel-over-serial q/s on hosts with >= BENCH_WORKERS cores.
MIN_PARALLEL_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_PARALLEL_SPEEDUP", "2.0")
)

#: Group layout: sizes skewed, selectivities mixed (no group is pure), so
#: precision repair forces the plans to evaluate a large tuple fraction —
#: the UDF/execution work the parallel fan-out is supposed to absorb.
GROUP_FRACTIONS = (0.26, 0.20, 0.16, 0.12, 0.10, 0.08, 0.05, 0.03)
GROUP_SELECTIVITIES = (0.62, 0.35, 0.78, 0.22, 0.55, 0.88, 0.12, 0.45)


def _build_columns(rows: int, seed: int = 2015):
    """Array-native synthetic columns (exact per-group positive counts)."""
    rng = np.random.default_rng(seed)
    sizes = [int(round(fraction * rows)) for fraction in GROUP_FRACTIONS]
    sizes[0] += rows - sum(sizes)
    codes = np.repeat(np.arange(len(sizes)), sizes)
    labels = np.zeros(rows, dtype=bool)
    start = 0
    for size, selectivity in zip(sizes, GROUP_SELECTIVITIES):
        labels[start : start + int(round(size * selectivity))] = True
        start += size
    order = rng.permutation(rows)
    codes, labels = codes[order], labels[order]
    group_names = np.array([f"g{i}" for i in range(len(sizes))])
    return {
        "grade": group_names[codes].tolist(),
        "is_good": labels.tolist(),
        "amount": np.abs(rng.normal(12_000, 6_000, rows)).tolist(),
    }


def _replay(table, workers: int, tag: str):
    """Run the cold trace (fresh UDF per query, index built lazily in-query)."""
    elapsed = 0.0
    udf_evaluations = 0
    solver_calls = 0
    row_calls = 0
    results = []
    for position, (alpha, beta) in enumerate(TRACE):
        udf = UserDefinedFunction.from_label_column(
            f"scale_{tag}_{position}", "is_good"
        )
        ledger = CostLedger()
        strategy = IntelSample(
            random_state=9_000 + position,
            executor_factory=lambda rng: ParallelBatchExecutor(
                rng, max_workers=workers
            ),
        )
        started = time.perf_counter()
        result = strategy.answer(
            table,
            udf,
            QueryConstraints(alpha=alpha, beta=beta, rho=0.8),
            ledger,
            correlated_column="grade",
        )
        elapsed += time.perf_counter() - started
        udf_evaluations += ledger.evaluated_count
        solver_calls += 1
        row_calls += udf.row_calls
        results.append(np.asarray(result.row_ids, dtype=np.intp))
    return {
        "seconds": round(elapsed, 4),
        "queries_per_second": round(len(TRACE) / elapsed, 2),
        "udf_evaluations": int(udf_evaluations),
        "solver_calls": int(solver_calls),
        "udf_row_calls": int(row_calls),
    }, results


def _scale_comparison():
    columns = _build_columns(SCALE_ROWS)
    serial_table = Table.from_columns(
        "scale_bench", columns, hidden_columns=["is_good"]
    )
    sharded_table = ShardedTable.from_columns(
        "scale_bench",
        columns,
        hidden_columns=["is_good"],
        num_shards=BENCH_SHARDS,
        max_workers=BENCH_WORKERS,
    )
    serial, serial_results = _replay(serial_table, workers=1, tag="serial")
    parallel, parallel_results = _replay(
        sharded_table, workers=BENCH_WORKERS, tag="parallel"
    )
    mismatches = sum(
        0 if np.array_equal(a, b) else 1
        for a, b in zip(serial_results, parallel_results)
    )
    return serial, parallel, mismatches


def test_scale_sharded_parallel(benchmark):
    serial, parallel, mismatches = run_once(benchmark, _scale_comparison)

    speedup = parallel["queries_per_second"] / serial["queries_per_second"]
    print(
        f"\nScale point — {SCALE_ROWS} rows, {BENCH_SHARDS} shards, "
        f"{BENCH_WORKERS} workers"
    )
    for label, row in (("serial", serial), ("parallel", parallel)):
        print(
            f"  {label}: {row['queries_per_second']:>7} q/s, "
            f"{row['udf_evaluations']} UDF evaluations, "
            f"{row['solver_calls']} solver calls"
        )
    print(f"  parallel speedup: {speedup:.2f}x  (result mismatches: {mismatches})")

    payload = {
        "rows": SCALE_ROWS,
        "shards": BENCH_SHARDS,
        "workers": BENCH_WORKERS,
        "trace_length": len(TRACE),
        "serial": serial,
        "parallel": parallel,
        "parity": {
            # Committed as exact zeros; the scale gate profile fails on any
            # non-zero fresh value (an unbounded relative drift from 0).
            "udf_evaluations_abs_delta": abs(
                parallel["udf_evaluations"] - serial["udf_evaluations"]
            ),
            "solver_calls_abs_delta": abs(
                parallel["solver_calls"] - serial["solver_calls"]
            ),
            "row_ids_mismatch": int(mismatches),
        },
        "parallel_speedup": round(speedup, 2),
        "cpu_count": os.cpu_count(),
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {OUTPUT_PATH.name}")

    # Exact parity: sharding + parallelism must not change the work done.
    assert payload["parity"]["udf_evaluations_abs_delta"] == 0, (
        "sharded run performed different UDF work than the unsharded run"
    )
    assert payload["parity"]["solver_calls_abs_delta"] == 0
    assert mismatches == 0, "sharded results differ from unsharded results"
    assert serial["udf_row_calls"] == 0 and parallel["udf_row_calls"] == 0, (
        "scale path fell back to per-row UDF calls"
    )

    # Throughput scaling, where the hardware can deliver it.  Wall-clock is
    # asserted here (not in the JSON gate) and only on hosts with enough
    # cores for the worker pool to actually overlap; the committed JSON still
    # records the measured speedup for inspection.
    cores = os.cpu_count() or 1
    if cores >= BENCH_WORKERS and MIN_PARALLEL_SPEEDUP > 0:
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"parallel cold throughput only {speedup:.2f}x serial at "
            f"{SCALE_ROWS} rows with {BENCH_WORKERS} workers on {cores} cores "
            f"(required {MIN_PARALLEL_SPEEDUP}x; set "
            "REPRO_BENCH_MIN_PARALLEL_SPEEDUP to tune)"
        )
