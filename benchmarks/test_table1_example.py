"""Table 1: the paper's running example relation."""

from conftest import run_once

from repro.experiments.report import format_table
from repro.experiments.tables import table1_example


def test_table1_example(benchmark):
    rows = run_once(benchmark, table1_example)
    print("\nTable 1 — per-group summary of the toy relation")
    print(
        format_table(
            ["A", "tuples", "correct", "incorrect", "selectivity"],
            [[r["A"], r["tuples"], r["correct"], r["incorrect"], round(r["selectivity"], 3)] for r in rows],
        )
    )
    by_value = {row["A"]: row for row in rows}
    assert by_value[1]["correct"] == 4
    assert by_value[2]["correct"] == 1
    assert by_value[3]["correct"] == 1
    assert sum(row["tuples"] for row in rows) == 12
