"""Per-request deadlines with cooperative cancellation.

A :class:`Deadline` is a wall-clock bound carried by one request.  The
serving layer activates it with :func:`deadline_scope` — a
:class:`~contextvars.ContextVar`, so it propagates automatically into the
thread-pool span workers (they run under ``contextvars.copy_context()``)
and into every library layer below without threading a parameter through
the call graph.  Compute loops then call :func:`check_deadline` at their
natural charge boundaries — per group in the serial executors, per span in
the parallel ones, before the sampler's bulk charge, between pipeline
steps and at solver entry — and an expired deadline raises the typed
:class:`DeadlineExceeded`.

Cancellation is **cooperative**: a check sits *before* each ledger charge,
so an expired request never pays for further UDF work (the accounting
invariant the resilience tests pin), but a UDF call already in flight runs
to completion — the one thing python cannot interrupt.  The process-pool
executor covers that gap differently: the parent bounds its harvest waits
by the remaining time, so even a worker hung inside a UDF surfaces as
``DeadlineExceeded`` within the deadline plus scheduling grace.

Checks are cheap when no deadline is active (one ``ContextVar`` read) and
one monotonic-clock read when one is, so they are safe at per-group
granularity.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.db.errors import DatabaseError


class DeadlineExceeded(DatabaseError):
    """A request ran past its deadline and was cooperatively cancelled.

    Typed (a :class:`~repro.db.errors.DatabaseError`) so callers can
    distinguish "too slow" from a wrong answer; the service counts every
    raise on its ``deadline_exceeded`` metric, and coalesced followers of a
    timed-out leader receive this same error rather than re-running.
    """

    def __init__(self, timeout_s: float, where: Optional[str] = None):
        self.timeout_s = timeout_s
        self.where = where
        at = f" at {where}" if where else ""
        super().__init__(
            f"deadline of {timeout_s:g}s exceeded{at}; the request was "
            "cancelled cooperatively (no further UDF work was charged)"
        )


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry on the monotonic clock.

    ``clock`` is injectable so tests can drive expiry deterministically;
    it never participates in equality (two deadlines with the same expiry
    are the same deadline).
    """

    expires_at: float
    timeout_s: float
    clock: Callable[[], float] = field(
        default=time.monotonic, compare=False, repr=False
    )

    @classmethod
    def after(
        cls, timeout_s: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """The deadline ``timeout_s`` seconds from now."""
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        return cls(expires_at=clock() + timeout_s, timeout_s=timeout_s, clock=clock)

    def remaining(self) -> float:
        """Seconds until expiry (negative once expired)."""
        return self.expires_at - self.clock()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, where: Optional[str] = None) -> None:
        """Raise :class:`DeadlineExceeded` if this deadline has passed."""
        if self.expired():
            raise DeadlineExceeded(self.timeout_s, where)


#: The active request's deadline (``None`` almost everywhere: deadlines are
#: opt-in per request).
_DEADLINE: ContextVar[Optional[Deadline]] = ContextVar("repro_deadline", default=None)


def current_deadline() -> Optional[Deadline]:
    """The deadline of the current request, or ``None``."""
    return _DEADLINE.get()


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Activate ``deadline`` for the dynamic extent of the ``with`` body.

    ``None`` is accepted and is a no-op, so callers can write one
    unconditional ``with deadline_scope(maybe_deadline):``.
    """
    if deadline is None:
        yield None
        return
    token = _DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _DEADLINE.reset(token)


def check_deadline(where: Optional[str] = None) -> None:
    """Cooperative cancellation point: raise if the active deadline passed."""
    deadline = _DEADLINE.get()
    if deadline is not None:
        deadline.check(where)
