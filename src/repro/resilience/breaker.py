"""A circuit breaker over the process-pool execution path.

Transient pool faults — a worker killed mid-span, a shared-memory attach
that fails, a worker hung past the request deadline — are retried once at
span granularity by :class:`~repro.core.procpool.ProcessPoolBatchExecutor`.
When faults keep coming the right move is to stop paying the pool tax
altogether: the breaker **opens** after ``failure_threshold`` consecutive
failures, and while open the service builds thread/serial executors instead
(bitwise-identical answers, just not multi-core), counting each degraded
query.  After ``recovery_time_s`` the breaker **half-opens** and lets up to
``probe_quota`` concurrent probe queries try the pool again: one success
closes it, one failure re-opens it.

The clock is injectable so tests drive the open → half-open transition
deterministically, and every state transition is observable — in
:meth:`snapshot` (surfaced through ``QueryService.stats().resilience``) and
on the ``repro_breaker_transitions_total{to=...}`` counter when the
:mod:`repro.obs` registry is enabled.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.obs import metrics as _metrics

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probing.

    Thread safe; one instance guards one resource (the service's process
    pool).  ``allow()`` is the admission question ("may this query use the
    pool?"); the executor reports back through ``record_success`` /
    ``record_failure``, or ``cancel_probe`` when it never actually exercised
    the pool (fell back before any remote work) so half-open probe slots are
    not leaked.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_time_s: float = 30.0,
        probe_quota: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be positive, got {failure_threshold}"
            )
        if recovery_time_s <= 0:
            raise ValueError(
                f"recovery_time_s must be positive, got {recovery_time_s}"
            )
        if probe_quota < 1:
            raise ValueError(f"probe_quota must be positive, got {probe_quota}")
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self.probe_quota = probe_quota
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._failures_total = 0
        self._successes_total = 0
        self._retries_total = 0
        self._opened_count = 0
        self._last_failure_reason: Optional[str] = None

    # -- state machine ---------------------------------------------------------
    def _transition(self, to: str) -> None:
        """Move to ``to`` (caller holds the lock) and count the transition."""
        if self._state == to:
            return
        self._state = to
        registry = _metrics.get_registry()
        if registry.enabled:
            registry.counter("repro_breaker_transitions_total", to=to).inc()
        if to == OPEN:
            self._opened_count += 1
            self._opened_at = self._clock()
        elif to == CLOSED:
            self._opened_at = None
            self._consecutive_failures = 0
        if to != HALF_OPEN:
            self._probes_in_flight = 0

    def allow(self) -> bool:
        """May a query use the guarded resource right now?

        Closed: always.  Open: no, until ``recovery_time_s`` has passed, at
        which point the breaker half-opens.  Half-open: yes for up to
        ``probe_quota`` concurrent probes, no for everyone else.
        """
        with self._lock:
            if self._state == OPEN:
                assert self._opened_at is not None
                if self._clock() - self._opened_at < self.recovery_time_s:
                    return False
                self._transition(HALF_OPEN)
            if self._state == HALF_OPEN:
                if self._probes_in_flight >= self.probe_quota:
                    return False
                self._probes_in_flight += 1
                return True
            return True

    def record_success(self) -> None:
        """The guarded resource worked: close from half-open, reset the streak."""
        with self._lock:
            self._successes_total += 1
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._transition(CLOSED)

    def record_failure(self, reason: str = "fault") -> None:
        """A transient fault: advance the streak; trip or re-open as needed."""
        with self._lock:
            self._failures_total += 1
            self._last_failure_reason = reason
            if self._state == HALF_OPEN:
                self._transition(OPEN)
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(OPEN)

    def cancel_probe(self) -> None:
        """Release a half-open probe slot that never exercised the resource."""
        with self._lock:
            if self._state == HALF_OPEN and self._probes_in_flight > 0:
                self._probes_in_flight -= 1

    def record_retry(self, count: int = 1) -> None:
        """Count spans that were retried against a respawned pool."""
        with self._lock:
            self._retries_total += count

    # -- observation -----------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when the wait elapsed."""
        with self._lock:
            if (
                self._state == OPEN
                and self._opened_at is not None
                and self._clock() - self._opened_at >= self.recovery_time_s
            ):
                self._transition(HALF_OPEN)
            return self._state

    @property
    def retries_total(self) -> int:
        with self._lock:
            return self._retries_total

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view for ``stats()`` / dashboards."""
        state = self.state  # advances open -> half_open when due
        with self._lock:
            return {
                "state": state,
                "consecutive_failures": self._consecutive_failures,
                "failures_total": self._failures_total,
                "successes_total": self._successes_total,
                "retried_spans": self._retries_total,
                "opened_count": self._opened_count,
                "probes_in_flight": self._probes_in_flight,
                "failure_threshold": self.failure_threshold,
                "recovery_time_s": self.recovery_time_s,
                "last_failure_reason": self._last_failure_reason,
            }
