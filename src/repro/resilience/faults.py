"""Deterministic fault injection for the resilience test suite.

A :class:`FaultPlan` makes the failure paths — worker crashes, hangs,
garbage results, slow UDFs, shared-memory export/attach errors — happen *on
purpose, at chosen points*, so ``tests/resilience`` can assert that every
degraded path still returns the bitwise-serial answer or a typed error.

Determinism follows the PR-4 coin discipline: each potential fault has a
**site** (a string naming the code location) and an **address** (a tuple of
integers naming the occurrence — span index and attempt for worker faults,
a per-site hit counter for UDF/shm sites), and whether it fires is either
an explicit address set or a pure function of
``(plan.seed, site, address)`` via the same counter-based SplitMix64
stream used for sampling coins.  The same plan against the same workload
therefore injects the same faults regardless of pool scheduling, worker
count or thread interleaving.

Activation is process-global (:func:`fault_scope`); the process-pool
executor additionally ships the active plan inside worker task payloads and
re-activates it there (spawned workers inherit nothing), so worker-side
sites — ``worker``, ``shm_attach`` — fire in the right process.  With no
active plan every hook is a single ``None`` check.

Sites and their addresses
-------------------------

==================  =====================  ====================================
Site                Address                Fires in
==================  =====================  ====================================
``worker``          ``(span, attempt)``    worker process, at span-task entry
``shm_attach``      ``(hit,)`` per worker  worker process, before segment attach
``shm_export``      ``(hit,)``             parent, before segment creation
``udf_eval``        ``(hit,)``             whichever process evaluates the UDF
``manifest_write``  ``(hit,)``             parent, mid manifest atomic write
``segment_write``   ``(hit,)``             parent, mid segment atomic write
``journal_append``  ``(hit,)``             parent, mid journal record append
``segment_read``    ``(hit,)``             parent, before segment validation
``segment_map``     ``(hit,)``             before a lazy segment map — parent
                                           first-touch *and* worker direct
                                           attach (one retry, then typed
                                           ``SegmentMapError``)
``segment_evict``   ``(hit,)``             parent, inside LRU eviction (the
                                           logical drop still completes —
                                           zero leaked mappings)
==================  =====================  ====================================

``kind`` decides the effect: ``crash`` (``os._exit`` — the pool breaks),
``hang``/``sleep`` (block for ``sleep_s``), ``error`` (raise
:class:`InjectedFault`), ``garbage`` (the call site corrupts its result —
meaningful at the ``worker`` site, and at ``segment_read``, where it models
a payload bit flip that the per-block checksum pass must catch).  The three
``*_write``/``*_append`` storage sites fire *mid-write*, after a partial
prefix is on disk, so ``error`` and ``crash`` rules there model torn writes.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Tuple

from repro.stats.random import counter_uniforms, stable_hash_seed, stream_key

#: Fault kinds.
CRASH = "crash"
HANG = "hang"
GARBAGE = "garbage"
ERROR = "error"
SLEEP = "sleep"

_KINDS = (CRASH, HANG, GARBAGE, ERROR, SLEEP)


class InjectedFault(Exception):
    """The error an ``error``-kind fault raises.

    Deliberately *not* a :class:`~repro.db.errors.DatabaseError`: it stands
    in for infrastructure failures (a segment that cannot be attached, a
    worker dying mid-task), which the executors must classify as transient
    and survive — exactly as they would an :class:`OSError`.
    """

    def __init__(self, site: str, address: Tuple[int, ...]):
        self.site = site
        self.address = address
        super().__init__(f"injected fault at site {site!r}, address {address}")

    def __reduce__(self):
        # Default exception pickling ships ``args`` (the message) and would
        # fail to reconstruct in the parent's pool result thread — turning a
        # classifiable transient fault into a broken pool.
        return (InjectedFault, (self.site, self.address))


@dataclass(frozen=True)
class FaultRule:
    """When (and how) one site misbehaves.

    Exactly one of ``addresses`` / ``probability`` selects occurrences:
    an explicit address set is fully deterministic ("span 1, first attempt
    only"); a probability draws the seeded per-address coin.
    """

    kind: str
    addresses: Optional[FrozenSet[Tuple[int, ...]]] = None
    probability: Optional[float] = None
    sleep_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if (self.addresses is None) == (self.probability is None):
            raise ValueError(
                "exactly one of addresses/probability must be given "
                f"(got addresses={self.addresses!r}, "
                f"probability={self.probability!r})"
            )
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.sleep_s < 0:
            raise ValueError(f"sleep_s must be non-negative, got {self.sleep_s}")
        if self.addresses is not None:
            object.__setattr__(
                self,
                "addresses",
                frozenset(tuple(int(part) for part in addr) for addr in self.addresses),
            )


@dataclass
class FaultPlan:
    """A seeded, counter-addressed schedule of injected faults.

    Picklable (the process executor ships it into worker task payloads);
    the per-site hit counters and the fired-fault log are process-local —
    the parent's log records parent-side fires only, worker-side effects
    are observed through their consequences (a broken pool, a raised
    :class:`InjectedFault`).
    """

    seed: int
    rules: Mapping[str, FaultRule]
    _counts: Dict[str, int] = field(default_factory=dict, repr=False)
    _fired: List[Tuple[str, Tuple[int, ...], str]] = field(
        default_factory=list, repr=False
    )
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __getstate__(self):
        return {"seed": self.seed, "rules": dict(self.rules)}

    def __setstate__(self, state):
        self.seed = state["seed"]
        self.rules = state["rules"]
        self._counts = {}
        self._fired = []
        self._lock = threading.Lock()

    def next_address(self, site: str) -> int:
        """This process's next hit index for a counter-addressed site."""
        with self._lock:
            position = self._counts.get(site, 0)
            self._counts[site] = position + 1
            return position

    def should_fire(self, site: str, *address: int) -> Optional[FaultRule]:
        """The rule firing at ``(site, address)``, or ``None``.

        Coin-selected rules use the position-addressable stream
        ``stream_key(seed, site, *address)`` — the same discipline that
        makes sampling coins independent of execution order.
        """
        rule = self.rules.get(site)
        if rule is None:
            return None
        addr = tuple(int(part) for part in address)
        if rule.addresses is not None:
            fire = addr in rule.addresses
        else:
            coin = counter_uniforms(
                stream_key(self.seed, stable_hash_seed(site), *addr), 0, 1
            )[0]
            fire = bool(coin < rule.probability)
        if fire:
            with self._lock:
                self._fired.append((site, addr, rule.kind))
            return rule
        return None

    def fired(self) -> List[Tuple[str, Tuple[int, ...], str]]:
        """Faults fired *in this process* (site, address, kind), in order."""
        with self._lock:
            return list(self._fired)


#: The process-globally active plan.  A module global, not a ContextVar:
#: faults must be visible to every thread (the async front-end pool, the
#: span workers) without context plumbing, and tests activate exactly one
#: plan at a time.
_ACTIVE: Optional[FaultPlan] = None
_ACTIVE_LOCK = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    """The currently active plan (``None`` outside :func:`fault_scope`)."""
    return _ACTIVE


@contextmanager
def fault_scope(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Activate ``plan`` process-wide for the ``with`` body (re-entrant)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = plan
    try:
        yield plan
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE = previous


def maybe_fire(
    plan: Optional[FaultPlan], site: str, *address: int
) -> Optional[str]:
    """Fire the configured fault for ``(site, address)``, if any.

    With no explicit address the site's per-process hit counter supplies
    one — but only when the plan actually has a rule for the site, so
    unrelated sites never perturb each other's counters.

    Side effects by kind: ``crash`` terminates the process (``os._exit``,
    bypassing ``finally`` blocks — exactly what an OOM kill looks like to
    the parent); ``hang``/``sleep`` block for ``sleep_s``; ``error`` raises
    :class:`InjectedFault`.  Returns the fired kind (``garbage`` is acted
    on by the caller), or ``None``.
    """
    if plan is None or site not in plan.rules:
        return None
    addr = address if address else (plan.next_address(site),)
    rule = plan.should_fire(site, *addr)
    if rule is None:
        return None
    if rule.kind == CRASH:
        os._exit(1)
    if rule.kind in (HANG, SLEEP):
        time.sleep(rule.sleep_s)
        return rule.kind
    if rule.kind == ERROR:
        raise InjectedFault(site, tuple(addr))
    return rule.kind
