"""Resilience: deadlines, circuit-broken degradation and fault injection.

Three pieces, one invariant.  :mod:`~repro.resilience.deadline` bounds
every request in time (cooperative cancellation, typed
:class:`DeadlineExceeded`); :mod:`~repro.resilience.breaker` degrades the
service off a faulting process pool and probes its way back;
:mod:`~repro.resilience.faults` makes failures happen deterministically so
the ``tests/resilience`` differential suite can prove the invariant: under
any injected fault, a query returns the **bitwise-serial answer or a typed
error** — never a silently wrong or hung one, never double-charged.
"""

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.deadline import (
    Deadline,
    DeadlineExceeded,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.resilience.faults import (
    CRASH,
    ERROR,
    GARBAGE,
    HANG,
    SLEEP,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    fault_scope,
    maybe_fire,
)

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "fault_scope",
    "maybe_fire",
    "CRASH",
    "HANG",
    "GARBAGE",
    "ERROR",
    "SLEEP",
]
