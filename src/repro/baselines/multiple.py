"""The "Multiple" (multiple imputations) baseline (paper Section 6.2).

Like the Learning baseline, but instead of thresholding the classifier's
predictions it draws several imputed completions of the unlabelled data from
the estimated class probabilities and returns the tuples that are positive in
a majority of them.  The training size is again chosen with the unfair
constraints-known-in-advance advantage the paper grants it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.constraints import QueryConstraints
from repro.db.engine import QueryResult
from repro.db.query import SelectQuery
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.ml.features import FeatureEncoder
from repro.ml.imputation import MultipleImputer
from repro.ml.semi_supervised import SelfTrainingClassifier
from repro.stats.metrics import result_quality
from repro.stats.random import RandomState, SeedLike, as_random_state

#: Training fractions tried, in order, until the constraints are satisfied.
DEFAULT_TRAINING_FRACTIONS = (0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.55, 0.75, 0.90)


class MultipleImputationBaseline:
    """Multiple-imputations baseline built on the self-training classifier."""

    def __init__(
        self,
        num_imputations: int = 5,
        training_fractions: Sequence[float] = DEFAULT_TRAINING_FRACTIONS,
        random_state: SeedLike = None,
    ):
        if not training_fractions:
            raise ValueError("training_fractions must not be empty")
        self.num_imputations = num_imputations
        self.training_fractions = tuple(sorted(training_fractions))
        self.random_state: RandomState = as_random_state(random_state)

    # -- engine strategy protocol ---------------------------------------------------
    def run(self, table: Table, query: SelectQuery, ledger: CostLedger) -> QueryResult:
        """Engine strategy entry point."""
        constraints = QueryConstraints(alpha=query.alpha, beta=query.beta, rho=query.rho)
        udf = query.udf_predicates[0].udf
        return self.answer(table, udf, constraints, ledger)

    # -- direct API -------------------------------------------------------------------
    def answer(
        self,
        table: Table,
        udf: UserDefinedFunction,
        constraints: QueryConstraints,
        ledger: Optional[CostLedger] = None,
    ) -> QueryResult:
        """Grow the training set until the constraints are met, then return."""
        ledger = ledger if ledger is not None else CostLedger()
        encoder = FeatureEncoder(exclude_columns=("record_id",))
        features = encoder.fit_transform(table)
        n = table.num_rows

        # Constraint check only; charges no cost (the paper's unfair advantage).
        truth = {row_id for row_id in table.row_ids if udf.evaluate_row(table, row_id)}

        order = [int(i) for i in self.random_state.permutation(n)]
        labeled_ids: List[int] = []
        labels: List[int] = []
        returned: List[int] = []
        labeled_so_far = 0

        for fraction in self.training_fractions:
            target = min(n, max(1, int(round(fraction * n))))
            while labeled_so_far < target:
                row_id = order[labeled_so_far]
                ledger.charge_retrieval()
                ledger.charge_evaluation()
                outcome = udf.evaluate_row(table, row_id)
                labeled_ids.append(row_id)
                labels.append(1 if outcome else 0)
                labeled_so_far += 1

            unlabeled_ids = order[labeled_so_far:]
            returned = [
                row_id for row_id, label in zip(labeled_ids, labels) if label == 1
            ]
            if unlabeled_ids:
                imputer = MultipleImputer(
                    num_imputations=self.num_imputations,
                    classifier=SelfTrainingClassifier(
                        random_state=self.random_state.child()
                    ),
                    random_state=self.random_state.child(),
                )
                summary = imputer.fit_impute(
                    features[list(labeled_ids)], list(labels), features[list(unlabeled_ids)]
                )
                for position in summary.positive_indices():
                    returned.append(int(unlabeled_ids[position]))
            quality = result_quality(returned, truth)
            if quality.satisfies(constraints.alpha, constraints.beta):
                break

        labeled_set = set(labeled_ids)
        predicted_only = [row_id for row_id in returned if row_id not in labeled_set]
        ledger.charge_retrieval(len(predicted_only))

        return QueryResult(
            row_ids=returned,
            ledger=ledger,
            metadata={
                "strategy": "multiple_imputation",
                "training_size": labeled_so_far,
                "evaluations": ledger.evaluated_count,
                "retrievals": ledger.retrieved_count,
            },
        )
