"""The semi-supervised "Learning" baseline (paper Section 6.2).

Evaluate a labelled training set, train a semi-supervised classifier, predict
the predicate for every remaining tuple, and return evaluated-true plus
predicted-true tuples.  The training-set size is grown until the precision and
recall constraints are met — which, as the paper notes, gives the baseline an
*unfair advantage*: a real system would not know when to stop because checking
the constraints requires the ground truth.  The reproduction keeps that
advantage (the constraint check does not charge any cost) so that the
comparison mirrors the paper's.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.constraints import QueryConstraints
from repro.db.engine import QueryResult
from repro.db.query import SelectQuery
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.ml.features import FeatureEncoder
from repro.ml.semi_supervised import SelfTrainingClassifier
from repro.stats.metrics import result_quality
from repro.stats.random import RandomState, SeedLike, as_random_state

#: Training fractions tried, in order, until the constraints are satisfied.
DEFAULT_TRAINING_FRACTIONS = (0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.55, 0.75, 0.90)


class LearningBaseline:
    """Semi-supervised self-training baseline."""

    def __init__(
        self,
        training_fractions: Sequence[float] = DEFAULT_TRAINING_FRACTIONS,
        random_state: SeedLike = None,
    ):
        if not training_fractions:
            raise ValueError("training_fractions must not be empty")
        self.training_fractions = tuple(sorted(training_fractions))
        self.random_state: RandomState = as_random_state(random_state)

    # -- engine strategy protocol ---------------------------------------------------
    def run(self, table: Table, query: SelectQuery, ledger: CostLedger) -> QueryResult:
        """Engine strategy entry point."""
        constraints = QueryConstraints(alpha=query.alpha, beta=query.beta, rho=query.rho)
        udf = query.udf_predicates[0].udf
        return self.answer(table, udf, constraints, ledger)

    # -- direct API -------------------------------------------------------------------
    def answer(
        self,
        table: Table,
        udf: UserDefinedFunction,
        constraints: QueryConstraints,
        ledger: Optional[CostLedger] = None,
    ) -> QueryResult:
        """Grow the training set until the constraints are met, then return."""
        ledger = ledger if ledger is not None else CostLedger()
        encoder = FeatureEncoder(exclude_columns=("record_id",))
        features = encoder.fit_transform(table)
        n = table.num_rows

        # Ground truth used ONLY for the stop-when-satisfied check (the unfair
        # advantage the paper grants this baseline); it charges no cost.
        truth = {row_id for row_id in table.row_ids if udf.evaluate_row(table, row_id)}

        order = [int(i) for i in self.random_state.permutation(n)]
        labeled_ids: List[int] = []
        labels: List[int] = []
        returned: List[int] = []
        labeled_so_far = 0

        for fraction in self.training_fractions:
            target = min(n, max(1, int(round(fraction * n))))
            while labeled_so_far < target:
                row_id = order[labeled_so_far]
                ledger.charge_retrieval()
                ledger.charge_evaluation()
                outcome = udf.evaluate_row(table, row_id)
                labeled_ids.append(row_id)
                labels.append(1 if outcome else 0)
                labeled_so_far += 1

            unlabeled_ids = order[labeled_so_far:]
            returned = self._predict_and_collect(
                features, labeled_ids, labels, unlabeled_ids
            )
            quality = result_quality(returned, truth)
            if quality.satisfies(constraints.alpha, constraints.beta):
                break

        # Charge retrieval only for the final answer's unverified tuples (the
        # training tuples were already charged as they were evaluated).
        labeled_set = set(labeled_ids)
        predicted_only = [row_id for row_id in returned if row_id not in labeled_set]
        ledger.charge_retrieval(len(predicted_only))

        return QueryResult(
            row_ids=returned,
            ledger=ledger,
            metadata={
                "strategy": "learning",
                "training_size": labeled_so_far,
                "evaluations": ledger.evaluated_count,
                "retrievals": ledger.retrieved_count,
            },
        )

    def _predict_and_collect(
        self,
        features: np.ndarray,
        labeled_ids: Sequence[int],
        labels: Sequence[int],
        unlabeled_ids: Sequence[int],
    ) -> List[int]:
        returned = [row_id for row_id, label in zip(labeled_ids, labels) if label == 1]
        if not unlabeled_ids:
            return returned
        classifier = SelfTrainingClassifier(random_state=self.random_state.child())
        classifier.fit(
            features[list(labeled_ids)], list(labels), features[list(unlabeled_ids)]
        )
        predictions = classifier.predict(features[list(unlabeled_ids)])
        for row_id, prediction in zip(unlabeled_ids, predictions):
            if prediction == 1:
                returned.append(int(row_id))
        return returned
