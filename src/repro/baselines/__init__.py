"""Baseline query-evaluation algorithms from the paper's Experiment 1.

* :class:`~repro.baselines.naive.NaiveBaseline` — retrieve a random ``beta``
  fraction of the tuples and evaluate all of them.
* :class:`~repro.baselines.learning.LearningBaseline` — evaluate a labelled
  training set, infer the rest with semi-supervised learning, and return
  evaluated-true plus predicted-true tuples ("Learning").
* :class:`~repro.baselines.multiple.MultipleImputationBaseline` — the same but
  with multiple imputations drawn from the estimated class probabilities
  ("Multiple").
* The "Optimal" baseline lives in :class:`repro.core.pipeline.OptimalOracle`
  because it shares the LP machinery with Intel-Sample.
"""

from repro.baselines.learning import LearningBaseline
from repro.baselines.multiple import MultipleImputationBaseline
from repro.baselines.naive import NaiveBaseline

__all__ = [
    "NaiveBaseline",
    "LearningBaseline",
    "MultipleImputationBaseline",
]
