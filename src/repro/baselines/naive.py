"""The Naive baseline (paper Section 6.2).

Randomly retrieve a ``beta`` fraction of the tuples (where ``beta`` is the
recall constraint) and evaluate every retrieved tuple.  Every returned tuple
is verified, so precision is perfect; recall is ``beta`` in expectation (not
with any probability guarantee, as the paper points out).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.constraints import QueryConstraints
from repro.db.engine import QueryResult
from repro.db.query import SelectQuery
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.stats.random import RandomState, SeedLike, as_random_state


class NaiveBaseline:
    """Evaluate a uniformly random ``beta`` fraction of the table."""

    def __init__(self, random_state: SeedLike = None):
        self.random_state: RandomState = as_random_state(random_state)

    # -- engine strategy protocol ---------------------------------------------------
    def run(self, table: Table, query: SelectQuery, ledger: CostLedger) -> QueryResult:
        """Engine strategy entry point."""
        constraints = QueryConstraints(alpha=query.alpha, beta=query.beta, rho=query.rho)
        udf = query.udf_predicates[0].udf
        return self.answer(table, udf, constraints, ledger)

    # -- direct API -------------------------------------------------------------------
    def answer(
        self,
        table: Table,
        udf: UserDefinedFunction,
        constraints: QueryConstraints,
        ledger: Optional[CostLedger] = None,
    ) -> QueryResult:
        """Evaluate ``ceil(beta * n)`` random tuples and return the positives."""
        ledger = ledger if ledger is not None else CostLedger()
        n = table.num_rows
        count = min(n, int(math.ceil(constraints.beta * n)))
        chosen = self.random_state.choice(n, size=count, replace=False) if count else []
        returned = []
        for row_id in (int(r) for r in chosen):
            ledger.charge_retrieval()
            ledger.charge_evaluation()
            if udf.evaluate_row(table, row_id):
                returned.append(row_id)
        return QueryResult(
            row_ids=returned,
            ledger=ledger,
            metadata={
                "strategy": "naive",
                "evaluations": ledger.evaluated_count,
                "retrievals": ledger.retrieved_count,
            },
        )
