"""Experiment 3: sensitivity to the query parameters (paper Section 6.4).

* :func:`figure2c` — expected evaluations versus the precision constraint
  ``alpha`` (recall fixed at 0.8) for ``num = {2.5, 3.5, 4.5} * alpha``.
* :func:`figure3c` — expected retrievals versus the recall constraint ``beta``
  (precision fixed at 0.8) for the same ``num`` multipliers.

Both curves should be convex and increasing, the paper's explanation of why a
small accuracy concession buys a large cost saving.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.harness import ExperimentConfig, run_strategy
from repro.sampling.schemes import TwoThirdPowerScheme

#: Constraint sweep used on the x axis (the paper sweeps 0.2 ... 0.9).
DEFAULT_CONSTRAINT_SWEEP = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)

#: ``num / alpha`` multipliers compared in the paper's Figures 2(c) and 3(c).
DEFAULT_NUM_MULTIPLIERS = (2.5, 3.5, 4.5)


def figure2c(
    config: ExperimentConfig,
    dataset_name: str = "lending_club",
    alphas: Sequence[float] = DEFAULT_CONSTRAINT_SWEEP,
    num_multipliers: Sequence[float] = DEFAULT_NUM_MULTIPLIERS,
    beta: float = 0.8,
    iterations: Optional[int] = None,
) -> Dict[float, Dict[float, float]]:
    """Evaluations versus ``alpha``; returns ``{multiplier: {alpha: evals}}``."""
    dataset = config.load(dataset_name)
    results: Dict[float, Dict[float, float]] = {}
    for multiplier in num_multipliers:
        per_alpha: Dict[float, float] = {}
        for alpha in alphas:
            constraints = config.constraints.with_alpha(alpha).with_beta(beta)
            stats = run_strategy(
                "intel_sample",
                dataset,
                config,
                iterations=iterations,
                sampling_scheme=TwoThirdPowerScheme(num=multiplier * alpha),
                constraints=constraints,
            )
            per_alpha[float(alpha)] = stats.mean_evaluations
        results[float(multiplier)] = per_alpha
    return results


def figure3c(
    config: ExperimentConfig,
    dataset_name: str = "lending_club",
    betas: Sequence[float] = DEFAULT_CONSTRAINT_SWEEP,
    num_multipliers: Sequence[float] = DEFAULT_NUM_MULTIPLIERS,
    alpha: float = 0.8,
    iterations: Optional[int] = None,
) -> Dict[float, Dict[float, float]]:
    """Retrievals versus ``beta``; returns ``{multiplier: {beta: retrievals}}``."""
    dataset = config.load(dataset_name)
    results: Dict[float, Dict[float, float]] = {}
    for multiplier in num_multipliers:
        per_beta: Dict[float, float] = {}
        for beta in betas:
            constraints = config.constraints.with_alpha(alpha).with_beta(beta)
            stats = run_strategy(
                "intel_sample",
                dataset,
                config,
                iterations=iterations,
                sampling_scheme=TwoThirdPowerScheme(num=multiplier * alpha),
                constraints=constraints,
            )
            per_beta[float(beta)] = stats.mean_retrievals
        results[float(multiplier)] = per_beta
    return results


def is_convex_increasing(series: Dict[float, float], tolerance: float = 0.15) -> bool:
    """Loose check that a sweep is (noisily) increasing towards its right end.

    Experiment runs are stochastic, so this only verifies the headline shape:
    the cost at the largest constraint value exceeds the cost at the smallest.
    """
    if len(series) < 2:
        return True
    xs = sorted(series)
    first, last = series[xs[0]], series[xs[-1]]
    return last >= first * (1.0 - tolerance)
