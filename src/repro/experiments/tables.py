"""Reproduction of the paper's tables.

* :func:`table1_example` — the running example of Table 1 (group sizes and
  correct counts of the 12-tuple toy relation).
* :func:`table2_savings` — selectivity plus savings of Intel-Sample versus
  the Naive and machine-learning baselines, per dataset (Table 2).
* :func:`table3_group_statistics` — per-dataset group statistics under the
  designated correlated column (Table 3).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.datasets.registry import DATASET_NAMES, dataset_spec
from repro.datasets.toy import toy_credit_table
from repro.db.index import GroupIndex
from repro.experiments.experiment1 import figure1a, figure1b, savings_summary
from repro.experiments.harness import ExperimentConfig
from repro.stats.summaries import pearson_correlation, summarize_series

#: The savings the paper reports in Table 2, used for side-by-side comparison.
PAPER_TABLE2 = {
    "lending_club": {"selectivity": 0.72, "savings_vs_naive": 0.81, "savings_vs_ml": 0.62},
    "prosper": {"selectivity": 0.45, "savings_vs_naive": 0.43, "savings_vs_ml": 0.21},
    "census": {"selectivity": 0.24, "savings_vs_naive": 0.51, "savings_vs_ml": 0.22},
    "marketing": {"selectivity": 0.11, "savings_vs_naive": 0.24, "savings_vs_ml": 0.03},
}

#: The group statistics the paper reports in Table 3.
PAPER_TABLE3 = {
    "lending_club": {"num_groups": 7, "size_dev": 5233, "selectivity_dev": 0.13, "correlation": 0.84},
    "prosper": {"num_groups": 8, "size_dev": 1521, "selectivity_dev": 0.20, "correlation": 0.20},
    "census": {"num_groups": 7, "size_dev": 8183, "selectivity_dev": 0.15, "correlation": 0.36},
    "marketing": {"num_groups": 10, "size_dev": 5070, "selectivity_dev": 0.20, "correlation": -0.65},
}


def table1_example() -> List[dict]:
    """Per-group summary of the paper's Table 1 toy relation."""
    table = toy_credit_table()
    index = GroupIndex(table, "A")
    labels = table.column_values("f", allow_hidden=True)
    rows = []
    for value in index.values:
        row_ids = index.row_ids(value)
        correct = sum(1 for row_id in row_ids if labels[row_id])
        rows.append(
            {
                "A": value,
                "tuples": len(row_ids),
                "correct": correct,
                "incorrect": len(row_ids) - correct,
                "selectivity": correct / len(row_ids) if len(row_ids) else 0.0,
            }
        )
    return rows


def table2_savings(
    config: ExperimentConfig,
    dataset_names: Sequence[str] = DATASET_NAMES,
    include_ml_baselines: bool = True,
) -> List[dict]:
    """Measured selectivity and savings per dataset, paper values attached."""
    fig1a = figure1a(config, dataset_names=dataset_names)
    fig1b = (
        figure1b(config, dataset_names=dataset_names) if include_ml_baselines else None
    )
    rows = savings_summary(fig1a, fig1b)
    for row in rows:
        dataset = config.load(row["dataset"])
        row["selectivity"] = dataset.overall_selectivity
        paper = PAPER_TABLE2.get(row["dataset"], {})
        row["paper_selectivity"] = paper.get("selectivity")
        row["paper_savings_vs_naive"] = paper.get("savings_vs_naive")
        row["paper_savings_vs_ml"] = paper.get("savings_vs_ml")
    return rows


def table3_group_statistics(
    dataset_names: Sequence[str] = DATASET_NAMES,
    config: Optional[ExperimentConfig] = None,
) -> List[dict]:
    """Group statistics of the (synthetic) datasets versus the paper's Table 3.

    Statistics are computed from the full-size dataset specifications, so this
    table does not depend on the experiment scale.
    """
    rows = []
    for name in dataset_names:
        spec = dataset_spec(name)
        sizes = spec.group_sizes
        selectivities = spec.group_selectivities
        size_summary = summarize_series(sizes)
        selectivity_summary = summarize_series(selectivities)
        paper = PAPER_TABLE3.get(name, {})
        rows.append(
            {
                "dataset": name,
                "num_groups": len(sizes),
                "size_dev": size_summary.std,
                "selectivity_dev": selectivity_summary.std,
                "correlation": pearson_correlation(sizes, selectivities),
                "paper_num_groups": paper.get("num_groups"),
                "paper_size_dev": paper.get("size_dev"),
                "paper_selectivity_dev": paper.get("selectivity_dev"),
                "paper_correlation": paper.get("correlation"),
            }
        )
    return rows
