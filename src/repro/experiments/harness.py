"""Shared experiment harness.

The paper's protocol (Section 6.1): the UDF value of every tuple is known to
the experimenter but hidden from the algorithms; an algorithm "samples" by
asking for the value of specific tuples and is charged for it; afterwards the
experimenter audits the returned set against the ground truth.  The harness
runs a named strategy a number of iterations with independent seeds and
aggregates evaluations, retrievals, cost and achieved precision/recall.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.baselines import LearningBaseline, MultipleImputationBaseline, NaiveBaseline
from repro.core.constraints import CostModel, QueryConstraints
from repro.core.pipeline import IntelSample, OptimalOracle
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic import DatasetBundle
from repro.db.udf import CostLedger
from repro.sampling.schemes import FixedFractionScheme, SamplingScheme
from repro.stats.metrics import result_quality
from repro.stats.random import stable_hash_seed

#: Strategy names accepted by :func:`make_strategy`.
STRATEGY_NAMES = ("naive", "intel_sample", "optimal", "learning", "multiple")


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration shared by all experiment drivers.

    Attributes
    ----------
    scale:
        Proportional dataset down-scaling (1.0 = paper-sized datasets).
    iterations:
        Number of independent repetitions per measured point.
    alpha, beta, rho:
        Query constraints (the paper's defaults are 0.8 each).
    retrieval_cost, evaluation_cost:
        The cost model (the paper uses 1 and 3).
    sample_fraction:
        Fraction of each group sampled by Intel-Sample in Experiment 1
        (the paper fixes 5%).
    seed:
        Master seed; every (dataset, strategy, iteration) derives its own
        deterministic seed from it.
    """

    scale: float = 0.15
    iterations: int = 5
    alpha: float = 0.8
    beta: float = 0.8
    rho: float = 0.8
    retrieval_cost: float = 1.0
    evaluation_cost: float = 3.0
    sample_fraction: float = 0.05
    seed: int = 2015

    @property
    def constraints(self) -> QueryConstraints:
        """The query constraints object."""
        return QueryConstraints(alpha=self.alpha, beta=self.beta, rho=self.rho)

    @property
    def cost_model(self) -> CostModel:
        """The cost model object."""
        return CostModel(
            retrieval_cost=self.retrieval_cost, evaluation_cost=self.evaluation_cost
        )

    def new_ledger(self) -> CostLedger:
        """A fresh cost ledger with this configuration's unit costs."""
        return CostLedger(
            retrieval_cost=self.retrieval_cost, evaluation_cost=self.evaluation_cost
        )

    def with_constraints(self, alpha: Optional[float] = None, beta: Optional[float] = None,
                         rho: Optional[float] = None) -> "ExperimentConfig":
        """Copy with some constraint values replaced."""
        return replace(
            self,
            alpha=self.alpha if alpha is None else alpha,
            beta=self.beta if beta is None else beta,
            rho=self.rho if rho is None else rho,
        )

    def load(self, dataset_name: str) -> DatasetBundle:
        """Load one dataset at this configuration's scale (deterministically)."""
        return load_dataset(
            dataset_name,
            random_state=stable_hash_seed("dataset", dataset_name, self.scale, self.seed),
            scale=self.scale,
        )


@dataclass
class AlgorithmStats:
    """Aggregated results of repeated runs of one strategy on one dataset."""

    strategy: str
    dataset: str
    evaluations: List[float] = field(default_factory=list)
    retrievals: List[float] = field(default_factory=list)
    costs: List[float] = field(default_factory=list)
    precisions: List[float] = field(default_factory=list)
    recalls: List[float] = field(default_factory=list)
    satisfied: List[bool] = field(default_factory=list)

    @property
    def mean_evaluations(self) -> float:
        """Average number of UDF evaluations per run."""
        return float(np.mean(self.evaluations)) if self.evaluations else 0.0

    @property
    def mean_retrievals(self) -> float:
        """Average number of tuple retrievals per run."""
        return float(np.mean(self.retrievals)) if self.retrievals else 0.0

    @property
    def mean_cost(self) -> float:
        """Average total cost per run."""
        return float(np.mean(self.costs)) if self.costs else 0.0

    @property
    def mean_precision(self) -> float:
        """Average achieved precision."""
        return float(np.mean(self.precisions)) if self.precisions else 1.0

    @property
    def mean_recall(self) -> float:
        """Average achieved recall."""
        return float(np.mean(self.recalls)) if self.recalls else 1.0

    @property
    def satisfaction_rate(self) -> float:
        """Fraction of runs in which both constraints were met."""
        return float(np.mean(self.satisfied)) if self.satisfied else 1.0

    @property
    def num_runs(self) -> int:
        """Number of recorded runs."""
        return len(self.evaluations)


def make_strategy(
    name: str,
    config: ExperimentConfig,
    dataset: DatasetBundle,
    seed: int,
    sampling_scheme: Optional[SamplingScheme] = None,
    correlated_column: Optional[str] = None,
    use_virtual_column: bool = False,
):
    """Instantiate a strategy by name with a per-run seed.

    ``correlated_column`` defaults to the dataset's designated column for the
    strategies that need one (pass an explicit column, or ``None`` together
    with ``auto_column=True`` behaviour by passing the empty string, to make
    Intel-Sample search for it).
    """
    column = dataset.correlated_column if correlated_column is None else correlated_column
    if column == "":
        column = None
    if name == "naive":
        return NaiveBaseline(random_state=seed)
    if name == "learning":
        return LearningBaseline(random_state=seed)
    if name == "multiple":
        return MultipleImputationBaseline(random_state=seed)
    if name == "optimal":
        return OptimalOracle(correlated_column=column, random_state=seed)
    if name == "intel_sample":
        scheme = sampling_scheme or FixedFractionScheme(config.sample_fraction)
        return IntelSample(
            sampling_scheme=scheme,
            correlated_column=column,
            use_virtual_column=use_virtual_column,
            random_state=seed,
        )
    raise ValueError(f"unknown strategy {name!r}; expected one of {STRATEGY_NAMES}")


def run_strategy(
    name: str,
    dataset: DatasetBundle,
    config: ExperimentConfig,
    iterations: Optional[int] = None,
    sampling_scheme: Optional[SamplingScheme] = None,
    correlated_column: Optional[str] = None,
    use_virtual_column: bool = False,
    constraints: Optional[QueryConstraints] = None,
) -> AlgorithmStats:
    """Run one strategy ``iterations`` times and aggregate the outcomes."""
    iterations = iterations if iterations is not None else config.iterations
    constraints = constraints or config.constraints
    truth = dataset.ground_truth_row_ids()
    stats = AlgorithmStats(strategy=name, dataset=dataset.name)
    for iteration in range(iterations):
        seed = stable_hash_seed(name, dataset.name, config.seed, iteration)
        strategy = make_strategy(
            name,
            config,
            dataset,
            seed,
            sampling_scheme=sampling_scheme,
            correlated_column=correlated_column,
            use_virtual_column=use_virtual_column,
        )
        udf = dataset.make_udf(
            name=f"{dataset.name}_{name}_{iteration}",
            evaluation_cost=config.evaluation_cost,
        )
        ledger = config.new_ledger()
        result = strategy.answer(dataset.table, udf, constraints, ledger)
        quality = result_quality(result.row_ids, truth)
        stats.evaluations.append(ledger.evaluated_count)
        stats.retrievals.append(ledger.retrieved_count)
        stats.costs.append(ledger.total_cost)
        stats.precisions.append(quality.precision)
        stats.recalls.append(quality.recall)
        stats.satisfied.append(quality.satisfies(constraints.alpha, constraints.beta))
    return stats


def run_many(
    strategy_names: List[str],
    dataset_names: List[str],
    config: ExperimentConfig,
    **kwargs,
) -> Dict[str, Dict[str, AlgorithmStats]]:
    """Run several strategies over several datasets.

    Returns ``{dataset_name: {strategy_name: stats}}``.
    """
    results: Dict[str, Dict[str, AlgorithmStats]] = {}
    for dataset_name in dataset_names:
        dataset = config.load(dataset_name)
        results[dataset_name] = {
            name: run_strategy(name, dataset, config, **kwargs)
            for name in strategy_names
        }
    return results
