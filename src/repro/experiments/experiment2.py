"""Experiment 2: robustness of the estimation phase (paper Section 6.3).

* :func:`figure3a` — evaluations versus the per-group sample count ``c`` under
  the Constant sampling scheme (Figure 3(a)).
* :func:`figure3b` — evaluations versus the parameter ``num`` under the
  Two-Third-Power scheme (Figure 3(b)).
* :func:`figure1c` — evaluations versus ``num`` when the correlated column is
  a logistic-regression virtual column (Figure 1(c)).

Each returns ``{dataset: {parameter: mean_evaluations}}``; the expected shape
is a U: too little sampling leaves the optimizer too uncertain, too much makes
the sampling itself the dominant cost.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.datasets.registry import DATASET_NAMES
from repro.experiments.harness import ExperimentConfig, run_strategy
from repro.sampling.schemes import ConstantScheme, TwoThirdPowerScheme

#: Default parameter sweeps (scaled-down analogues of the paper's x-axes).
DEFAULT_CONSTANT_SWEEP = (5, 15, 40, 80, 150, 300, 600)
DEFAULT_NUM_SWEEP = (0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 9.0, 12.0)


def figure3a(
    config: ExperimentConfig,
    dataset_names: Sequence[str] = DATASET_NAMES,
    constant_values: Sequence[int] = DEFAULT_CONSTANT_SWEEP,
    iterations: Optional[int] = None,
) -> Dict[str, Dict[int, float]]:
    """Evaluations versus ``c`` for the Constant sampling scheme."""
    results: Dict[str, Dict[int, float]] = {}
    for dataset_name in dataset_names:
        dataset = config.load(dataset_name)
        per_value: Dict[int, float] = {}
        for value in constant_values:
            stats = run_strategy(
                "intel_sample",
                dataset,
                config,
                iterations=iterations,
                sampling_scheme=ConstantScheme(tuples_per_group=int(value)),
            )
            per_value[int(value)] = stats.mean_evaluations
        results[dataset_name] = per_value
    return results


def figure3b(
    config: ExperimentConfig,
    dataset_names: Sequence[str] = DATASET_NAMES,
    num_values: Sequence[float] = DEFAULT_NUM_SWEEP,
    iterations: Optional[int] = None,
) -> Dict[str, Dict[float, float]]:
    """Evaluations versus ``num`` for the Two-Third-Power sampling scheme."""
    results: Dict[str, Dict[float, float]] = {}
    for dataset_name in dataset_names:
        dataset = config.load(dataset_name)
        per_value: Dict[float, float] = {}
        for value in num_values:
            stats = run_strategy(
                "intel_sample",
                dataset,
                config,
                iterations=iterations,
                sampling_scheme=TwoThirdPowerScheme(num=float(value)),
            )
            per_value[float(value)] = stats.mean_evaluations
        results[dataset_name] = per_value
    return results


def figure1c(
    config: ExperimentConfig,
    dataset_names: Sequence[str] = DATASET_NAMES,
    num_values: Sequence[float] = DEFAULT_NUM_SWEEP,
    iterations: Optional[int] = None,
) -> Dict[str, Dict[float, float]]:
    """Evaluations versus ``num`` with a logistic-regression virtual column.

    The correlated column is not given to the algorithm: it labels ~1% of the
    table, trains a logistic regressor, buckets the scores and groups by the
    bucket id (Section 4.4, second method).  Evaluations include the training
    labels.
    """
    results: Dict[str, Dict[float, float]] = {}
    for dataset_name in dataset_names:
        dataset = config.load(dataset_name)
        per_value: Dict[float, float] = {}
        for value in num_values:
            stats = run_strategy(
                "intel_sample",
                dataset,
                config,
                iterations=iterations,
                sampling_scheme=TwoThirdPowerScheme(num=float(value)),
                correlated_column="",
                use_virtual_column=True,
            )
            per_value[float(value)] = stats.mean_evaluations
        results[dataset_name] = per_value
    return results


def optimum_of(series: Dict[float, float]) -> float:
    """Parameter value achieving the minimum of one sweep series."""
    if not series:
        raise ValueError("cannot take the optimum of an empty series")
    return min(series, key=series.get)
