"""Experiment harness reproducing every table and figure of the paper.

Each driver returns plain data structures (dicts of series) that the
benchmarks print and that EXPERIMENTS.md summarises; no plotting library is
required.  The harness runs on proportionally scaled-down copies of the
datasets by default (see :class:`ExperimentConfig.scale`) so that a full
reproduction fits in seconds; pass ``scale=1.0`` for paper-sized runs.

Index (see DESIGN.md for the full mapping):

* Experiment 1 (:mod:`repro.experiments.experiment1`) — Figures 1(a), 1(b),
  2(a), 2(b), Table 2, and the Section 6.2.1 column-sensitivity study.
* Experiment 2 (:mod:`repro.experiments.experiment2`) — Figures 3(a), 3(b)
  and 1(c).
* Experiment 3 (:mod:`repro.experiments.experiment3`) — Figures 2(c) and 3(c).
* Tables (:mod:`repro.experiments.tables`) — Tables 1, 2 and 3.
"""

from repro.experiments.experiment1 import (
    column_sensitivity,
    figure1a,
    figure1b,
    figure2a_2b,
    savings_summary,
)
from repro.experiments.experiment2 import figure1c, figure3a, figure3b
from repro.experiments.experiment3 import figure2c, figure3c
from repro.experiments.harness import (
    AlgorithmStats,
    ExperimentConfig,
    make_strategy,
    run_strategy,
)
from repro.experiments.report import format_series, format_table
from repro.experiments.tables import (
    table1_example,
    table2_savings,
    table3_group_statistics,
)

__all__ = [
    "ExperimentConfig",
    "AlgorithmStats",
    "make_strategy",
    "run_strategy",
    "format_table",
    "format_series",
    "figure1a",
    "figure1b",
    "figure1c",
    "figure2a_2b",
    "figure2c",
    "figure3a",
    "figure3b",
    "figure3c",
    "column_sensitivity",
    "savings_summary",
    "table1_example",
    "table2_savings",
    "table3_group_statistics",
]
