"""Experiment 1: performance comparison (paper Section 6.2).

* :func:`figure1a` — evaluations of Naive vs Intel-Sample vs Optimal per
  dataset (Figure 1(a)).
* :func:`figure1b` — evaluations of the Learning and Multiple baselines vs
  Intel-Sample (Figure 1(b)).
* :func:`figure2a_2b` — fraction of runs meeting the precision / recall
  constraints as a function of the satisfaction probability ``rho``
  (Figures 2(a) and 2(b)).
* :func:`column_sensitivity` — cost of Intel-Sample when forced to use each
  candidate correlated column (the Section 6.2.1 study).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.datasets.registry import DATASET_NAMES
from repro.experiments.harness import AlgorithmStats, ExperimentConfig, run_strategy


def figure1a(
    config: ExperimentConfig,
    dataset_names: Sequence[str] = DATASET_NAMES,
    strategies: Sequence[str] = ("naive", "intel_sample", "optimal"),
) -> Dict[str, Dict[str, AlgorithmStats]]:
    """Average evaluations of the main algorithm versus the cheap baselines."""
    results: Dict[str, Dict[str, AlgorithmStats]] = {}
    for dataset_name in dataset_names:
        dataset = config.load(dataset_name)
        results[dataset_name] = {
            strategy: run_strategy(strategy, dataset, config) for strategy in strategies
        }
    return results


def figure1b(
    config: ExperimentConfig,
    dataset_names: Sequence[str] = DATASET_NAMES,
    strategies: Sequence[str] = ("learning", "multiple", "intel_sample"),
) -> Dict[str, Dict[str, AlgorithmStats]]:
    """Average evaluations of the machine-learning baselines versus Intel-Sample."""
    return figure1a(config, dataset_names=dataset_names, strategies=strategies)


def figure2a_2b(
    config: ExperimentConfig,
    rho_values: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95),
    dataset_names: Sequence[str] = DATASET_NAMES,
    iterations: Optional[int] = None,
) -> Dict[str, Dict[float, Dict[str, float]]]:
    """Constraint-satisfaction rates versus the requested probability ``rho``.

    Returns ``{dataset: {rho: {"precision_rate": .., "recall_rate": ..}}}``;
    both rates should sit above ``rho`` (the ``x = y`` line in the paper's
    Figures 2(a)/2(b)).
    """
    iterations = iterations if iterations is not None else config.iterations
    results: Dict[str, Dict[float, Dict[str, float]]] = {}
    for dataset_name in dataset_names:
        dataset = config.load(dataset_name)
        per_rho: Dict[float, Dict[str, float]] = {}
        for rho in rho_values:
            constraints = config.constraints.with_rho(rho)
            stats = run_strategy(
                "intel_sample",
                dataset,
                config,
                iterations=iterations,
                constraints=constraints,
            )
            precision_rate = sum(
                1 for p in stats.precisions if p >= config.alpha - 1e-12
            ) / max(1, stats.num_runs)
            recall_rate = sum(
                1 for r in stats.recalls if r >= config.beta - 1e-12
            ) / max(1, stats.num_runs)
            per_rho[rho] = {
                "precision_rate": precision_rate,
                "recall_rate": recall_rate,
            }
        results[dataset_name] = per_rho
    return results


def column_sensitivity(
    config: ExperimentConfig,
    dataset_name: str = "lending_club",
    columns: Optional[Sequence[str]] = None,
    max_distinct: int = 50,
) -> Dict[str, float]:
    """Intel-Sample evaluations when forced to group by each candidate column.

    Mirrors the Section 6.2.1 study: the best real column should cost the
    least, uncorrelated columns noticeably more, and even the worst column
    should beat the Naive baseline.  Returns ``{column: mean_evaluations}``
    plus a ``"__naive__"`` entry for reference.
    """
    dataset = config.load(dataset_name)
    if columns is None:
        columns = [
            name
            for name in dataset.candidate_columns()
            if name != "record_id"
            and 2 <= dataset.table.num_distinct(name) <= max_distinct
        ]
    results: Dict[str, float] = {}
    for column in columns:
        stats = run_strategy(
            "intel_sample", dataset, config, correlated_column=column
        )
        results[column] = stats.mean_evaluations
    naive = run_strategy("naive", dataset, config, iterations=1)
    results["__naive__"] = naive.mean_evaluations
    return results


def savings_summary(
    figure1a_results: Dict[str, Dict[str, AlgorithmStats]],
    figure1b_results: Optional[Dict[str, Dict[str, AlgorithmStats]]] = None,
) -> List[dict]:
    """Combine Figure 1(a)/(b) results into Table 2 style rows."""
    rows = []
    for dataset_name, by_strategy in figure1a_results.items():
        naive = by_strategy.get("naive")
        intel = by_strategy.get("intel_sample")
        row = {
            "dataset": dataset_name,
            "intel_evaluations": intel.mean_evaluations if intel else None,
            "naive_evaluations": naive.mean_evaluations if naive else None,
        }
        if naive and intel and naive.mean_evaluations > 0:
            row["savings_vs_naive"] = 1.0 - intel.mean_evaluations / naive.mean_evaluations
        if figure1b_results and dataset_name in figure1b_results:
            ml = figure1b_results[dataset_name]
            best_ml = min(
                (
                    stats.mean_evaluations
                    for name, stats in ml.items()
                    if name in ("learning", "multiple")
                ),
                default=None,
            )
            if best_ml and best_ml > 0 and intel:
                row["savings_vs_ml"] = 1.0 - intel.mean_evaluations / best_ml
        rows.append(row)
    return rows
