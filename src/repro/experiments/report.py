"""Plain-text rendering of experiment outputs.

The paper's figures are line/bar charts; without a plotting dependency the
reproduction emits the underlying numeric series as aligned text tables, which
is what the benchmark harness prints and what EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return f"{int(value)}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    rendered_rows: List[List[str]] = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    def render_row(cells: Sequence[str]) -> str:
        padded = [str(cell).ljust(widths[i]) for i, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * w for w in widths) + "-|"
    lines = [render_row([str(h) for h in headers]), separator]
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping], x_label: str = "x", sort_keys: bool = True
) -> str:
    """Render ``{series_name: {x: y}}`` as a text table with one column per series."""
    all_x = set()
    for values in series.values():
        all_x.update(values.keys())
    xs = sorted(all_x) if sort_keys else list(all_x)
    headers = [x_label] + list(series.keys())
    rows = []
    for x in xs:
        row = [x] + [series[name].get(x, "") for name in series]
        rows.append(row)
    return format_table(headers, rows)


def format_mapping(mapping: Dict, key_label: str = "key", value_label: str = "value") -> str:
    """Render a flat mapping as a two-column table."""
    return format_table([key_label, value_label], list(mapping.items()))
