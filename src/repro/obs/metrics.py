"""Labelled metrics registry: counters, gauges and latency histograms.

The rest of the library accumulates *work counters* in many places — UDF
call/memoisation counters, :attr:`~repro.db.index.GroupIndex.builds_total`,
per-cache :class:`~repro.serving.cache.CacheStats`, the serving layer's
metric dict — each read through its own accessor.  :class:`MetricsRegistry`
absorbs them behind one surface: instrumented code increments named,
labelled instruments (``registry.counter("udf_evaluations_total",
udf="credit_check").inc(n)``) and one :meth:`MetricsRegistry.snapshot` (or
the Prometheus exporter in :mod:`repro.obs.export`) reads everything at
once.

Cost discipline
---------------

Metrics are **opt-in**: the process-global registry defaults to
:data:`NULL_REGISTRY`, whose instruments are a shared singleton with no-op
methods — an instrumentation site costs two attribute-free calls and
touches no locks, so the tier-1 work counters and benchmark counters are
bitwise identical whether or not the obs layer is imported.  Call
:func:`enable_metrics` to install a live registry (and
:func:`disable_metrics` to restore the null one).  Live instruments are
created on first use under one of :data:`_STRIPES` stripe locks (keyed by
instrument identity, so unrelated metrics never contend) and each
instrument carries its own lock, keeping concurrent increments exact — the
parallel executor's worker threads update the same counters the serial
path does.

Histograms are fixed-bucket with exact summary statistics (count, sum,
min, max).  :meth:`Histogram.quantile` locates the target rank's bucket
and interpolates linearly inside it, clamping to the observed ``[min,
max]`` range — so an empty histogram reports ``None``, a single-sample
histogram reports exactly that sample, and every estimate is within one
bucket width of the true order statistic.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

#: A frozen, sorted label set — the hashable part of an instrument's identity.
LabelSet = Tuple[Tuple[str, str], ...]

#: Number of stripe locks guarding instrument creation in a live registry.
_STRIPES = 16

#: Default latency buckets (seconds): ~100 µs to 10 s, roughly geometric.
#: The serving path spans ~0.5 ms (warm hit) to seconds (cold 1M-row plans),
#: so quantile interpolation stays within a small relative error across it.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_set(labels: Mapping[str, Any]) -> LabelSet:
    """Canonicalise a label mapping (sorted, stringified values)."""
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def label_suffix(labels: LabelSet) -> str:
    """Render a label set as the ``{k="v",...}`` suffix used in snapshots."""
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing counter (thread-safe)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only increase; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (thread-safe)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: Union[int, float]) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max and quantiles.

    ``buckets`` are ascending upper bounds (Prometheus ``le`` semantics: an
    observation lands in the first bucket whose bound is >= the value); an
    implicit ``+inf`` bucket catches the overflow.  Usable standalone (the
    serving layer keeps per-path latency histograms without any registry)
    or through :meth:`MetricsRegistry.histogram`.
    """

    __slots__ = (
        "name", "labels", "buckets", "_lock",
        "_counts", "_count", "_sum", "_min", "_max",
    )

    def __init__(
        self,
        name: str = "",
        buckets: Optional[Sequence[float]] = None,
        labels: LabelSet = (),
    ):
        bounds = tuple(float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS))
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"buckets must be non-empty and ascending, got {bounds}")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # trailing +inf bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        value = float(value)
        position = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[position] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of observations."""
        with self._lock:
            return self._sum

    @property
    def mean(self) -> Optional[float]:
        """Mean observation (``None`` when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else None

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (``0 < q <= 1``), or ``None`` when empty.

        The target rank ``ceil(q * count)`` is located to its bucket, then
        linearly interpolated between the bucket's effective bounds and
        clamped to the observed ``[min, max]`` — exact for empty and
        single-sample histograms and never off by more than a bucket width.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            if not self._count:
                return None
            target = max(1, math.ceil(q * self._count))
            cumulative = 0
            for position, bucket_count in enumerate(self._counts):
                if not bucket_count:
                    continue
                if cumulative + bucket_count >= target:
                    lower = self.buckets[position - 1] if position else -math.inf
                    upper = (
                        self.buckets[position]
                        if position < len(self.buckets)
                        else math.inf
                    )
                    # Tighten the interpolation interval with the exact
                    # range: the first/last buckets (and ±inf bounds) would
                    # otherwise stretch the estimate past any observation.
                    lower = max(lower, self._min)
                    upper = min(upper, self._max)
                    fraction = (target - cumulative) / bucket_count
                    return lower + fraction * (upper - lower)
                cumulative += bucket_count
            return self._max  # unreachable: target <= count  # pragma: no cover

    def percentiles(self, *points: float) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p99": ...}`` for percentile ``points`` (0-100)."""
        return {f"p{point:g}": self.quantile(point / 100.0) for point in points}

    def snapshot(self) -> Dict[str, Any]:
        """Counts per bucket plus summary statistics, read atomically."""
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
            minimum = self._min if self._count else None
            maximum = self._max if self._count else None
        snap: Dict[str, Any] = {
            "count": count,
            "sum": total,
            "min": minimum,
            "max": maximum,
            "buckets": {
                ("+inf" if position == len(self.buckets) else repr(self.buckets[position])): c
                for position, c in enumerate(counts)
            },
        }
        for point in (50, 95, 99):
            snap[f"p{point}"] = self.quantile(point / 100.0)
        return snap


class _NullInstrument:
    """Shared no-op instrument handed out by the null registry."""

    __slots__ = ()

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def dec(self, amount: Union[int, float] = 1) -> None:
        pass

    def set(self, value: Union[int, float]) -> None:
        pass

    def observe(self, value: Union[int, float]) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The near-zero-cost default: every instrument is a shared no-op."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> Any:
        return NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> Any:
        return NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: Any
    ) -> Any:
        return NULL_INSTRUMENT

    def register_collector(
        self, name: str, collect: Callable[[], Mapping[str, Any]]
    ) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {}


NULL_REGISTRY = NullRegistry()


class BoundCounterCache:
    """Per-call-site cache of counter handles, keyed by a short site key.

    ``registry.counter(...)`` canonicalises labels and hashes the full
    identity on every call; at a handful of increments per served query
    that lookup is the dominant instrumentation cost.  A site holds one of
    these, built with a ``factory(registry, key) -> Counter``, and calls
    :meth:`get` with the current registry — handles are reused until the
    registry object itself is swapped (enable/disable/replace), at which
    point the cache rebuilds against the new one.

    Thread-safe without locking: the ``(registry, handles)`` pair is
    swapped atomically, so a stale reader only ever sees a consistent
    pair, and a racing duplicate ``factory`` call lands on the same
    registry-deduplicated instrument.
    """

    __slots__ = ("_factory", "_bound")

    def __init__(self, factory: Callable[[Any, str], Counter]):
        self._factory = factory
        self._bound: Tuple[Any, Dict[str, Counter]] = (None, {})

    def get(self, registry: Any, key: str) -> Counter:
        bound = self._bound
        if bound[0] is not registry:
            bound = (registry, {})
            self._bound = bound
        handles = bound[1]
        handle = handles.get(key)
        if handle is None:
            handle = handles[key] = self._factory(registry, key)
        return handle


class MetricsRegistry:
    """Thread-safe, lock-striped registry of labelled instruments.

    Instruments are created lazily on first use and live for the registry's
    lifetime.  Creation takes one of :data:`_STRIPES` stripe locks keyed by
    the instrument's ``(kind, name, labels)`` identity, so two threads
    instrumenting unrelated metrics never serialise on a global lock; the
    common path (instrument already exists) is a plain dict read.

    ``register_collector`` attaches a pull-style source: a callable
    returning a flat ``{metric: value}`` mapping evaluated at snapshot
    time.  Collectors absorb pre-existing counter surfaces (cache
    snapshots, class-level totals) without putting mirror writes on their
    hot paths.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, str, LabelSet], Any] = {}
        self._stripe_locks = tuple(threading.Lock() for _ in range(_STRIPES))
        self._collectors: Dict[str, Callable[[], Mapping[str, Any]]] = {}
        self._collectors_lock = threading.Lock()

    def _create(self, key: Tuple[str, str, LabelSet], factory: Callable[[], Any]) -> Any:
        """Slow path: create (or race-lose and fetch) the instrument for ``key``."""
        stripe = self._stripe_locks[hash(key) % _STRIPES]
        with stripe:
            found = self._instruments.get(key)
            if found is None:
                found = factory()
                self._instruments[key] = found
            return found

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        # Hot path: one tuple build and one dict read, no closure allocation
        # and no label canonicalisation for the common unlabelled call.
        label_set = _label_set(labels) if labels else ()
        key = ("counter", name, label_set)
        found = self._instruments.get(key)
        if found is not None:
            return found
        return self._create(key, lambda: Counter(name, label_set))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        label_set = _label_set(labels) if labels else ()
        key = ("gauge", name, label_set)
        found = self._instruments.get(key)
        if found is not None:
            return found
        return self._create(key, lambda: Gauge(name, label_set))

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: Any
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use.

        ``buckets`` applies only at creation; later callers get the
        existing instrument regardless of the buckets they pass.
        """
        label_set = _label_set(labels) if labels else ()
        key = ("histogram", name, label_set)
        found = self._instruments.get(key)
        if found is not None:
            return found
        return self._create(
            key, lambda: Histogram(name, buckets=buckets, labels=label_set)
        )

    def register_collector(
        self, name: str, collect: Callable[[], Mapping[str, Any]]
    ) -> None:
        """Attach (or replace) a pull-style metric source named ``name``."""
        with self._collectors_lock:
            self._collectors[name] = collect

    def instruments(self) -> List[Any]:
        """Every live instrument (counters, gauges, histograms)."""
        return list(self._instruments.values())

    def snapshot(self) -> Dict[str, Any]:
        """Everything the registry knows, as one nested plain dict.

        ``counters``/``gauges`` map ``name{labels}`` to values,
        ``histograms`` to per-histogram summary dicts, and ``collected``
        holds each collector's mapping (evaluated now).
        """
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for (kind, name, labels), instrument in sorted(
            self._instruments.items(), key=lambda item: item[0]
        ):
            flat = f"{name}{label_suffix(labels)}"
            if kind == "counter":
                counters[flat] = instrument.value
            elif kind == "gauge":
                gauges[flat] = instrument.value
            else:
                histograms[flat] = instrument.snapshot()
        with self._collectors_lock:
            collectors = dict(self._collectors)
        collected = {name: dict(collect()) for name, collect in collectors.items()}
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "collected": collected,
        }


#: The process-global registry instrumentation sites write to.  Swapped as a
#: whole object (never mutated in place), so a site reading it mid-swap sees
#: either the old or the new registry, both safe.
_registry: Union[MetricsRegistry, NullRegistry] = NULL_REGISTRY


def get_registry() -> Union[MetricsRegistry, NullRegistry]:
    """The currently installed process-global registry."""
    return _registry


def set_registry(registry: Union[MetricsRegistry, NullRegistry]) -> None:
    """Install ``registry`` as the process-global registry."""
    global _registry
    _registry = registry


def enable_metrics(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) a live global registry.

    Pass an existing :class:`MetricsRegistry` to re-install it; otherwise a
    fresh one is created.  Until this is called every instrumentation site
    in the library is a no-op.
    """
    live = registry if registry is not None else MetricsRegistry()
    set_registry(live)
    return live


def disable_metrics() -> None:
    """Restore the no-op default registry."""
    set_registry(NULL_REGISTRY)


def counter(name: str, **labels: Any):
    """The global registry's counter for ``(name, labels)`` (no-op by default)."""
    return _registry.counter(name, **labels)


def gauge(name: str, **labels: Any):
    """The global registry's gauge for ``(name, labels)`` (no-op by default)."""
    return _registry.gauge(name, **labels)


def histogram(name: str, buckets: Optional[Sequence[float]] = None, **labels: Any):
    """The global registry's histogram for ``(name, labels)`` (no-op by default)."""
    return _registry.histogram(name, buckets=buckets, **labels)
