"""Exporters: Prometheus text, JSON-lines trace sink, slow-query log.

Everything here consumes the plain-dict surfaces of
:class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.trace.Trace` — no scraping library, no agent, just text
you can write to a file, ship as a CI artifact, or point a Prometheus
file-based collector at.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any, Dict, List, Optional, TextIO, Union

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    label_suffix,
)
from repro.obs.trace import Trace


def _sanitize(name: str) -> str:
    """Make ``name`` a legal Prometheus metric name."""
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def prometheus_text(registry: Union[MetricsRegistry, NullRegistry]) -> str:
    """Render every instrument in ``registry`` in Prometheus text format.

    Counters/gauges emit one sample each; histograms emit cumulative
    ``_bucket`` samples plus ``_sum``/``_count``, matching the classic
    Prometheus histogram layout.  Collector-sourced metrics are emitted as
    untyped gauges named ``<collector>_<metric>``.
    """
    if isinstance(registry, NullRegistry):
        return "# metrics disabled (null registry)\n"
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def declare(name: str, kind: str) -> None:
        if typed.get(name) != kind:
            typed[name] = kind
            lines.append(f"# TYPE {name} {kind}")

    for instrument in sorted(
        registry.instruments(), key=lambda entry: (entry.name, entry.labels)
    ):
        name = _sanitize(instrument.name)
        if isinstance(instrument, Counter):
            declare(name, "counter")
            lines.append(
                f"{name}{label_suffix(instrument.labels)} {_format_value(instrument.value)}"
            )
        elif isinstance(instrument, Gauge):
            declare(name, "gauge")
            lines.append(
                f"{name}{label_suffix(instrument.labels)} {_format_value(instrument.value)}"
            )
        elif isinstance(instrument, Histogram):
            declare(name, "histogram")
            snap = instrument.snapshot()
            cumulative = 0
            for bound, count in snap["buckets"].items():
                cumulative += count
                upper = "+Inf" if bound == "+inf" else bound
                bucket_labels = instrument.labels + (("le", upper),)
                lines.append(f"{name}_bucket{label_suffix(bucket_labels)} {cumulative}")
            lines.append(
                f"{name}_sum{label_suffix(instrument.labels)} {_format_value(snap['sum'])}"
            )
            lines.append(f"{name}_count{label_suffix(instrument.labels)} {snap['count']}")
    for collector_name, collected in sorted(registry.snapshot()["collected"].items()):
        for metric, value in sorted(collected.items()):
            if not isinstance(value, (int, float)):
                continue
            flat = _sanitize(f"{collector_name}_{metric}")
            declare(flat, "gauge")
            lines.append(f"{flat} {_format_value(float(value))}")
    return "\n".join(lines) + "\n"


class JsonLinesTraceSink:
    """A trace sink writing one JSON object per finished trace.

    Usable as ``QueryService.set_trace_sink(JsonLinesTraceSink(path))`` or
    with an open stream.  Thread-safe; traces from concurrent queries
    interleave as whole lines, never partially.
    """

    def __init__(self, target: Union[str, TextIO]):
        self._lock = threading.Lock()
        if isinstance(target, str):
            self._stream: TextIO = open(target, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False

    def __call__(self, trace: Trace) -> None:
        line = json.dumps(trace.to_dict(), sort_keys=True, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()

    def close(self) -> None:
        """Close the underlying stream if this sink opened it."""
        with self._lock:
            if self._owns_stream:
                self._stream.close()


class CollectingTraceSink:
    """An in-memory sink keeping the last ``capacity`` finished traces."""

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: List[Trace] = []

    def __call__(self, trace: Trace) -> None:
        with self._lock:
            self._traces.append(trace)
            if len(self._traces) > self.capacity:
                del self._traces[: len(self._traces) - self.capacity]

    @property
    def traces(self) -> List[Trace]:
        """The retained traces, oldest first."""
        with self._lock:
            return list(self._traces)

    def slowest(self) -> Optional[Trace]:
        """The retained trace with the longest wall time."""
        with self._lock:
            finished = [t for t in self._traces if t.duration_ms is not None]
            if not finished:
                return None
            return max(finished, key=lambda t: t.duration_ms)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()


class SlowQueryLog:
    """A trace sink keeping (and optionally appending to disk) slow traces.

    Traces whose wall time exceeds ``threshold_ms`` are retained, slowest
    first, up to ``capacity``; with ``path`` set each slow trace is also
    appended to the file as a JSON line at arrival time.  Chain another
    sink to receive *every* trace via composition: this class is itself a
    sink, so ``service.set_trace_sink(slow_log)`` is all the wiring needed.
    """

    def __init__(
        self,
        threshold_ms: float = 100.0,
        capacity: int = 32,
        path: Optional[str] = None,
    ):
        self.threshold_ms = threshold_ms
        self.capacity = capacity
        self.path = path
        self._lock = threading.Lock()
        self._entries: List[Trace] = []

    def __call__(self, trace: Trace) -> None:
        duration = trace.duration_ms
        if duration is None or duration < self.threshold_ms:
            return
        with self._lock:
            self._entries.append(trace)
            self._entries.sort(
                key=lambda t: t.duration_ms if t.duration_ms is not None else 0.0,
                reverse=True,
            )
            del self._entries[self.capacity:]
        if self.path is not None:
            line = json.dumps(trace.to_dict(), sort_keys=True, default=str)
            with self._lock:
                with open(self.path, "a", encoding="utf-8") as stream:
                    stream.write(line + "\n")

    @property
    def entries(self) -> List[Trace]:
        """Retained slow traces, slowest first."""
        with self._lock:
            return list(self._entries)

    def dump(self) -> str:
        """Every retained slow trace rendered as an indented tree."""
        blocks = []
        for trace in self.entries:
            blocks.append(
                f"-- {trace.name} query_id={trace.query_id} "
                f"{trace.duration_ms:.2f}ms\n{trace.format_tree()}"
            )
        return "\n\n".join(blocks)

    def to_json_lines(self) -> str:
        """Every retained slow trace as JSON lines (for artifacts)."""
        return "\n".join(
            json.dumps(trace.to_dict(), sort_keys=True, default=str)
            for trace in self.entries
        ) + ("\n" if self._entries else "")


def write_prometheus_snapshot(
    registry: Union[MetricsRegistry, NullRegistry], path: str
) -> None:
    """Write :func:`prometheus_text` for ``registry`` to ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(prometheus_text(registry))


def metrics_json(snapshot: Dict[str, Any]) -> str:
    """A registry/service snapshot as stable, indented JSON."""
    return json.dumps(snapshot, indent=2, sort_keys=True, default=str)
