"""Structured per-query tracing: span trees with work-counter deltas.

A :class:`Trace` is one query's timeline: a tree of :class:`Span` records
(plan-lookup → column-selection → sampling → solve → execute → per-shard
spans → refresh) each carrying wall time and *work counters* — the paper's
cost-model quantities (``udf_evals``, ``retrievals``) attributed to the
span in which they were incurred.

Propagation uses :mod:`contextvars`: :meth:`Trace.activate` binds the
trace's root span into :data:`_CURRENT_SPAN`, and every
:func:`span` entered after that parents itself under the context's current
span.  The parallel executor copies its submitting context into pool
workers (``contextvars.copy_context().run``), so per-shard spans created on
worker threads land under the submitting query's ``execute`` span and a
1M-row sharded query still yields one coherent tree.  Because the binding
is per-context, concurrent queries through the same service — even through
the striped single-flight registry — never see each other's spans.

Work-counter exactness comes from two disciplines:

* **Serial spans** pass their :class:`~repro.db.udf.CostLedger` to
  :func:`span`; the span snapshots ``retrieved/evaluated`` on entry and
  records the delta on exit.  Within one request these sections run on one
  thread, so the delta is exactly the work done inside the span.
* **Parallel shard spans** never diff the shared ledger (another shard may
  charge it concurrently).  Instead the executor calls :meth:`Span.add`
  with the exact per-shard amounts it computes under its own ledger lock —
  the same numbers it charges — so the leaf spans sum to the query total
  by construction.

Like the metrics registry, tracing is opt-in-cheap: with no active trace
:func:`span` returns a shared no-op context manager and touches neither
locks nor the clock.
"""

from __future__ import annotations

import threading
import time
from contextvars import ContextVar, Token
from typing import Any, Dict, List, Optional

#: The span new child spans attach under, bound per execution context.
_CURRENT_SPAN: ContextVar[Optional["Span"]] = ContextVar("repro_obs_span", default=None)


class Span:
    """One named section of a trace: wall time plus work-counter deltas.

    Spans form a tree through ``parent_id``; ``work`` maps counter names
    (``udf_evals``, ``retrievals``, shard row counts, ...) to the amount
    incurred inside the span.  Instances are created through
    :meth:`Trace.span` / the module-level :func:`span` helper, not
    directly.
    """

    __slots__ = (
        "trace", "span_id", "parent_id", "name", "started_at", "duration_s",
        "_work", "_ledger", "_ledger_before", "_token",
    )

    def __init__(
        self,
        trace: "Trace",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        ledger: Any = None,
    ):
        self.trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.started_at = time.perf_counter()
        self.duration_s: Optional[float] = None
        # Lazily allocated on first add/annotate: most spans carry no work
        # counters, and skipping two allocations per span keeps tracing's
        # GC pressure down on the serving hot path.
        self._work: Optional[Dict[str, float]] = None
        self._ledger = ledger
        self._ledger_before = (
            (ledger.retrieved_count, ledger.evaluated_count) if ledger is not None else None
        )
        self._token: Optional[Token] = None

    def __enter__(self) -> "Span":
        """Bind this span as the context's current span for a ``with`` body.

        The span doubles as its own context manager — one object and one
        call layer fewer per span than a wrapper section, which matters at
        a handful of spans per served query.
        """
        self._token = _CURRENT_SPAN.set(self)
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        self._close()

    @property
    def work(self) -> Dict[str, float]:
        """Work counters attributed to this span (empty when none)."""
        work = self._work
        return work if work is not None else {}

    def add(self, key: str, amount: float) -> None:
        """Attribute ``amount`` of work counter ``key`` to this span."""
        if not amount:
            return
        with self.trace._lock:
            work = self._work
            if work is None:
                work = self._work = {}
            work[key] = work.get(key, 0) + amount

    def annotate(self, key: str, value: Any) -> None:
        """Record a non-additive fact (a count, a label) on the span."""
        with self.trace._lock:
            work = self._work
            if work is None:
                work = self._work = {}
            work[key] = value

    def _close(self) -> None:
        self.duration_s = time.perf_counter() - self.started_at
        if self._ledger is not None:
            before_retrieved, before_evaluated = self._ledger_before
            self.add("retrievals", self._ledger.retrieved_count - before_retrieved)
            self.add("udf_evals", self._ledger.evaluated_count - before_evaluated)
            self._ledger = None

    def to_dict(self) -> Dict[str, Any]:
        """The span as a plain dict (used by sinks and ``Trace.to_dict``)."""
        with self.trace._lock:
            work = dict(self._work) if self._work is not None else {}
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "duration_ms": None if self.duration_s is None else self.duration_s * 1000.0,
            "work": work,
        }


class _NullSpan:
    """Shared stand-in yielded when no trace is active."""

    __slots__ = ()

    def add(self, key: str, amount: float) -> None:
        pass

    def annotate(self, key: str, value: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Trace:
    """One query's span tree.

    Create, :meth:`activate` inside the handling context, wrap sections in
    :func:`span`, then :meth:`finish`.  Span creation is thread-safe (the
    parallel executor opens shard spans from worker threads); activation
    tokens are context-local.
    """

    def __init__(self, name: str, query_id: Any = None):
        self.name = name
        self.query_id = query_id
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._next_id = 0
        self.root = self._new_span(name, parent=None, ledger=None)
        self._token: Optional[Token] = None

    def _new_span(self, name: str, parent: Optional[Span], ledger: Any) -> Span:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            created = Span(
                self,
                span_id,
                parent.span_id if parent is not None else None,
                name,
                ledger=ledger,
            )
            self.spans.append(created)
            return created

    def activate(self) -> None:
        """Bind this trace's root span as the context's current span."""
        self._token = _CURRENT_SPAN.set(self.root)

    def deactivate(self) -> None:
        """Undo :meth:`activate` (restores the previous binding, if any)."""
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None

    def finish(self) -> "Trace":
        """Close the root span (and any spans left open) and deactivate."""
        for open_span in self.spans:
            if open_span.duration_s is None:
                open_span._close()
        self.deactivate()
        return self

    def span(
        self, name: str, parent: Optional[Span] = None, ledger: Any = None
    ) -> Span:
        """Open a child span under ``parent`` (default: context's current).

        The returned span is its own context manager: while the ``with``
        body runs it is the context's current span, so nested :func:`span`
        calls — including ones on worker threads that inherited this
        context — attach beneath it.
        """
        if parent is None:
            parent = _CURRENT_SPAN.get() or self.root
        return self._new_span(name, parent=parent, ledger=ledger)

    @property
    def duration_ms(self) -> Optional[float]:
        """Root span wall time in milliseconds (``None`` until finished)."""
        return None if self.root.duration_s is None else self.root.duration_s * 1000.0

    def work_total(self, key: str) -> float:
        """Sum of work counter ``key`` across every span in the tree."""
        with self._lock:
            spans = list(self.spans)
        total = 0.0
        for recorded in spans:
            value = recorded.work.get(key, 0)
            if isinstance(value, (int, float)):
                total += value
        return total

    def to_dict(self) -> Dict[str, Any]:
        """The whole trace as one JSON-serialisable dict."""
        with self._lock:
            spans = list(self.spans)
        return {
            "trace": self.name,
            "query_id": self.query_id,
            "duration_ms": self.duration_ms,
            "spans": [recorded.to_dict() for recorded in spans],
        }

    def format_tree(self) -> str:
        """Human-readable indented rendering of the span tree.

        Children print in span-creation order, which is deterministic for
        serial sections; shard spans are ordered by their deterministic
        ``shard:<i>`` names so parallel scheduling never changes the
        rendering.
        """
        with self._lock:
            spans = list(self.spans)
        children: Dict[Optional[int], List[Span]] = {}
        for recorded in spans:
            children.setdefault(recorded.parent_id, []).append(recorded)
        for siblings in children.values():
            siblings.sort(key=lambda entry: (entry.name.split(":")[0], entry.name, entry.span_id))
        lines: List[str] = []

        def render(node: Span, depth: int) -> None:
            duration = (
                "..." if node.duration_s is None else f"{node.duration_s * 1000.0:.2f}ms"
            )
            work = ""
            if node.work:
                inner = ", ".join(
                    f"{key}={value:g}" if isinstance(value, float) else f"{key}={value}"
                    for key, value in sorted(node.work.items())
                )
                work = f"  [{inner}]"
            lines.append(f"{'  ' * depth}{node.name}  {duration}{work}")
            for child in children.get(node.span_id, []):
                render(child, depth + 1)

        render(self.root, 0)
        return "\n".join(lines)


class _NullSection:
    """Shared, stateless no-op section for instrumented code with no trace."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SECTION = _NullSection()


def _null_section() -> _NullSection:
    return _NULL_SECTION


def current_span() -> Optional[Span]:
    """The context's current span, or ``None`` when tracing is inactive."""
    return _CURRENT_SPAN.get()


def current_trace() -> Optional[Trace]:
    """The context's active trace, or ``None`` when tracing is inactive."""
    active = _CURRENT_SPAN.get()
    return active.trace if active is not None else None


def span(name: str, ledger: Any = None):
    """Open a child span under the context's current span, if any.

    The instrumentation entry point: inside an active trace this returns a
    new child span (its own context manager); with no trace active it
    yields a shared no-op span without touching the clock, so instrumented
    code pays ~one ``ContextVar.get`` when tracing is off.
    """
    active = _CURRENT_SPAN.get()
    if active is None:
        return _NULL_SECTION
    return active.trace._new_span(name, parent=active, ledger=ledger)
