"""``repro.obs`` — metrics, tracing and exporters for the query stack.

Three layers, all opt-in-cheap:

* :mod:`repro.obs.metrics` — a process-global, lock-striped
  :class:`MetricsRegistry` of labelled ``Counter``/``Gauge``/``Histogram``
  instruments.  Disabled by default (every site writes to a shared no-op);
  :func:`enable_metrics` turns it on and
  :meth:`MetricsRegistry.snapshot` reads everything at once.
* :mod:`repro.obs.trace` — per-query :class:`Trace`/:class:`Span` trees
  with wall time and exact work-counter deltas, propagated across the
  parallel executor's worker threads via :mod:`contextvars`.
* :mod:`repro.obs.export` — Prometheus text, JSON-lines trace sink,
  :class:`SlowQueryLog` (threshold-triggered trace retention).

The serving layer wires these together:
``QueryService.metrics_snapshot()`` and ``QueryService.set_trace_sink(...)``
are the public surface most users need.
"""

from repro.obs.export import (
    CollectingTraceSink,
    JsonLinesTraceSink,
    SlowQueryLog,
    metrics_json,
    prometheus_text,
    write_prometheus_snapshot,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    counter,
    disable_metrics,
    enable_metrics,
    gauge,
    get_registry,
    histogram,
    set_registry,
)
from repro.obs.trace import (
    Span,
    Trace,
    current_span,
    current_trace,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "counter",
    "gauge",
    "histogram",
    "get_registry",
    "set_registry",
    "enable_metrics",
    "disable_metrics",
    "Trace",
    "Span",
    "span",
    "current_span",
    "current_trace",
    "prometheus_text",
    "write_prometheus_snapshot",
    "metrics_json",
    "JsonLinesTraceSink",
    "CollectingTraceSink",
    "SlowQueryLog",
]
