"""A small in-memory column-store table.

The table stores each column as a Python list (values may be heterogeneous —
categorical strings, ints, floats, booleans) and assigns every row a stable
integer ``row id``.  Row ids are what the optimizers, executors and metrics
pass around: the ground-truth "correct result" of a query is a set of row ids,
and so is an approximate result.
"""

from __future__ import annotations

import threading
from itertools import islice
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (index imports table)
    from repro.db.index import GroupIndex

from repro.db.column import Column, ColumnType, distinct_values
from repro.db.errors import ColumnNotFoundError, SchemaMismatchError
from repro.db.schema import Schema
from repro.obs import metrics as _metrics


def coerce_cells_to_array(values: Sequence[Any]) -> np.ndarray:
    """A 1-d NumPy array over ``values`` with dict-equality-safe semantics.

    The array is the vectorisation substrate for grouping, bulk UDF
    evaluation and batch execution, so it must never change value semantics:
    ragged/sequence-valued cells and mixed-type cells (which numpy would
    silently stringify, altering grouping/equality downstream) fall back to
    an object array preserving the original python values.  Shared by
    :meth:`Table.column_array` and the incremental append path so a column
    built whole and a column built in deltas coerce identically.
    """
    try:
        array = np.asarray(values)
        if array.ndim != 1 or len(array) != len(values):
            raise ValueError("sequence-valued cells")
        if array.dtype.kind in ("U", "S") and not all(
            isinstance(value, str) for value in values
        ):
            raise ValueError("mixed-type cells")
    except ValueError:
        array = np.empty(len(values), dtype=object)
        array[:] = values
    return array


def infer_schema_for_columns(
    columns: Mapping[str, Sequence[Any]],
    column_types: Optional[Mapping[str, ColumnType | str]] = None,
    hidden_columns: Iterable[str] = (),
) -> Schema:
    """Schema for column arrays: explicit types win, else a 100-value peek.

    Shared by :meth:`Table.from_columns` and the sharded ingestion path so
    both infer identically (and any future inference change lands in one
    place).  ``islice`` avoids materialising a full copy of a column just to
    peek at its first values — columns must still be real sequences, since
    the table constructor needs their length.
    """
    hidden = set(hidden_columns)
    column_types = column_types or {}
    column_defs = []
    for column_name, values in columns.items():
        if column_name in column_types:
            ctype = ColumnType(column_types[column_name])
        else:
            from repro.db.column import infer_column_type

            ctype = infer_column_type(list(islice(values, 100)))
        column_defs.append(
            Column(
                name=column_name,
                column_type=ctype,
                hidden=column_name in hidden,
            )
        )
    return Schema(column_defs)


class Table:
    """A row-id addressed, append-only table.

    Existing rows are immutable (and their ids stable) after construction;
    the only supported mutation is appending new rows at the end via
    :meth:`append_rows` / :meth:`append_columns`, which bumps
    :attr:`data_generation` and delta-maintains every cached derived
    structure (column arrays, group indexes).
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        columns: Mapping[str, Sequence[Any]],
    ):
        self.name = name
        self.schema = schema
        missing = [c for c in schema.column_names if c not in columns]
        if missing:
            raise SchemaMismatchError(f"missing data for columns {missing}")
        extra = [c for c in columns if not schema.has_column(c)]
        if extra:
            raise SchemaMismatchError(f"data provided for unknown columns {extra}")
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaMismatchError(
                f"columns have inconsistent lengths: {lengths}"
            )
        self._data: Dict[str, List[Any]] = {
            name: list(values) for name, values in columns.items()
        }
        self._num_rows = next(iter(lengths.values())) if lengths else 0
        self._data_generation = 0
        self._arrays: Dict[str, np.ndarray] = {}
        self._group_indexes: Dict[tuple, "GroupIndex"] = {}
        self._group_index_lock = threading.Lock()

    # -- construction helpers -------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        name: str,
        rows: Sequence[Mapping[str, Any]],
        schema: Optional[Schema] = None,
    ) -> "Table":
        """Build a table from a list of dict rows, inferring the schema if needed."""
        if schema is None:
            schema = Schema.infer(rows)
        schema.validate_rows(rows)
        columns: Dict[str, List[Any]] = {
            column_name: [row[column_name] for row in rows]
            for column_name in schema.column_names
        }
        return cls(name=name, schema=schema, columns=columns)

    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: Mapping[str, Sequence[Any]],
        column_types: Optional[Mapping[str, ColumnType | str]] = None,
        hidden_columns: Iterable[str] = (),
    ) -> "Table":
        """Build a table directly from column arrays."""
        schema = infer_schema_for_columns(
            columns, column_types=column_types, hidden_columns=hidden_columns
        )
        return cls(name=name, schema=schema, columns=columns)

    @classmethod
    def from_arrays(
        cls,
        name: str,
        schema: Schema,
        arrays: Mapping[str, np.ndarray],
        data_generation: int = 0,
    ) -> "Table":
        """Build a table directly over column arrays, without materialising lists.

        The storage layer's load path: ``arrays`` (typically read-only
        memmaps over persisted segment files) become the table's cached
        column arrays as-is, and the python-value cell lists behind
        :meth:`column_values` / :meth:`row` are materialised lazily, per
        column, only when something actually asks for python cells.  Arrays
        must be 1-d, cover every schema column and agree on length; they are
        marked read-only (the table shares, not copies, them).
        """
        missing = [c for c in schema.column_names if c not in arrays]
        if missing:
            raise SchemaMismatchError(f"missing arrays for columns {missing}")
        extra = [c for c in arrays if not schema.has_column(c)]
        if extra:
            raise SchemaMismatchError(f"arrays provided for unknown columns {extra}")
        lengths = {column: len(array) for column, array in arrays.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaMismatchError(
                f"column arrays have inconsistent lengths: {lengths}"
            )
        table = cls.__new__(cls)
        table.name = name
        table.schema = schema
        table._data = {}
        table._num_rows = next(iter(lengths.values())) if lengths else 0
        table._data_generation = int(data_generation)
        table._arrays = {}
        for column, array in arrays.items():
            array = np.asarray(array)
            if array.ndim != 1:
                raise SchemaMismatchError(
                    f"column {column!r} array must be 1-d, got shape {array.shape}"
                )
            array.setflags(write=False)
            table._arrays[column] = array
        table._group_indexes = {}
        table._group_index_lock = threading.Lock()
        return table

    # -- shape ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._num_rows

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self.schema)

    @property
    def row_ids(self) -> range:
        """All row ids (0-based, dense)."""
        return range(self._num_rows)

    def __len__(self) -> int:
        return self._num_rows

    @property
    def data_generation(self) -> int:
        """Monotonic counter advanced by every append.

        Row ids are append-only stable (existing ids never change meaning),
        so statistics computed at generation ``g`` remain *valid* for the
        first ``num_rows(g)`` rows at any later generation — they are merely
        incomplete.  The serving layer uses the generation to detect staleness
        and refresh cached entries through the delta path instead of treating
        a grown table as a brand-new one.
        """
        return self._data_generation

    def shard_signature(self) -> tuple:
        """Hashable shard-layout token for cache keying.

        A monolithic table is its own single shard; sharded subclasses
        (:class:`~repro.db.sharding.ShardedTable`) report their boundaries.
        The :attr:`data_generation` is folded in, so statistics computed
        against one layout/data generation are never replayed verbatim
        against another.  Serving caches key on this token (plus table
        identity) and treat a signature mismatch at equal identity as a
        *refreshable* — not cold — miss.
        """
        return ("monolithic", self._num_rows, self._data_generation)

    # -- incremental ingest -------------------------------------------------------
    def append_columns(self, columns: Mapping[str, Sequence[Any]]) -> int:
        """Append a delta of rows given as column arrays; returns rows added.

        Appends are the only mutation a table supports: new rows receive the
        next dense row ids, existing rows never move, and every derived
        structure is maintained *incrementally* — cached column arrays are
        extended with the coerced delta, and cached
        :class:`~repro.db.index.GroupIndex` objects are replaced by
        :meth:`~repro.db.index.GroupIndex.extended_by` copies that factorise
        only the delta.  Cost is therefore proportional to the delta (plus
        O(n) array concatenation), not to the table.

        Appends are single-writer: callers must quiesce concurrent queries
        against this table while appending (the serving layer appends
        between batches).  Readers holding pre-append index objects keep a
        consistent pre-append view.
        """
        return self._apply_append(self._normalise_delta(columns))

    def _normalise_delta(
        self, columns: Mapping[str, Sequence[Any]]
    ) -> Dict[str, List[Any]]:
        """Validate an append delta against the schema and copy it once.

        The returned lists are owned by the append machinery (the sharded
        tail reuses them for its own cache maintenance without re-copying);
        copying up front also means a failure during the append can never
        leave the table with ragged columns.
        """
        missing = [c for c in self.schema.column_names if c not in columns]
        if missing:
            raise SchemaMismatchError(f"missing data for columns {missing}")
        extra = [c for c in columns if not self.schema.has_column(c)]
        if extra:
            raise SchemaMismatchError(f"data provided for unknown columns {extra}")
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaMismatchError(
                f"appended columns have inconsistent lengths: {lengths}"
            )
        return {name: list(values) for name, values in columns.items()}

    def _apply_append(self, delta: Dict[str, List[Any]]) -> int:
        """Extend the columns with an already-normalised delta."""
        delta_rows = len(next(iter(delta.values()))) if delta else 0
        if delta_rows == 0:
            return 0
        for name, values in delta.items():
            self._cells(name).extend(values)
        previous_rows = self._num_rows
        self._num_rows += delta_rows
        self._extend_caches(delta, previous_rows)
        self._data_generation += 1
        registry = _metrics.get_registry()
        if registry.enabled:
            registry.counter("repro_table_appends_total", table=self.name).inc()
            registry.counter(
                "repro_table_rows_appended_total", table=self.name
            ).inc(delta_rows)
            registry.gauge("repro_table_rows", table=self.name).set(self._num_rows)
            registry.gauge(
                "repro_table_data_generation", table=self.name
            ).set(self._data_generation)
        return delta_rows

    def append_rows(self, rows: Sequence[Mapping[str, Any]]) -> int:
        """Append a delta of dict rows (validated against the schema)."""
        if not rows:
            return 0
        self.schema.validate_rows(rows)
        return self.append_columns(
            {
                column_name: [row[column_name] for row in rows]
                for column_name in self.schema.column_names
            }
        )

    def _extend_caches(
        self, delta: Mapping[str, List[Any]], previous_rows: int
    ) -> None:
        """Delta-maintain cached arrays and group indexes after an append."""
        delta_arrays: Dict[str, np.ndarray] = {}

        def delta_array(column: str) -> np.ndarray:
            array = delta_arrays.get(column)
            if array is None:
                array = coerce_cells_to_array(delta[column])
                delta_arrays[column] = array
            return array

        for column in list(self._arrays):
            extended = self._extend_column_array(
                self._arrays[column], delta_array(column), delta[column]
            )
            if extended is None:
                # Mixed kinds across the append boundary: rebuild lazily from
                # the full python values (what a from-scratch table would do).
                del self._arrays[column]
            else:
                extended.setflags(write=False)
                self._arrays[column] = extended

        with self._group_index_lock:
            for key in list(self._group_indexes):
                _allow_hidden, column = key
                self._group_indexes[key] = self._group_indexes[key].extended_by(
                    delta_array(column), lambda column=column: delta[column]
                )

    @staticmethod
    def _extend_column_array(
        cached: np.ndarray, delta: np.ndarray, delta_cells: List[Any]
    ) -> Optional[np.ndarray]:
        """Concatenate a cached column array with its coerced delta.

        Returns ``None`` when the pair cannot be concatenated faithfully
        (e.g. a numeric column receiving string cells, which
        ``np.concatenate`` would silently stringify): the caller then drops
        the cache entry and the next :meth:`Table.column_array` call rebuilds
        from the python values — exactly the array a monolithic rebuild
        would produce.
        """
        if cached.dtype.kind == "O" or delta.dtype.kind == "O":
            if cached.dtype.kind == delta.dtype.kind == "O":
                return np.concatenate([cached, delta])
            return None
        string_kinds = ("U", "S")
        if (cached.dtype.kind in string_kinds) != (delta.dtype.kind in string_kinds):
            return None
        return np.concatenate([cached, delta])

    # -- access ------------------------------------------------------------------
    def _cells(self, column: str) -> List[Any]:
        """The mutable python-value cell list backing ``column``.

        Eagerly-built tables carry their lists from construction; tables
        loaded over arrays (:meth:`from_arrays`) materialise each list
        lazily from the cached array on first access — ``ndarray.tolist``
        yields plain python scalars, exactly the values the original
        ingestion stored.  The returned list is the canonical storage the
        append path extends; callers must copy before exposing it.
        """
        cells = self._data.get(column)
        if cells is None:
            cells = self._arrays[column].tolist()
            self._data[column] = cells
        return cells

    def column_values(self, column: str, allow_hidden: bool = False) -> List[Any]:
        """All values of a column.

        Hidden columns (ground-truth labels) are only readable when
        ``allow_hidden`` is set; the query-evaluation algorithms never set it.
        """
        column_def = self.schema.column(column)
        if column_def.hidden and not allow_hidden:
            raise ColumnNotFoundError(
                column, self.schema.visible_column_names
            )
        return list(self._cells(column))

    def column_array(self, column: str, allow_hidden: bool = False) -> np.ndarray:
        """All values of a column as a cached, read-only NumPy array.

        Existing rows are immutable, so the array is built once per column
        and shared by every caller (batch executors, vectorised group
        statistics, UDF fast paths); appends extend the cached array with
        the coerced delta in place of a rebuild.  Callers must not write to
        it; the write flag is cleared to enforce that.
        """
        column_def = self.schema.column(column)
        if column_def.hidden and not allow_hidden:
            raise ColumnNotFoundError(column, self.schema.visible_column_names)
        array = self._arrays.get(column)
        if array is None:
            # Ragged/sequence-valued or mixed-type cells fall back to an
            # object array preserving the original python values (numpy
            # silently stringifies mixed str/int columns, which would change
            # grouping/equality semantics downstream).
            array = coerce_cells_to_array(self._cells(column))
            array.setflags(write=False)
            self._arrays[column] = array
        return array

    def gather_column(
        self,
        column: str,
        row_ids: Sequence[int],
        allow_hidden: bool = False,
    ) -> np.ndarray:
        """Values of ``column`` at ``row_ids``, as one vectorised gather.

        Semantically identical to ``column_array(column)[row_ids]`` — and
        that is exactly what this base implementation does — but expressed
        as a hook so residency-aware tables
        (:class:`~repro.db.residency.LazyShardedTable`) can serve the gather
        shard-at-a-time, pinning and faulting in one shard's segment at a
        time instead of materialising the whole column.  Row order in the
        result always matches ``row_ids`` order, so the access pattern a
        subclass chooses is invisible to callers.
        """
        ids = np.asarray(row_ids, dtype=np.intp)
        return self.column_array(column, allow_hidden=allow_hidden)[ids]

    def value(self, row_id: int, column: str, allow_hidden: bool = False) -> Any:
        """Value of one cell."""
        column_def = self.schema.column(column)
        if column_def.hidden and not allow_hidden:
            raise ColumnNotFoundError(column, self.schema.visible_column_names)
        self._check_row_id(row_id)
        return self._cells(column)[row_id]

    def row(self, row_id: int, include_hidden: bool = False) -> Dict[str, Any]:
        """A dict view of one row."""
        self._check_row_id(row_id)
        names = (
            self.schema.column_names
            if include_hidden
            else self.schema.visible_column_names
        )
        return {name: self._cells(name)[row_id] for name in names}

    def rows(self, include_hidden: bool = False) -> Iterator[Dict[str, Any]]:
        """Iterate dict views of all rows."""
        for row_id in self.row_ids:
            yield self.row(row_id, include_hidden=include_hidden)

    def distinct(self, column: str, allow_hidden: bool = False) -> List[Any]:
        """Distinct values of a column in first-appearance order."""
        return distinct_values(self.column_values(column, allow_hidden=allow_hidden))

    def num_distinct(self, column: str, allow_hidden: bool = False) -> int:
        """Number of distinct values in a column."""
        return len(self.distinct(column, allow_hidden=allow_hidden))

    # -- derivation ---------------------------------------------------------------
    def select_rows(self, row_ids: Iterable[int], name: Optional[str] = None) -> "Table":
        """A new table containing only ``row_ids`` (re-numbered densely)."""
        ids = list(row_ids)
        for row_id in ids:
            self._check_row_id(row_id)
        columns = {
            column_name: [self._cells(column_name)[i] for i in ids]
            for column_name in self.schema.column_names
        }
        return Table(name=name or f"{self.name}_subset", schema=self.schema, columns=columns)

    def with_column(
        self,
        column: Column,
        values: Sequence[Any],
        name: Optional[str] = None,
    ) -> "Table":
        """A new table with one extra (or replaced) column.

        Used by the virtual-column machinery: the logistic-regression bucket
        id becomes a brand new categorical column.
        """
        if len(values) != self._num_rows:
            raise SchemaMismatchError(
                f"new column {column.name!r} has {len(values)} values for a "
                f"table of {self._num_rows} rows"
            )
        new_columns = {
            column_name: self._cells(column_name)
            for column_name in self.schema.column_names
        }
        new_columns[column.name] = list(values)
        existing = [c for c in self.schema.columns if c.name != column.name]
        return Table(
            name=name or self.name,
            schema=Schema(existing + [column]),
            columns=new_columns,
        )

    def filter(
        self, predicate: Callable[[Dict[str, Any]], bool], include_hidden: bool = False
    ) -> List[int]:
        """Row ids whose (visible) row dict satisfies ``predicate``."""
        matches = []
        for row_id in self.row_ids:
            if predicate(self.row(row_id, include_hidden=include_hidden)):
                matches.append(row_id)
        return matches

    def group_row_ids(self, column: str, allow_hidden: bool = False) -> Dict[Any, List[int]]:
        """Map each distinct value of ``column`` to the row ids holding it.

        This is the reference dict-based grouping; the vectorised
        :class:`~repro.db.index.GroupIndex` is differential-tested against it.
        Hot paths should use :meth:`group_index` instead.
        """
        values = self.column_values(column, allow_hidden=allow_hidden)
        groups: Dict[Any, List[int]] = {}
        for row_id, value in enumerate(values):
            groups.setdefault(value, []).append(row_id)
        return groups

    def group_index(self, column: str, allow_hidden: bool = False) -> "GroupIndex":
        """A shared :class:`~repro.db.index.GroupIndex` over ``column``.

        Built at most once per column and reused by every caller — the
        engine, the Intel-Sample pipeline and the serving layer all group by
        the same cached index instead of re-factorising the column per
        query.  Appends replace the cached object with an incrementally
        extended copy, so the returned index always covers every current
        row.  Hidden-column indexes are cached separately so a
        privileged (``allow_hidden``) access can never leak an index to an
        unprivileged caller.
        """
        from repro.db.index import GroupIndex

        key = (allow_hidden, column)
        index = self._group_indexes.get(key)
        if index is None:
            # Double-checked under a lock: concurrent first-sight queries
            # (the threaded QueryService) must neither duplicate the O(n)
            # factorisation nor double-advance GroupIndex.builds_total,
            # which the benchmark gate holds at one build per column.
            with self._group_index_lock:
                index = self._group_indexes.get(key)
                if index is None:
                    index = GroupIndex(self, column, allow_hidden=allow_hidden)
                    self._group_indexes[key] = index
        return index

    def has_group_index(self, column: str, allow_hidden: bool = False) -> bool:
        """Whether :meth:`group_index` already built an index for ``column``."""
        return (allow_hidden, column) in self._group_indexes

    # -- internal -----------------------------------------------------------------
    def _check_row_id(self, row_id: int) -> None:
        if not 0 <= row_id < self._num_rows:
            raise IndexError(
                f"row id {row_id} out of range for table of {self._num_rows} rows"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, rows={self._num_rows}, columns={self.num_columns})"
