"""A small in-memory column-store table.

The table stores each column as a Python list (values may be heterogeneous —
categorical strings, ints, floats, booleans) and assigns every row a stable
integer ``row id``.  Row ids are what the optimizers, executors and metrics
pass around: the ground-truth "correct result" of a query is a set of row ids,
and so is an approximate result.
"""

from __future__ import annotations

import threading
from itertools import islice
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (index imports table)
    from repro.db.index import GroupIndex

from repro.db.column import Column, ColumnType, distinct_values
from repro.db.errors import ColumnNotFoundError, SchemaMismatchError
from repro.db.schema import Schema


def infer_schema_for_columns(
    columns: Mapping[str, Sequence[Any]],
    column_types: Optional[Mapping[str, ColumnType | str]] = None,
    hidden_columns: Iterable[str] = (),
) -> Schema:
    """Schema for column arrays: explicit types win, else a 100-value peek.

    Shared by :meth:`Table.from_columns` and the sharded ingestion path so
    both infer identically (and any future inference change lands in one
    place).  ``islice`` avoids materialising a full copy of a column just to
    peek at its first values — columns must still be real sequences, since
    the table constructor needs their length.
    """
    hidden = set(hidden_columns)
    column_types = column_types or {}
    column_defs = []
    for column_name, values in columns.items():
        if column_name in column_types:
            ctype = ColumnType(column_types[column_name])
        else:
            from repro.db.column import infer_column_type

            ctype = infer_column_type(list(islice(values, 100)))
        column_defs.append(
            Column(
                name=column_name,
                column_type=ctype,
                hidden=column_name in hidden,
            )
        )
    return Schema(column_defs)


class Table:
    """An immutable-after-construction, row-id addressed table."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        columns: Mapping[str, Sequence[Any]],
    ):
        self.name = name
        self.schema = schema
        missing = [c for c in schema.column_names if c not in columns]
        if missing:
            raise SchemaMismatchError(f"missing data for columns {missing}")
        extra = [c for c in columns if not schema.has_column(c)]
        if extra:
            raise SchemaMismatchError(f"data provided for unknown columns {extra}")
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaMismatchError(
                f"columns have inconsistent lengths: {lengths}"
            )
        self._data: Dict[str, List[Any]] = {
            name: list(values) for name, values in columns.items()
        }
        self._num_rows = next(iter(lengths.values())) if lengths else 0
        self._arrays: Dict[str, np.ndarray] = {}
        self._group_indexes: Dict[tuple, "GroupIndex"] = {}
        self._group_index_lock = threading.Lock()

    # -- construction helpers -------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        name: str,
        rows: Sequence[Mapping[str, Any]],
        schema: Optional[Schema] = None,
    ) -> "Table":
        """Build a table from a list of dict rows, inferring the schema if needed."""
        if schema is None:
            schema = Schema.infer(rows)
        schema.validate_rows(rows)
        columns: Dict[str, List[Any]] = {
            column_name: [row[column_name] for row in rows]
            for column_name in schema.column_names
        }
        return cls(name=name, schema=schema, columns=columns)

    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: Mapping[str, Sequence[Any]],
        column_types: Optional[Mapping[str, ColumnType | str]] = None,
        hidden_columns: Iterable[str] = (),
    ) -> "Table":
        """Build a table directly from column arrays."""
        schema = infer_schema_for_columns(
            columns, column_types=column_types, hidden_columns=hidden_columns
        )
        return cls(name=name, schema=schema, columns=columns)

    # -- shape ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._num_rows

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self.schema)

    @property
    def row_ids(self) -> range:
        """All row ids (0-based, dense)."""
        return range(self._num_rows)

    def __len__(self) -> int:
        return self._num_rows

    def shard_signature(self) -> tuple:
        """Hashable shard-layout token for cache keying.

        A monolithic table is its own single shard; sharded subclasses
        (:class:`~repro.db.sharding.ShardedTable`) report their boundaries.
        Serving caches fold this into their keys so statistics computed
        against one layout generation are never replayed against another.
        """
        return ("monolithic", self._num_rows)

    # -- access ------------------------------------------------------------------
    def column_values(self, column: str, allow_hidden: bool = False) -> List[Any]:
        """All values of a column.

        Hidden columns (ground-truth labels) are only readable when
        ``allow_hidden`` is set; the query-evaluation algorithms never set it.
        """
        column_def = self.schema.column(column)
        if column_def.hidden and not allow_hidden:
            raise ColumnNotFoundError(
                column, self.schema.visible_column_names
            )
        return list(self._data[column])

    def column_array(self, column: str, allow_hidden: bool = False) -> np.ndarray:
        """All values of a column as a cached, read-only NumPy array.

        Tables are immutable after construction, so the array is built once
        per column and shared by every caller (batch executors, vectorised
        group statistics, UDF fast paths).  Callers must not write to it;
        the write flag is cleared to enforce that.
        """
        column_def = self.schema.column(column)
        if column_def.hidden and not allow_hidden:
            raise ColumnNotFoundError(column, self.schema.visible_column_names)
        array = self._arrays.get(column)
        if array is None:
            values = self._data[column]
            try:
                array = np.asarray(values)
                if array.ndim != 1 or len(array) != len(values):
                    raise ValueError("sequence-valued cells")
                if array.dtype.kind in ("U", "S") and not all(
                    isinstance(value, str) for value in values
                ):
                    # numpy silently stringifies mixed str/int columns, which
                    # would change grouping/equality semantics downstream.
                    raise ValueError("mixed-type cells")
            except ValueError:
                # Ragged/sequence-valued or mixed-type cells: fall back to an
                # object array that preserves the original python values.
                array = np.empty(len(values), dtype=object)
                array[:] = values
            array.setflags(write=False)
            self._arrays[column] = array
        return array

    def value(self, row_id: int, column: str, allow_hidden: bool = False) -> Any:
        """Value of one cell."""
        column_def = self.schema.column(column)
        if column_def.hidden and not allow_hidden:
            raise ColumnNotFoundError(column, self.schema.visible_column_names)
        self._check_row_id(row_id)
        return self._data[column][row_id]

    def row(self, row_id: int, include_hidden: bool = False) -> Dict[str, Any]:
        """A dict view of one row."""
        self._check_row_id(row_id)
        names = (
            self.schema.column_names
            if include_hidden
            else self.schema.visible_column_names
        )
        return {name: self._data[name][row_id] for name in names}

    def rows(self, include_hidden: bool = False) -> Iterator[Dict[str, Any]]:
        """Iterate dict views of all rows."""
        for row_id in self.row_ids:
            yield self.row(row_id, include_hidden=include_hidden)

    def distinct(self, column: str, allow_hidden: bool = False) -> List[Any]:
        """Distinct values of a column in first-appearance order."""
        return distinct_values(self.column_values(column, allow_hidden=allow_hidden))

    def num_distinct(self, column: str, allow_hidden: bool = False) -> int:
        """Number of distinct values in a column."""
        return len(self.distinct(column, allow_hidden=allow_hidden))

    # -- derivation ---------------------------------------------------------------
    def select_rows(self, row_ids: Iterable[int], name: Optional[str] = None) -> "Table":
        """A new table containing only ``row_ids`` (re-numbered densely)."""
        ids = list(row_ids)
        for row_id in ids:
            self._check_row_id(row_id)
        columns = {
            column_name: [values[i] for i in ids]
            for column_name, values in self._data.items()
        }
        return Table(name=name or f"{self.name}_subset", schema=self.schema, columns=columns)

    def with_column(
        self,
        column: Column,
        values: Sequence[Any],
        name: Optional[str] = None,
    ) -> "Table":
        """A new table with one extra (or replaced) column.

        Used by the virtual-column machinery: the logistic-regression bucket
        id becomes a brand new categorical column.
        """
        if len(values) != self._num_rows:
            raise SchemaMismatchError(
                f"new column {column.name!r} has {len(values)} values for a "
                f"table of {self._num_rows} rows"
            )
        new_columns = dict(self._data)
        new_columns[column.name] = list(values)
        existing = [c for c in self.schema.columns if c.name != column.name]
        return Table(
            name=name or self.name,
            schema=Schema(existing + [column]),
            columns=new_columns,
        )

    def filter(
        self, predicate: Callable[[Dict[str, Any]], bool], include_hidden: bool = False
    ) -> List[int]:
        """Row ids whose (visible) row dict satisfies ``predicate``."""
        matches = []
        for row_id in self.row_ids:
            if predicate(self.row(row_id, include_hidden=include_hidden)):
                matches.append(row_id)
        return matches

    def group_row_ids(self, column: str, allow_hidden: bool = False) -> Dict[Any, List[int]]:
        """Map each distinct value of ``column`` to the row ids holding it.

        This is the reference dict-based grouping; the vectorised
        :class:`~repro.db.index.GroupIndex` is differential-tested against it.
        Hot paths should use :meth:`group_index` instead.
        """
        values = self.column_values(column, allow_hidden=allow_hidden)
        groups: Dict[Any, List[int]] = {}
        for row_id, value in enumerate(values):
            groups.setdefault(value, []).append(row_id)
        return groups

    def group_index(self, column: str, allow_hidden: bool = False) -> "GroupIndex":
        """A shared :class:`~repro.db.index.GroupIndex` over ``column``.

        Built at most once per column and reused by every caller — the
        engine, the Intel-Sample pipeline and the serving layer all group by
        the same cached index instead of re-factorising the column per
        query.  Tables are immutable after construction, so the index can
        never go stale.  Hidden-column indexes are cached separately so a
        privileged (``allow_hidden``) access can never leak an index to an
        unprivileged caller.
        """
        from repro.db.index import GroupIndex

        key = (allow_hidden, column)
        index = self._group_indexes.get(key)
        if index is None:
            # Double-checked under a lock: concurrent first-sight queries
            # (the threaded QueryService) must neither duplicate the O(n)
            # factorisation nor double-advance GroupIndex.builds_total,
            # which the benchmark gate holds at one build per column.
            with self._group_index_lock:
                index = self._group_indexes.get(key)
                if index is None:
                    index = GroupIndex(self, column, allow_hidden=allow_hidden)
                    self._group_indexes[key] = index
        return index

    def has_group_index(self, column: str, allow_hidden: bool = False) -> bool:
        """Whether :meth:`group_index` already built an index for ``column``."""
        return (allow_hidden, column) in self._group_indexes

    # -- internal -----------------------------------------------------------------
    def _check_row_id(self, row_id: int) -> None:
        if not 0 <= row_id < self._num_rows:
            raise IndexError(
                f"row id {row_id} out of range for table of {self._num_rows} rows"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, rows={self._num_rows}, columns={self.num_columns})"
