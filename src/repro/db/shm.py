"""Shared-memory export of table columns for process-pool workers.

The process executor (:mod:`repro.core.procpool`) evaluates UDFs in worker
processes.  Shipping 1M-row column arrays through pickle per task would erase
the parallel win, so sealed columns are placed in
:mod:`multiprocessing.shared_memory` segments once and workers attach
zero-copy numpy views — attach-once per worker, reused across tasks.

Lifecycle
---------

*Parent side* — :func:`export_table_spans` lazily creates one segment per
``(shard, column)`` and caches it keyed by the shard's ``data_generation``.
Sealed shards never change generation, so a warm serving process exports each
shard column exactly once; when a mutable tail shard advances its generation
the stale segments are unlinked and re-exported.  Segments are reclaimed when
the owning shard is garbage-collected (a ``weakref.finalize`` hook), when
:func:`release_exports` is called, and unconditionally at interpreter exit.

*Worker side* — :func:`attach_array` caches attachments by segment name for
the life of the worker process.  Workers are spawned, so they share the
parent's ``resource_tracker`` process: the attach-time re-registration is
idempotent there and the parent's single ``unlink`` balances it, which is why
workers must *not* unregister or unlink anything themselves.

Only fixed-width dtypes can live in shared memory.  An ``object``-dtype
column raises :class:`UnshareableColumnError`; the process executor treats
that as "fall back to in-process evaluation".
"""

from __future__ import annotations

import atexit
import threading
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.errors import DatabaseError
from repro.db.table import Table
from repro.resilience import faults as _faults


class UnshareableColumnError(DatabaseError):
    """A column's dtype cannot be placed in shared memory."""

    def __init__(self, column: str, dtype: object):
        self.column = column
        self.dtype = dtype
        super().__init__(
            f"column {column!r} has dtype {dtype} which cannot live in shared "
            "memory (object arrays have no fixed-width buffer); process-pool "
            "execution falls back to in-process evaluation"
        )


@dataclass(frozen=True)
class ColumnBlock:
    """One column of one row span, addressable by workers without pickle.

    Two transports share this handle: a named shared-memory segment
    (``shm_name``), or — for columns already durable on disk — the direct
    coordinates of a committed segment file (``path``/``offset``), which
    workers ``np.memmap`` themselves.  Exactly one of ``shm_name`` and
    ``path`` is set; the direct-attach form skips the shared-memory export
    copy entirely (memmaps are already zero-copy).
    """

    shm_name: Optional[str]
    #: ``numpy.dtype.str`` — fixed-width, endianness included.
    dtype: str
    length: int
    #: Absolute path of the durable segment file (direct-attach form).
    path: Optional[str] = None
    #: Byte offset of the payload inside the segment file.
    offset: int = 0


@dataclass(frozen=True)
class SpanExport:
    """Shared-memory handles for one contiguous row span ``[start, stop)``.

    ``columns`` maps column name → :class:`ColumnBlock`; row ``row_id`` of
    the owning table lives at local position ``row_id - start`` in every
    block.  The whole object pickles into worker task payloads by name —
    no array bytes cross the process boundary.
    """

    start: int
    stop: int
    columns: Dict[str, ColumnBlock]


@dataclass
class _OwnerExports:
    """Live segments for one table/shard object, keyed by column name."""

    generation: int
    blocks: Dict[str, Tuple[shared_memory.SharedMemory, ColumnBlock]] = field(
        default_factory=dict
    )
    finalizer: Optional[weakref.finalize] = None


#: id(owner) → its exported segments.  Identity keys are safe: the finalizer
#: removes the entry when the owner dies, before its id can be reused.
_EXPORTS: Dict[int, _OwnerExports] = {}
_LOCK = threading.Lock()


def _close_blocks(
    blocks: Dict[str, Tuple[shared_memory.SharedMemory, ColumnBlock]],
) -> int:
    closed = 0
    for shm, _ in blocks.values():
        try:
            shm.close()
            shm.unlink()
        except Exception:  # pragma: no cover - already-unlinked races at exit
            pass
        closed += 1
    return closed


def _release_owner(owner_id: int) -> int:
    with _LOCK:
        entry = _EXPORTS.pop(owner_id, None)
    if entry is None:
        return 0
    if entry.finalizer is not None:
        entry.finalizer.detach()
    return _close_blocks(entry.blocks)


def release_exports(table: Optional[Table] = None) -> int:
    """Unlink exported segments (all of them, or one table's shards).

    Returns the number of segments released.  Registered with ``atexit`` so a
    crashing benchmark cannot leak ``/dev/shm`` space, but long-lived services
    replacing a table should call it explicitly rather than wait for GC.
    """
    if table is None:
        with _LOCK:
            owner_ids = list(_EXPORTS.keys())
    else:
        shards = getattr(table, "shards", None) or [table]
        owner_ids = [id(shard) for shard in shards]
    return sum(_release_owner(owner_id) for owner_id in owner_ids)


atexit.register(release_exports)


def _export_column(owner: Table, column: str) -> ColumnBlock:
    """The shared block for one column of ``owner``, creating it if needed."""
    generation = owner.data_generation
    with _LOCK:
        entry = _EXPORTS.get(id(owner))
        if entry is None:
            entry = _OwnerExports(generation=generation)
            entry.finalizer = weakref.finalize(owner, _release_owner, id(owner))
            _EXPORTS[id(owner)] = entry
        elif entry.generation != generation:
            # The owner mutated (tail shard append): every cached segment is
            # stale for the new generation.  Unlink and start over.
            _close_blocks(entry.blocks)
            entry.blocks = {}
            entry.generation = generation
        cached = entry.blocks.get(column)
        if cached is not None:
            return cached[1]
    # Fault-injection site ``shm_export`` (parent side): an ``error`` rule
    # models /dev/shm exhaustion at segment-creation time.
    _faults.maybe_fire(_faults.active_plan(), "shm_export")
    # Build outside the lock: column_array may materialise a concatenation.
    array = owner.column_array(column, allow_hidden=True)
    if array.dtype.hasobject:
        raise UnshareableColumnError(column, array.dtype)
    array = np.ascontiguousarray(array)
    # SharedMemory refuses size=0; an empty span still gets a (tiny) segment
    # so workers can attach unconditionally.
    shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    view[:] = array
    block = ColumnBlock(shm_name=shm.name, dtype=array.dtype.str, length=len(array))
    with _LOCK:
        entry = _EXPORTS.get(id(owner))
        if entry is None or entry.generation != generation:
            # Lost a race with release/mutation: don't cache a segment nobody
            # will unlink.
            shm.close()
            shm.unlink()
            raise UnshareableColumnError(column, "owner released during export")
        raced = entry.blocks.get(column)
        if raced is not None:
            shm.close()
            shm.unlink()
            return raced[1]
        entry.blocks[column] = (shm, block)
    return block


def export_table_spans(table: Table, columns: Sequence[str]) -> Tuple[SpanExport, ...]:
    """Export ``columns`` of every span of ``table`` to shared memory.

    For a :class:`~repro.db.sharding.ShardedTable` the spans are its shard
    spans (one :class:`SpanExport` per shard, in order); a monolithic table
    exports as a single span ``[0, num_rows)``.  Idempotent and cheap when
    warm: already-exported ``(shard, column)`` pairs are returned from cache.

    Raises :class:`UnshareableColumnError` if any requested column has an
    object dtype.
    """
    shards: Optional[List[Table]] = getattr(table, "shards", None)
    if shards:
        spans = table.shard_spans()  # type: ignore[attr-defined]
    else:
        shards = [table]
        spans = [(0, table.num_rows)]
    exports = []
    for shard, (start, stop) in zip(shards, spans):
        blocks = {column: _export_column(shard, column) for column in columns}
        exports.append(SpanExport(start=start, stop=stop, columns=blocks))
    return tuple(exports)


def exported_segment_count() -> int:
    """How many shared-memory segments this process currently owns."""
    with _LOCK:
        return sum(len(entry.blocks) for entry in _EXPORTS.values())


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Segment name → (segment, read-only view).  The segment object must stay
#: referenced as long as the view: its buffer dies with it.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}

#: (path, offset) key → read-only memmap of a durable segment payload.
#: Committed segment files are immutable at a given path (checkpoints are
#: generation-qualified), so a warm worker's cached map never goes stale.
_ATTACHED_FILES: Dict[str, np.ndarray] = {}


def attach_array(block: ColumnBlock) -> np.ndarray:
    """Attach (once per process) to ``block`` and return a read-only view.

    Called in worker processes; the attachment cache lives for the worker's
    lifetime, so a warm worker touches ``/dev/shm`` (or re-maps a segment
    file) only on the first task that references a block.  Workers never
    unlink — the parent owns shared-memory segments and shares our resource
    tracker (spawn inherits it), so cleanup is entirely the parent's job;
    file maps need no cleanup beyond process exit.
    """
    if block.path is not None:
        key = f"{block.path}@{block.offset}"
        mapped = _ATTACHED_FILES.get(key)
        if mapped is None:
            # Fault-injection site ``segment_map`` (worker side): an
            # ``error`` rule models a mapping failure under the worker; the
            # executor classifies it like a vanished shm segment and falls
            # back bitwise.
            _faults.maybe_fire(_faults.active_plan(), "segment_map")
            mapped = np.memmap(
                block.path,
                dtype=np.dtype(block.dtype),
                mode="r",
                offset=block.offset,
                shape=(block.length,),
            )
            _ATTACHED_FILES[key] = mapped
        return mapped
    entry = _ATTACHED.get(block.shm_name)
    if entry is None:
        # Fault-injection site ``shm_attach`` (worker side — the process
        # executor re-activates the shipped plan around its task body): an
        # ``error`` rule models a segment that vanished under the worker.
        _faults.maybe_fire(_faults.active_plan(), "shm_attach")
        shm = shared_memory.SharedMemory(name=block.shm_name)
        array = np.ndarray((block.length,), dtype=np.dtype(block.dtype), buffer=shm.buf)
        array.setflags(write=False)
        _ATTACHED[block.shm_name] = entry = (shm, array)
    return entry[1]
