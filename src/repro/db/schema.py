"""Table schemas."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence

from repro.db.column import Column, ColumnType, infer_column_type
from repro.db.errors import ColumnNotFoundError, SchemaMismatchError


class Schema:
    """An ordered collection of :class:`~repro.db.column.Column` definitions."""

    def __init__(self, columns: Iterable[Column]):
        self._columns: List[Column] = list(columns)
        names = [c.name for c in self._columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaMismatchError(
                f"duplicate column names in schema: {sorted(duplicates)}"
            )
        self._by_name: Dict[str, Column] = {c.name: c for c in self._columns}

    # -- construction helpers -------------------------------------------------
    @classmethod
    def from_types(cls, **column_types: ColumnType | str) -> "Schema":
        """Build a schema from ``name=type`` keyword pairs."""
        return cls(
            Column(name=name, column_type=ColumnType(ctype))
            for name, ctype in column_types.items()
        )

    @classmethod
    def infer(cls, rows: Sequence[Mapping[str, Any]]) -> "Schema":
        """Infer a schema from a non-empty sequence of dict rows."""
        if not rows:
            raise SchemaMismatchError("cannot infer a schema from zero rows")
        names = list(rows[0].keys())
        columns = []
        for name in names:
            values = [row.get(name) for row in rows[: min(len(rows), 100)]]
            columns.append(Column(name=name, column_type=infer_column_type(values)))
        return cls(columns)

    # -- lookup ----------------------------------------------------------------
    @property
    def column_names(self) -> List[str]:
        """Names of all columns, in schema order."""
        return [c.name for c in self._columns]

    @property
    def columns(self) -> List[Column]:
        """All column definitions, in schema order."""
        return list(self._columns)

    @property
    def visible_column_names(self) -> List[str]:
        """Names of columns not marked hidden."""
        return [c.name for c in self._columns if not c.hidden]

    def column(self, name: str) -> Column:
        """Look up a column by name, raising :class:`ColumnNotFoundError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ColumnNotFoundError(name, self.column_names) from None

    def has_column(self, name: str) -> bool:
        """Whether ``name`` is a column of this schema."""
        return name in self._by_name

    def categorical_columns(self, include_hidden: bool = False) -> List[Column]:
        """Columns eligible to act as the correlated attribute ``A``."""
        return [
            c
            for c in self._columns
            if c.is_categorical and (include_hidden or not c.hidden)
        ]

    def numeric_columns(self, include_hidden: bool = False) -> List[Column]:
        """Columns eligible to act as logistic-regression features."""
        return [
            c
            for c in self._columns
            if c.is_numeric and (include_hidden or not c.hidden)
        ]

    # -- validation --------------------------------------------------------------
    def validate_row(self, row: Mapping[str, Any]) -> None:
        """Check a dict row against the schema."""
        missing = [n for n in self.column_names if n not in row]
        if missing:
            raise SchemaMismatchError(f"row is missing columns {missing}")
        extra = [n for n in row if n not in self._by_name]
        if extra:
            raise SchemaMismatchError(f"row has unknown columns {extra}")
        for name, value in row.items():
            self._by_name[name].validate_value(value)

    def validate_rows(self, rows: Sequence[Mapping[str, Any]]) -> None:
        """Check many dict rows against the schema in one pass.

        Equivalent to calling :meth:`validate_row` on every row but
        restructured column-wise: key sets are compared once per row, and
        value validation only visits columns whose type actually constrains
        values (numeric/boolean) — categorical and text columns accept
        anything, so they are skipped entirely instead of per cell.
        """
        expected = set(self.column_names)
        for row in rows:
            if set(row.keys()) != expected:
                # Re-raise through the per-row path for its precise message.
                self.validate_row(row)
        for column in self._columns:
            if column.column_type in (ColumnType.NUMERIC, ColumnType.BOOLEAN):
                name = column.name
                validate = column.validate_value
                for row in rows:
                    validate(row[name])

    # -- dunder ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._by_name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return [
            (c.name, c.column_type, c.hidden) for c in self._columns
        ] == [(c.name, c.column_type, c.hidden) for c in other._columns]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{c.name}:{c.column_type}" for c in self._columns)
        return f"Schema({cols})"
