"""Horizontal sharding: one logical table backed by contiguous row-range shards.

:class:`ShardedTable` partitions a table's rows into contiguous shards, each a
plain :class:`~repro.db.table.Table` over its own row range.  Global row ids
are the concatenation order — row ``i`` of shard ``s`` is global row
``offsets[s] + i`` — so a sharded table is observably identical to the
monolithic table holding the same rows: every accessor (``column_values``,
``column_array``, ``row``, ``group_row_ids``...) returns exactly what the
unsharded equivalent would.

What sharding buys:

* **chunked ingestion** — ``from_columns``/``from_rows`` slice whole columns
  into shard ranges (C-level slicing, no per-row python loop per shard);
* **per-shard group indexes** — :meth:`ShardedTable.group_index` builds one
  :class:`~repro.db.index.GroupIndex` per shard (in parallel when the table
  was given ``max_workers``) and merges them into a
  :class:`~repro.db.index.MergedGroupIndex` whose codes/row arrays/label
  counts are *exact* concatenations, pinned equal to the unsharded index by
  property tests;
* **parallel execution** — the shard boundaries give
  :class:`~repro.core.parallel.ParallelBatchExecutor` natural work partitions
  whose results are bitwise independent of the partition.

Statistics merge exactly because everything downstream is a count: per-shard
sample outcomes and selectivity models recombine through
``SampleOutcome.merge_shards`` / ``SelectivityModel.merge_shards`` with no
approximation.
"""

from __future__ import annotations

import threading
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.index import MergedGroupIndex

from repro.db.column import Column, ColumnType
from repro.db.errors import SchemaMismatchError
from repro.db.schema import Schema
from repro.db.table import Table, infer_schema_for_columns


def shard_bounds(
    total_rows: int,
    num_shards: Optional[int] = None,
    shard_rows: Optional[int] = None,
) -> Tuple[int, ...]:
    """Contiguous shard boundaries ``(0, ..., total_rows)`` for a row count.

    Exactly one of ``num_shards`` (evenly sized shards, remainder spread) or
    ``shard_rows`` (fixed rows per shard, last shard short) must be given.
    """
    if total_rows < 0:
        raise ValueError(f"total_rows must be non-negative, got {total_rows}")
    if (num_shards is None) == (shard_rows is None):
        raise ValueError("specify exactly one of num_shards or shard_rows")
    if shard_rows is not None:
        if shard_rows < 1:
            raise ValueError(f"shard_rows must be positive, got {shard_rows}")
        cuts = list(range(0, total_rows, shard_rows)) + [total_rows]
        if len(cuts) == 1:  # empty table
            cuts = [0, 0]
        return tuple(cuts)
    if num_shards is None or num_shards < 1:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    return tuple(round(i * total_rows / num_shards) for i in range(num_shards + 1))


class ShardedTable(Table):
    """A :class:`Table` whose rows live in contiguous row-range shards.

    Construct through :meth:`from_table`, :meth:`from_columns` or
    :meth:`from_rows`.  The sharded table satisfies the full ``Table``
    contract (it *is* one), so every strategy, executor and serving component
    accepts it unchanged; components that understand sharding
    (``MergedGroupIndex``, ``ParallelBatchExecutor``) discover the layout via
    :meth:`shard_signature` / :attr:`shard_offsets` and exploit it.

    ``max_workers`` bounds the threads used for lazy per-shard index builds
    (``None`` or ``1`` builds serially).

    Appends flow into a **mutable tail**: :meth:`append_columns` /
    :meth:`append_rows` extend the last shard in place (delta-maintaining
    its caches and the merged indexes), and once the tail exceeds
    ``tail_shard_rows`` it is *sealed* — re-chunked into fixed-size shards
    with a fresh, small tail — so the layout stays balanced under sustained
    churn without ever rewriting sealed shards.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        shards: Sequence[Table],
        max_workers: Optional[int] = None,
        tail_shard_rows: Optional[int] = None,
    ):
        # Deliberately does NOT call Table.__init__: the shards hold the data
        # and every data accessor is overridden to route or concatenate.
        if not shards:
            raise ValueError("a ShardedTable needs at least one shard")
        if tail_shard_rows is not None and tail_shard_rows < 1:
            raise ValueError(
                f"tail_shard_rows must be positive, got {tail_shard_rows}"
            )
        self.name = name
        self.schema = schema
        self.max_workers = max_workers
        self._shards: List[Table] = list(shards)
        self._set_layout()
        #: Rows the mutable tail may hold before it is sealed and re-chunked;
        #: defaults to the largest shard of the initial layout.
        self.tail_shard_rows = tail_shard_rows or max(
            (shard.num_rows for shard in self._shards), default=1
        ) or 1
        self._data_generation = 0
        self._arrays: Dict[str, np.ndarray] = {}
        self._group_indexes: Dict[tuple, "MergedGroupIndex"] = {}
        self._group_index_lock = threading.Lock()

    def _set_layout(self) -> None:
        """Recompute offsets from the current shard sizes."""
        sizes = [shard.num_rows for shard in self._shards]
        self._offsets = tuple(
            int(n) for n in np.concatenate([[0], np.cumsum(sizes)])
        )
        self._num_rows = self._offsets[-1]
        self._offset_array = np.asarray(self._offsets, dtype=np.intp)

    # -- construction helpers -------------------------------------------------
    @classmethod
    def from_table(
        cls,
        table: Table,
        num_shards: Optional[int] = None,
        shard_rows: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> "ShardedTable":
        """Shard an existing table (same name, schema and row order)."""
        columns = {
            column_name: table.column_values(column_name, allow_hidden=True)
            for column_name in table.schema.column_names
        }
        return cls._from_schema_and_columns(
            table.name, table.schema, columns,
            num_shards=num_shards, shard_rows=shard_rows, max_workers=max_workers,
        )

    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: Mapping[str, Sequence[Any]],
        column_types: Optional[Mapping[str, ColumnType | str]] = None,
        hidden_columns: Iterable[str] = (),
        num_shards: Optional[int] = None,
        shard_rows: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> "ShardedTable":
        """Chunked column ingestion: infer the schema once, slice per shard.

        Types are inferred exactly as :meth:`Table.from_columns` does (one
        shared :func:`~repro.db.table.infer_schema_for_columns` call); each
        shard then receives C-level slices of the full columns — no per-row
        python loop anywhere.
        """
        schema = infer_schema_for_columns(
            columns, column_types=column_types, hidden_columns=hidden_columns
        )
        return cls._from_schema_and_columns(
            name, schema, columns,
            num_shards=num_shards, shard_rows=shard_rows, max_workers=max_workers,
        )

    @classmethod
    def from_rows(
        cls,
        name: str,
        rows: Sequence[Mapping[str, Any]],
        schema: Optional[Schema] = None,
        num_shards: Optional[int] = None,
        shard_rows: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> "ShardedTable":
        """Build a sharded table from dict rows (one transpose, then slices)."""
        if schema is None:
            schema = Schema.infer(rows)
        schema.validate_rows(rows)
        columns: Dict[str, List[Any]] = {
            column_name: [row[column_name] for row in rows]
            for column_name in schema.column_names
        }
        return cls._from_schema_and_columns(
            name, schema, columns,
            num_shards=num_shards, shard_rows=shard_rows, max_workers=max_workers,
        )

    @classmethod
    def _from_schema_and_columns(
        cls,
        name: str,
        schema: Schema,
        columns: Mapping[str, Sequence[Any]],
        num_shards: Optional[int] = None,
        shard_rows: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> "ShardedTable":
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise SchemaMismatchError(
                f"columns have inconsistent lengths: "
                f"{ {c: len(v) for c, v in columns.items()} }"
            )
        total = lengths.pop() if lengths else 0
        bounds = shard_bounds(total, num_shards=num_shards, shard_rows=shard_rows)
        shards = [
            Table(
                name=f"{name}#shard{position}",
                schema=schema,
                columns={
                    column_name: values[start:stop]
                    for column_name, values in columns.items()
                },
            )
            for position, (start, stop) in enumerate(zip(bounds, bounds[1:]))
        ]
        return cls(
            name=name,
            schema=schema,
            shards=shards,
            max_workers=max_workers,
            tail_shard_rows=shard_rows,
        )

    # -- layout ---------------------------------------------------------------
    @property
    def shards(self) -> List[Table]:
        """The shard tables in row order."""
        return list(self._shards)

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self._shards)

    @property
    def shard_offsets(self) -> Tuple[int, ...]:
        """Global row-id boundaries ``(0, ..., num_rows)``, one span per shard."""
        return self._offsets

    def shard_spans(self) -> List[Tuple[int, int]]:
        """Per-shard ``(start, stop)`` global row-id ranges."""
        return list(zip(self._offsets, self._offsets[1:]))

    def shard_signature(self) -> Tuple:
        """Hashable shard-layout token (cache generation key).

        Folds :attr:`~repro.db.table.Table.data_generation` alongside the
        boundaries: a tail append may leave the boundary tuple's length
        unchanged, but the generation still tells caches the data moved.
        """
        return ("sharded", self._offsets, self._data_generation)

    def shard_of(self, row_id: int) -> Tuple[int, int]:
        """``(shard position, local row id)`` for a global row id."""
        self._check_row_id(row_id)
        position = int(
            np.searchsorted(self._offset_array, row_id, side="right") - 1
        )
        return position, row_id - self._offsets[position]

    # -- data access (routing / concatenation overrides) ----------------------
    def column_values(self, column: str, allow_hidden: bool = False) -> List[Any]:
        """All values of a column (shards concatenated in row order)."""
        self.schema.column(column)  # existence check (and consistent error)
        values: List[Any] = []
        for shard in self._shards:
            values.extend(shard.column_values(column, allow_hidden=allow_hidden))
        return values

    def column_array(self, column: str, allow_hidden: bool = False) -> np.ndarray:
        """The concatenated, cached, read-only column array.

        Per-shard arrays (each already validated against numpy's silent
        mixed-type stringification) are concatenated once; if the shards
        disagree on dtype kind — a hint the column is mixed-type across shard
        boundaries — the global array falls back to object dtype over the
        original python values, matching what the monolithic table would do.
        """
        array = self._arrays.get(column)
        if array is not None:
            column_def = self.schema.column(column)
            if column_def.hidden and not allow_hidden:
                # Mirror Table.column_array's visibility behaviour.
                from repro.db.errors import ColumnNotFoundError

                raise ColumnNotFoundError(column, self.schema.visible_column_names)
            return array
        parts = [
            shard.column_array(column, allow_hidden=allow_hidden)
            for shard in self._shards
        ]
        kinds = {part.dtype.kind for part in parts if part.size}
        if "O" in kinds:
            # Some shard already fell back to python values; the global
            # array does too (exactly what the monolithic table would do).
            array = self._object_column_array(column, allow_hidden)
        else:
            array = np.concatenate(parts) if parts else np.empty(0)
            if array.dtype.kind in ("U", "S") and not kinds <= {"U", "S"}:
                # np.concatenate stringified a string/non-string kind mix
                # that happened to split cleanly along shard boundaries —
                # the monolithic table's mixed-type check would have gone
                # to object dtype, so the sharded table must as well.
                array = self._object_column_array(column, allow_hidden)
        array.setflags(write=False)
        self._arrays[column] = array
        return array

    def _object_column_array(self, column: str, allow_hidden: bool) -> np.ndarray:
        values = self.column_values(column, allow_hidden=allow_hidden)
        array = np.empty(len(values), dtype=object)
        array[:] = values
        return array

    def value(self, row_id: int, column: str, allow_hidden: bool = False) -> Any:
        """Value of one cell (routed to the owning shard)."""
        position, local = self.shard_of(row_id)
        return self._shards[position].value(local, column, allow_hidden=allow_hidden)

    def row(self, row_id: int, include_hidden: bool = False) -> Dict[str, Any]:
        """A dict view of one row (routed to the owning shard)."""
        position, local = self.shard_of(row_id)
        return self._shards[position].row(local, include_hidden=include_hidden)

    def rows(self, include_hidden: bool = False) -> Iterator[Dict[str, Any]]:
        """Iterate rows across shards in global row order."""
        for shard in self._shards:
            yield from shard.rows(include_hidden=include_hidden)

    def select_rows(
        self, row_ids: Iterable[int], name: Optional[str] = None
    ) -> Table:
        """A new (monolithic) table of ``row_ids``, re-numbered densely."""
        ids = list(row_ids)
        for row_id in ids:
            self._check_row_id(row_id)
        if len(ids) * 4 >= self._num_rows:
            # Large selection: one concatenation pass per column amortises.
            data = {
                column_name: self.column_values(column_name, allow_hidden=True)
                for column_name in self.schema.column_names
            }
            columns = {
                column_name: [values[i] for i in ids]
                for column_name, values in data.items()
            }
        else:
            # Small selection: route each row to its shard instead of
            # materialising every column of the whole table.
            picked = [self.row(row_id, include_hidden=True) for row_id in ids]
            columns = {
                column_name: [row[column_name] for row in picked]
                for column_name in self.schema.column_names
            }
        return Table(
            name=name or f"{self.name}_subset", schema=self.schema, columns=columns
        )

    def with_column(
        self,
        column: Column,
        values: Sequence[Any],
        name: Optional[str] = None,
    ) -> "ShardedTable":
        """A new sharded table with one extra column, split at the same bounds.

        Keeps the shard layout, so virtual-column tables derived from a
        sharded base stay sharded (and keep their parallel execution path).
        """
        if len(values) != self._num_rows:
            raise SchemaMismatchError(
                f"new column {column.name!r} has {len(values)} values for a "
                f"table of {self._num_rows} rows"
            )
        values = list(values)
        new_shards = [
            shard.with_column(column, values[start:stop])
            for shard, (start, stop) in zip(self._shards, self.shard_spans())
        ]
        return ShardedTable(
            name=name or self.name,
            schema=new_shards[0].schema,
            shards=new_shards,
            max_workers=self.max_workers,
            tail_shard_rows=self.tail_shard_rows,
        )

    # -- incremental ingest -----------------------------------------------------
    def append_columns(self, columns: Mapping[str, Sequence[Any]]) -> int:
        """Append a delta of rows into the mutable tail shard.

        The tail shard extends in place (delta-maintaining its own caches),
        the global cached arrays and merged group indexes are extended with
        the same delta, and the tail is sealed and re-chunked once it
        exceeds :attr:`tail_shard_rows`.  Work is proportional to the delta
        (bounded below by one O(n) array concatenation per cached column);
        sealed shards are never rewritten.  Same single-writer contract as
        :meth:`Table.append_columns`.
        """
        tail = self._shards[-1]
        # One normalise/copy, shared: the tail applies the delta and this
        # table reuses the same lists for its own cache maintenance.
        delta = tail._normalise_delta(columns)
        delta_rows = tail._apply_append(delta)
        if delta_rows == 0:
            return 0
        offsets = list(self._offsets)
        offsets[-1] += delta_rows
        self._offsets = tuple(offsets)
        self._num_rows = self._offsets[-1]
        self._offset_array = np.asarray(self._offsets, dtype=np.intp)

        from repro.db.table import coerce_cells_to_array

        delta_arrays: Dict[str, np.ndarray] = {}

        def delta_array(column: str) -> np.ndarray:
            array = delta_arrays.get(column)
            if array is None:
                array = coerce_cells_to_array(delta[column])
                delta_arrays[column] = array
            return array

        for column in list(self._arrays):
            extended = self._extend_column_array(
                self._arrays[column], delta_array(column), delta[column]
            )
            if extended is None:
                del self._arrays[column]
            else:
                extended.setflags(write=False)
                self._arrays[column] = extended

        with self._group_index_lock:
            for key in list(self._group_indexes):
                allow_hidden, column = key
                self._group_indexes[key] = self._group_indexes[key].extended_by(
                    delta_array(column),
                    lambda column=column: delta[column],
                    tail_index=tail.group_index(column, allow_hidden=allow_hidden),
                )

        self._data_generation += 1
        self._maybe_seal_tail()
        return delta_rows

    def _maybe_seal_tail(self) -> None:
        """Seal and re-chunk the tail once it exceeds :attr:`tail_shard_rows`.

        Re-chunking never reorders rows: the oversized tail's columns are
        sliced into fixed-size chunks (the last, possibly short, chunk is
        the new mutable tail), so merged indexes keep their data and only
        learn the new span decomposition via
        :meth:`~repro.db.index.MergedGroupIndex.resharded` — per-new-shard
        indexes are refactorised, but that work is bounded by the tail
        size, never the table.
        """
        limit = self.tail_shard_rows
        tail = self._shards[-1]
        if tail.num_rows <= limit:
            return
        columns = {
            name: tail.column_values(name, allow_hidden=True)
            for name in self.schema.column_names
        }
        bounds = shard_bounds(tail.num_rows, shard_rows=limit)
        base_position = len(self._shards) - 1
        new_shards = [
            Table(
                name=f"{self.name}#shard{base_position + chunk}",
                schema=self.schema,
                columns={
                    name: values[start:stop] for name, values in columns.items()
                },
            )
            for chunk, (start, stop) in enumerate(zip(bounds, bounds[1:]))
        ]
        self._shards[-1:] = new_shards
        self._set_layout()
        with self._group_index_lock:
            for key in list(self._group_indexes):
                allow_hidden, column = key
                shard_indexes = [
                    shard.group_index(column, allow_hidden=allow_hidden)
                    for shard in self._shards
                ]
                self._group_indexes[key] = self._group_indexes[key].resharded(
                    self._offsets, shard_indexes
                )

    # -- group indexes ---------------------------------------------------------
    def group_index(self, column: str, allow_hidden: bool = False):
        """A cached :class:`~repro.db.index.MergedGroupIndex` over ``column``.

        Per-shard indexes are built lazily (in parallel when ``max_workers``
        allows — index factorisation is sort-dominated, which releases the
        GIL) and cached on the shards themselves, then merged exactly.  Same
        double-checked locking and privacy separation as
        :meth:`Table.group_index`.
        """
        from repro.db.index import MergedGroupIndex

        key = (allow_hidden, column)
        index = self._group_indexes.get(key)
        if index is None:
            with self._group_index_lock:
                index = self._group_indexes.get(key)
                if index is None:
                    shard_indexes = self._build_shard_indexes(column, allow_hidden)
                    index = MergedGroupIndex(
                        self, column, shard_indexes, self._offsets
                    )
                    self._group_indexes[key] = index
        return index

    def _build_shard_indexes(self, column: str, allow_hidden: bool):
        workers = min(self.max_workers or 1, len(self._shards))
        if workers > 1:
            from repro.core.parallel import shared_pool

            return list(
                shared_pool(workers).map(
                    lambda shard: shard.group_index(column, allow_hidden=allow_hidden),
                    self._shards,
                )
            )
        return [
            shard.group_index(column, allow_hidden=allow_hidden)
            for shard in self._shards
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedTable({self.name!r}, rows={self._num_rows}, "
            f"columns={self.num_columns}, shards={self.num_shards})"
        )
