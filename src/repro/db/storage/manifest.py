"""The versioned JSON manifest — a table's single durable commit point.

A manifest names everything a generation of a table consists of: the
schema, the shard layout, the ``data_generation``, and one checksum entry
per segment file.  It is written last (after every referenced segment is
already durable) and atomically (temp file → fsync → rename, through the
``manifest_write`` fault site), so the manifest on disk always describes a
complete, consistent generation: a crash mid-checkpoint leaves the
*previous* manifest pointing at the previous generation's still-intact
segments.

The document is a small envelope ``{"crc": ..., "body": {...}}`` where the
CRC covers the canonical (sorted-key, compact) JSON encoding of the body —
a truncated or bit-flipped manifest fails typed
(:class:`~repro.db.errors.CorruptSegmentError`) instead of deserialising
into nonsense, and an unknown ``format_version`` raises
:class:`~repro.db.errors.ManifestVersionError` so a newer on-disk format
is never misread by an older build.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, Optional

from repro.db.errors import CorruptSegmentError, ManifestVersionError
from repro.db.storage.segments import atomic_write_bytes

#: On-disk manifest format version understood by this build.
MANIFEST_VERSION = 1


def _canonical(body: Dict[str, Any]) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


def write_manifest(path: str, body: Dict[str, Any]) -> None:
    """Atomically commit a manifest body (stamps ``format_version``).

    This is *the* commit point of a checkpoint; the ``manifest_write``
    fault site fires mid-write, so an injected torn write leaves the
    previously committed manifest untouched.
    """
    body = dict(body)
    body["format_version"] = MANIFEST_VERSION
    canonical = _canonical(body)
    document = json.dumps(
        {"crc": zlib.crc32(canonical), "body": body}, sort_keys=True, indent=1
    ).encode("utf-8")
    atomic_write_bytes(path, document, site="manifest_write")


def read_manifest(path: str) -> Optional[Dict[str, Any]]:
    """Validate and return the manifest body, or ``None`` when absent.

    Raises :class:`CorruptSegmentError` for unparseable/checksum-failing
    documents and :class:`ManifestVersionError` for format versions this
    build does not understand.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return None
    try:
        document = json.loads(data)
    except ValueError as exc:
        raise CorruptSegmentError(path, f"unparseable manifest: {exc}") from None
    if not isinstance(document, dict) or "body" not in document or "crc" not in document:
        raise CorruptSegmentError(path, "manifest envelope missing crc/body")
    body = document["body"]
    if int(document["crc"]) != zlib.crc32(_canonical(body)):
        raise CorruptSegmentError(path, "manifest checksum mismatch")
    version = body.get("format_version")
    if version != MANIFEST_VERSION:
        raise ManifestVersionError(path, version, MANIFEST_VERSION)
    return body
