"""Durable storage with crash recovery.

Durability & recovery
---------------------
Sealed and tail shards persist as memmapped, per-block-CRC32-checksummed
column segment files (:mod:`repro.db.storage.segments`), committed under a
versioned, checksummed JSON manifest (:mod:`repro.db.storage.manifest`)
that is the *single* commit point of a checkpoint.  Between checkpoints,
appends go through a fsynced write-ahead journal
(:mod:`repro.db.storage.journal`) whose records replay idempotently on
open.  Every write is atomic (temp file → fsync → rename), so a crash at
any injected point — ``manifest_write``, ``segment_write``,
``journal_append``, ``segment_read`` — leaves either the previous durable
generation fully intact or the new one fully committed, never a torn
hybrid.  Corrupt or torn artifacts fail with typed errors
(:class:`~repro.db.errors.CorruptSegmentError`,
:class:`~repro.db.errors.ManifestVersionError`), are quarantined rather
than deleted, and degrade gracefully to rebuild-from-source; everything is
counted in :func:`storage_counters` and surfaced through
``QueryService.stats().storage``.

Typical use::

    store = TableStore("/data/lending_club")
    store.save(table)                       # checkpoint
    store.append(table, delta_columns)      # durable churn (WAL first)
    table, report = store.open(rebuild=build_from_source)
"""

from repro.db.storage.journal import JOURNAL_MAGIC, append_record, read_records
from repro.db.storage.manifest import MANIFEST_VERSION, read_manifest, write_manifest
from repro.db.storage.segments import (
    DEFAULT_BLOCK_BYTES,
    SEGMENT_MAGIC,
    atomic_write_bytes,
    live_memmap_count,
    read_segment,
    write_segment,
)
from repro.db.storage.store import (
    CatalogStore,
    RecoveryReport,
    TableStore,
    reset_storage_counters,
    storage_counters,
)

__all__ = [
    "CatalogStore",
    "DEFAULT_BLOCK_BYTES",
    "JOURNAL_MAGIC",
    "MANIFEST_VERSION",
    "RecoveryReport",
    "SEGMENT_MAGIC",
    "TableStore",
    "append_record",
    "atomic_write_bytes",
    "live_memmap_count",
    "read_manifest",
    "read_records",
    "read_segment",
    "reset_storage_counters",
    "storage_counters",
    "write_manifest",
    "write_segment",
]
