"""Durable table stores: checkpoint, journal, recover.

:class:`TableStore` owns one directory per table::

    <dir>/MANIFEST.json      the single commit point (see ``manifest.py``)
    <dir>/segments/*.seg     checksummed column segments, one per (shard, column)
    <dir>/journal.wal        tail-append write-ahead journal
    <dir>/warm/*.blob        serving-layer warm state (repro.serving.persistence)
    <dir>/quarantine/        corrupt artifacts moved aside, never deleted

:meth:`TableStore.save` is a full checkpoint — every segment is written
crash-safely, the manifest commits the generation, the journal resets.
:meth:`TableStore.append` is the durable churn path — journal first
(fsynced), then apply in memory.  :meth:`TableStore.open` is recovery —
sweep torn temp files, validate the manifest and every segment checksum,
rebuild the table over memmapped arrays, replay the journal's valid
record prefix past the manifest generation.  Corruption anywhere raises a
typed error (:class:`~repro.db.errors.CorruptSegmentError` /
:class:`~repro.db.errors.ManifestVersionError`), quarantines the offending
file, and — when the caller supplies ``rebuild`` — degrades gracefully to
rebuild-from-source.  Every outcome is counted in the module counters
(surfaced through ``repro.obs`` and ``QueryService.stats().storage``).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.residency import ResidencyManager

from repro.db.catalog import Catalog
from repro.db.column import Column, ColumnType
from repro.db.errors import CorruptSegmentError, ManifestVersionError, StorageError
from repro.db.schema import Schema
from repro.db.sharding import ShardedTable
from repro.db.storage import journal as _journal
from repro.db.storage.manifest import read_manifest, write_manifest
from repro.db.storage.segments import read_segment, write_segment
from repro.db.table import Table
from repro.obs import metrics as _metrics

#: Process-wide storage event counters (always on — they count I/O-path
#: events, never query work, so they cannot perturb the bitwise parity
#: gates).  Mirrored into the opt-in registry as
#: ``repro_storage_<name>_total`` while metrics are enabled.
_COUNTERS: Dict[str, int] = {
    "segments_written": 0,
    "segments_loaded": 0,
    "headers_validated": 0,
    "checksum_failures": 0,
    "quarantines": 0,
    "journal_replays": 0,
    "journal_records_replayed": 0,
    "journal_truncations": 0,
    "manifest_commits": 0,
    "rebuilds": 0,
    "temp_files_cleaned": 0,
}
_COUNTERS_LOCK = threading.Lock()


def _count(name: str, amount: int = 1) -> None:
    with _COUNTERS_LOCK:
        _COUNTERS[name] += amount
    registry = _metrics.get_registry()
    if registry.enabled:
        registry.counter(f"repro_storage_{name}_total").inc(amount)


def storage_counters() -> Dict[str, int]:
    """A snapshot of the process-wide storage counters."""
    with _COUNTERS_LOCK:
        return dict(_COUNTERS)


def reset_storage_counters() -> None:
    """Zero the storage counters (test isolation)."""
    with _COUNTERS_LOCK:
        for name in _COUNTERS:
            _COUNTERS[name] = 0


@dataclass
class RecoveryReport:
    """What one :meth:`TableStore.open` found and did."""

    segments_loaded: int = 0
    segments_deferred: int = 0
    journal_records_replayed: int = 0
    journal_tail_truncated: bool = False
    temp_files_cleaned: int = 0
    quarantined: List[str] = field(default_factory=list)
    rebuilt_from_source: bool = False
    rebuild_reason: Optional[str] = None
    generation: int = 0

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict view (stats surfaces, benchmark artifacts)."""
        return {
            "segments_loaded": self.segments_loaded,
            "segments_deferred": self.segments_deferred,
            "journal_records_replayed": self.journal_records_replayed,
            "journal_tail_truncated": self.journal_tail_truncated,
            "temp_files_cleaned": self.temp_files_cleaned,
            "quarantined": list(self.quarantined),
            "rebuilt_from_source": self.rebuilt_from_source,
            "rebuild_reason": self.rebuild_reason,
            "generation": self.generation,
        }


def _safe_dirname(name: str) -> str:
    """A filesystem-safe directory name for a table name."""
    return "".join(
        ch if ch.isalnum() or ch in ("-", "_", ".") else f"_{ord(ch):02x}_"
        for ch in name
    )


class TableStore:
    """Durable storage for one table in one directory."""

    MANIFEST_FILE = "MANIFEST.json"
    JOURNAL_FILE = "journal.wal"
    SEGMENTS_DIR = "segments"
    WARM_DIR = "warm"
    QUARANTINE_DIR = "quarantine"

    def __init__(self, directory: str):
        self.directory = str(directory)

    # -- paths -----------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, self.MANIFEST_FILE)

    @property
    def journal_path(self) -> str:
        return os.path.join(self.directory, self.JOURNAL_FILE)

    @property
    def segments_dir(self) -> str:
        return os.path.join(self.directory, self.SEGMENTS_DIR)

    @property
    def warm_dir(self) -> str:
        return os.path.join(self.directory, self.WARM_DIR)

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.directory, self.QUARANTINE_DIR)

    def exists(self) -> bool:
        """Whether a committed manifest is present."""
        return os.path.exists(self.manifest_path)

    # -- checkpoint ------------------------------------------------------------
    def save(self, table: Table) -> None:
        """Full checkpoint: segments first, manifest commit, journal reset.

        Ordering is the crash-safety argument: every segment write is
        individually atomic, the manifest only ever references segments
        that are already durable, and the journal resets only after the
        manifest committed — a crash at *any* point leaves the previous
        manifest describing the previous (fully intact) generation, plus a
        journal whose generations the new open skips or replays exactly.
        """
        os.makedirs(self.segments_dir, exist_ok=True)
        sharded = isinstance(table, ShardedTable)
        shards: Sequence[Table] = table.shards if sharded else [table]
        column_names = table.schema.column_names
        segments: Dict[str, Dict[str, Any]] = {}
        generation = table.data_generation
        for position, shard in enumerate(shards):
            entries: Dict[str, Any] = {}
            for column_index, column in enumerate(column_names):
                array = shard.column_array(column, allow_hidden=True)
                path = os.path.join(
                    self.segments_dir,
                    # Generation-qualified names: a checkpoint never writes
                    # over the previous generation's files, so a crash
                    # before the manifest commit leaves the old manifest
                    # pointing at old segments that are still bit-perfect.
                    f"seg-g{generation:08d}-{position:04d}-c{column_index:03d}.seg",
                )
                entries[column] = write_segment(path, column, array)
                _count("segments_written")
            segments[str(position)] = entries
        body: Dict[str, Any] = {
            "table": table.name,
            "layout": "sharded" if sharded else "monolithic",
            "schema": [
                [column.name, column.column_type.value, bool(column.hidden)]
                for column in table.schema.columns
            ],
            "data_generation": table.data_generation,
            "num_rows": table.num_rows,
            "segments": segments,
        }
        if sharded:
            body["offsets"] = [int(offset) for offset in table.shard_offsets]
            body["tail_shard_rows"] = int(table.tail_shard_rows)
            body["max_workers"] = table.max_workers
        write_manifest(self.manifest_path, body)
        _count("manifest_commits")
        _journal.truncate(self.journal_path)
        self._drop_unreferenced_segments(segments)

    def _drop_unreferenced_segments(self, segments: Mapping[str, Mapping[str, Any]]) -> None:
        """Remove segment files the committed manifest does not name.

        Safe only *after* a manifest commit (or a fully validated open):
        the previous generation's segments, and orphans from a checkpoint
        that tore before its manifest commit, would otherwise leak forever.
        """
        referenced = {
            entry["file"]
            for per_shard in segments.values()
            for entry in per_shard.values()
        }
        try:
            present = os.listdir(self.segments_dir)
        except FileNotFoundError:  # pragma: no cover - save() just created it
            return
        for filename in present:
            if filename.endswith(".seg") and filename not in referenced:
                os.remove(os.path.join(self.segments_dir, filename))

    # -- durable append ----------------------------------------------------------
    def append(self, table: Table, columns: Mapping[str, Sequence[Any]]) -> int:
        """Write-ahead append: journal the delta durably, then apply it.

        The journal record carries the generation the append will produce
        (``table.data_generation + 1``); recovery replays it through the
        same :meth:`~repro.db.table.Table.append_columns` path, so a crash
        any time after the fsync loses nothing and a crash before it loses
        the whole (unapplied) delta — never half of one.
        """
        # Validate against the schema before journalling, so the journal
        # never holds a record that cannot replay.
        table._normalise_delta(columns)
        os.makedirs(self.directory, exist_ok=True)
        _journal.append_record(self.journal_path, table.data_generation + 1, columns)
        return table.append_columns(columns)

    # -- recovery ----------------------------------------------------------------
    def open(
        self,
        rebuild: Optional[Callable[[], Table]] = None,
        mmap: bool = True,
        residency: Optional["ResidencyManager"] = None,
    ) -> Tuple[Table, RecoveryReport]:
        """Open the last durable generation, replaying the journal tail.

        Torn ``.tmp`` files from interrupted writes are swept first.  Any
        checksum or format failure quarantines the offending file and
        either degrades to ``rebuild()`` (re-checkpointing the fresh table)
        or re-raises the typed error.  The returned report says exactly
        what happened; the module counters aggregate across opens.

        With a :class:`~repro.db.residency.ResidencyManager` the open is
        *lazy*: every segment gets header-only validation (magic + header
        CRC + manifest identity, O(header) not O(payload)) and the table
        comes back as residency-managed stubs whose segments map — with the
        full per-block CRC pass — on first touch.  Without one, the eager
        path validates and maps everything up front, as before.
        """
        report = RecoveryReport()
        report.temp_files_cleaned = self._sweep_temp_files()
        try:
            body = read_manifest(self.manifest_path)
            if body is None:
                if rebuild is None:
                    raise StorageError(
                        f"no manifest at {self.manifest_path}; nothing to open"
                    )
                return self._rebuild(rebuild, report, "missing manifest")
            if residency is not None:
                table = self._load_table_lazy(body, report, residency)
            else:
                table = self._load_table(body, report, mmap=mmap)
            self._replay_journal(table, report)
            report.generation = table.data_generation
            # Everything validated against the committed manifest: orphan
            # segments from a checkpoint that crashed before its manifest
            # commit are now provably garbage.
            self._drop_unreferenced_segments(body["segments"])
            return table, report
        except (CorruptSegmentError, ManifestVersionError) as exc:
            if isinstance(exc, CorruptSegmentError):
                _count("checksum_failures")
            self._quarantine(exc.path, report)
            if rebuild is None:
                raise
            return self._rebuild(rebuild, report, str(exc))

    def _rebuild(
        self,
        rebuild: Callable[[], Table],
        report: RecoveryReport,
        reason: str,
    ) -> Tuple[Table, RecoveryReport]:
        table = rebuild()
        report.rebuilt_from_source = True
        report.rebuild_reason = reason
        report.generation = table.data_generation
        _count("rebuilds")
        self.save(table)
        return table, report

    @staticmethod
    def _schema_from_body(body: Dict[str, Any]) -> Schema:
        return Schema(
            [
                Column(name=name, column_type=ColumnType(ctype), hidden=bool(hidden))
                for name, ctype, hidden in body["schema"]
            ]
        )

    def _load_table(
        self, body: Dict[str, Any], report: RecoveryReport, mmap: bool
    ) -> Table:
        schema = self._schema_from_body(body)
        name = body["table"]
        generation = int(body["data_generation"])
        segments: Mapping[str, Mapping[str, Any]] = body["segments"]
        shard_arrays: List[Dict[str, Any]] = []
        for key in sorted(segments, key=int):
            arrays: Dict[str, Any] = {}
            for column, entry in segments[key].items():
                path = os.path.join(self.segments_dir, entry["file"])
                arrays[column] = read_segment(path, expected=entry, mmap=mmap)
                report.segments_loaded += 1
                _count("segments_loaded")
            shard_arrays.append(arrays)
        if body["layout"] == "monolithic":
            if len(shard_arrays) != 1:
                raise CorruptSegmentError(
                    self.manifest_path,
                    f"monolithic layout with {len(shard_arrays)} shard entries",
                )
            table: Table = Table.from_arrays(
                name, schema, shard_arrays[0], data_generation=generation
            )
        else:
            shards = [
                Table.from_arrays(f"{name}#shard{position}", schema, arrays)
                for position, arrays in enumerate(shard_arrays)
            ]
            table = ShardedTable(
                name,
                schema,
                shards,
                max_workers=body.get("max_workers"),
                tail_shard_rows=body.get("tail_shard_rows"),
            )
            table._data_generation = generation
            offsets = [int(offset) for offset in body["offsets"]]
            if list(table.shard_offsets) != offsets:
                raise CorruptSegmentError(
                    self.manifest_path,
                    f"segment rows give offsets {list(table.shard_offsets)}, "
                    f"manifest committed {offsets}",
                )
        if table.num_rows != int(body["num_rows"]):
            raise CorruptSegmentError(
                self.manifest_path,
                f"segments hold {table.num_rows} rows, manifest committed "
                f"{body['num_rows']}",
            )
        return table

    def _load_table_lazy(
        self,
        body: Dict[str, Any],
        report: RecoveryReport,
        residency: "ResidencyManager",
    ) -> Table:
        """Build residency-managed stubs over header-validated segments.

        O(headers), not O(payload): each segment's magic, header CRC and
        manifest identity are checked now; the payload's per-block CRC pass
        runs at first-touch map time inside the segment handle.  One map
        circuit breaker is shared by the whole table, so repeated map
        failures on any shard degrade the table as a unit.
        """
        from repro.db.residency import (
            LazySegmentTable,
            LazyShardedTable,
            SegmentHandle,
        )
        from repro.db.storage.segments import validate_segment_header
        from repro.resilience.breaker import CircuitBreaker

        schema = self._schema_from_body(body)
        name = body["table"]
        generation = int(body["data_generation"])
        segments: Mapping[str, Mapping[str, Any]] = body["segments"]
        breaker = CircuitBreaker(failure_threshold=3, recovery_time_s=60.0)
        shard_handles: List[Dict[str, SegmentHandle]] = []
        shard_rows: List[int] = []
        for key in sorted(segments, key=int):
            handles: Dict[str, SegmentHandle] = {}
            rows = 0
            for column, entry in segments[key].items():
                path = os.path.join(self.segments_dir, entry["file"])
                header, payload_offset = validate_segment_header(
                    path, expected=entry
                )
                handles[column] = SegmentHandle(
                    path,
                    entry,
                    residency,
                    column=column,
                    kind=header["kind"],
                    dtype=header.get("dtype"),
                    rows=int(header["rows"]),
                    payload_offset=payload_offset,
                    payload_bytes=int(header["payload_bytes"]),
                    breaker=breaker,
                )
                rows = int(header["rows"])
                report.segments_deferred += 1
                _count("headers_validated")
            shard_handles.append(handles)
            shard_rows.append(rows)
        if body["layout"] == "monolithic":
            if len(shard_handles) != 1:
                raise CorruptSegmentError(
                    self.manifest_path,
                    f"monolithic layout with {len(shard_handles)} shard entries",
                )
            table: Table = LazySegmentTable.from_segments(
                name,
                schema,
                shard_handles[0],
                num_rows=shard_rows[0],
                data_generation=generation,
                map_breaker=breaker,
            )
        else:
            shards = [
                LazySegmentTable.from_segments(
                    f"{name}#shard{position}",
                    schema,
                    handles,
                    num_rows=rows,
                    map_breaker=breaker,
                )
                for position, (handles, rows) in enumerate(
                    zip(shard_handles, shard_rows)
                )
            ]
            table = LazyShardedTable(
                name,
                schema,
                shards,
                max_workers=body.get("max_workers"),
                tail_shard_rows=body.get("tail_shard_rows"),
            )
            table._data_generation = generation
            offsets = [int(offset) for offset in body["offsets"]]
            if list(table.shard_offsets) != offsets:
                raise CorruptSegmentError(
                    self.manifest_path,
                    f"segment rows give offsets {list(table.shard_offsets)}, "
                    f"manifest committed {offsets}",
                )
        if table.num_rows != int(body["num_rows"]):
            raise CorruptSegmentError(
                self.manifest_path,
                f"segments hold {table.num_rows} rows, manifest committed "
                f"{body['num_rows']}",
            )
        return table

    def _replay_journal(self, table: Table, report: RecoveryReport) -> None:
        records, truncated = _journal.read_records(self.journal_path)
        if truncated:
            report.journal_tail_truncated = True
            _count("journal_truncations")
        for record in records:
            generation = int(record["generation"])
            if generation <= table.data_generation:
                # Written before a checkpoint whose truncation did not land
                # (crash between manifest commit and journal reset).
                continue
            if generation != table.data_generation + 1:
                # A generation gap means the record cannot re-apply exactly;
                # everything from here on is discarded tail.
                report.journal_tail_truncated = True
                _count("journal_truncations")
                break
            table.append_columns(record["columns"])
            report.journal_records_replayed += 1
        if report.journal_records_replayed:
            _count("journal_replays")
            _count("journal_records_replayed", report.journal_records_replayed)

    # -- hygiene -----------------------------------------------------------------
    def _sweep_temp_files(self) -> int:
        """Remove torn ``.tmp`` files left by interrupted atomic writes."""
        cleaned = 0
        for root, _dirs, files in os.walk(self.directory):
            for filename in files:
                if filename.endswith(".tmp"):
                    os.remove(os.path.join(root, filename))
                    cleaned += 1
        if cleaned:
            _count("temp_files_cleaned", cleaned)
        return cleaned

    def _quarantine(self, path: str, report: RecoveryReport) -> None:
        """Move a corrupt artifact aside (numbered, never overwritten)."""
        if not os.path.exists(path):
            return
        os.makedirs(self.quarantine_dir, exist_ok=True)
        base = os.path.basename(path)
        target = os.path.join(self.quarantine_dir, base)
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = os.path.join(self.quarantine_dir, f"{base}.{suffix}")
        os.replace(path, target)
        report.quarantined.append(os.path.basename(target))
        _count("quarantines")


class CatalogStore:
    """Durable storage for a whole catalog: one :class:`TableStore` per table
    under ``<dir>/tables/``, committed under an atomic catalog manifest.

    UDFs are code, not data — they are never persisted; re-register them on
    the reopened catalog.
    """

    CATALOG_FILE = "CATALOG.json"
    TABLES_DIR = "tables"

    def __init__(self, directory: str):
        self.directory = str(directory)

    @property
    def catalog_path(self) -> str:
        return os.path.join(self.directory, self.CATALOG_FILE)

    def table_store(self, name: str) -> TableStore:
        """The per-table store for ``name`` (directory name sanitised)."""
        return TableStore(
            os.path.join(self.directory, self.TABLES_DIR, _safe_dirname(name))
        )

    def save(self, catalog: Catalog) -> None:
        """Checkpoint every table, then atomically commit the catalog manifest."""
        os.makedirs(self.directory, exist_ok=True)
        names = catalog.table_names()
        for name in names:
            self.table_store(name).save(catalog.table(name))
        write_manifest(self.catalog_path, {"tables": list(names)})
        _count("manifest_commits")

    def table_names(self) -> List[str]:
        """The tables the committed catalog manifest names (empty when absent)."""
        body = read_manifest(self.catalog_path)
        return [] if body is None else list(body["tables"])

    def open(
        self,
        rebuilders: Optional[Mapping[str, Callable[[], Table]]] = None,
        mmap: bool = True,
        residency: Optional["ResidencyManager"] = None,
    ) -> Tuple[Catalog, Dict[str, RecoveryReport]]:
        """Open every committed table into a fresh :class:`Catalog`.

        ``rebuilders`` maps table names to rebuild-from-source callables
        used when that table's artifacts are corrupt; tables without one
        re-raise the typed error.  A ``residency`` manager makes every
        table's open lazy (header-only validation, map on first touch)
        under one shared byte budget — see :meth:`TableStore.open`.
        """
        catalog = Catalog()
        reports: Dict[str, RecoveryReport] = {}
        for name in self.table_names():
            rebuild = None if rebuilders is None else rebuilders.get(name)
            table, report = self.table_store(name).open(
                rebuild=rebuild, mmap=mmap, residency=residency
            )
            catalog.register_table(table)
            reports[name] = report
        return catalog, reports
