"""The tail-append write-ahead journal.

Between checkpoints, appends are made durable by journalling the delta
*before* it is applied in memory: one length-prefixed, CRC'd, pickled
record per :meth:`~repro.db.table.Table.append_columns` call, fsynced on
append.  Each record carries the ``data_generation`` it produces, so
replay on open is idempotent against the manifest — records at or below
the manifest's committed generation (a crash between manifest commit and
journal truncation) are skipped, records above it re-apply through the
very same append path that produced them, deterministically reproducing
tail growth, cache extension and tail sealing.

Record layout::

    length (uint32 LE) | crc32(payload) (uint32 LE) | payload (pickle)

A torn append (the ``journal_append`` fault site fires mid-record) leaves
a short or checksum-failing tail; :func:`read_records` stops at the first
bad record and reports the truncation — the journal's valid prefix *is*
the durable history, exactly the semantics of a real WAL tail.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.db.errors import CorruptSegmentError
from repro.resilience import faults as _faults

#: Journal file magic (8 bytes, versioned).
JOURNAL_MAGIC = b"RPWAL01\x00"

_HEADER = struct.Struct("<II")


def append_record(
    path: str, generation: int, columns: Mapping[str, Sequence[Any]]
) -> None:
    """Durably append one delta record producing ``generation``.

    The ``journal_append`` fault site fires after a partial record prefix
    has been written — an injected crash/error there models a torn append
    whose bytes replay must discard.
    """
    payload = pickle.dumps(
        {
            "generation": int(generation),
            "columns": {name: list(values) for name, values in columns.items()},
        },
        protocol=4,
    )
    record = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
    half = len(record) // 2
    with open(path, "ab") as handle:
        if handle.tell() == 0:
            handle.write(JOURNAL_MAGIC)
        handle.write(record[:half])
        handle.flush()
        _faults.maybe_fire(_faults.active_plan(), "journal_append")
        handle.write(record[half:])
        handle.flush()
        os.fsync(handle.fileno())


def read_records(path: str) -> Tuple[List[Dict[str, Any]], bool]:
    """Decode the journal's valid record prefix.

    Returns ``(records, truncated)`` where ``truncated`` reports that a
    torn or checksum-failing tail was discarded.  A journal whose *magic*
    is wrong is not a torn tail but a corrupt file: that raises
    :class:`CorruptSegmentError` so the store can quarantine it.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], False
    if not data:
        return [], False
    if len(data) < len(JOURNAL_MAGIC) or data[: len(JOURNAL_MAGIC)] != JOURNAL_MAGIC:
        raise CorruptSegmentError(path, "bad journal magic")
    records: List[Dict[str, Any]] = []
    offset = len(JOURNAL_MAGIC)
    truncated = False
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            truncated = True
            break
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if start + length > len(data):
            truncated = True
            break
        payload = data[start : start + length]
        if zlib.crc32(payload) != crc:
            truncated = True
            break
        try:
            record = pickle.loads(payload)
        except Exception:
            truncated = True
            break
        records.append(record)
        offset = start + length
    return records, truncated


def truncate(path: str) -> None:
    """Reset the journal to empty (called after a successful checkpoint).

    Atomic: a fresh magic-only file replaces the old journal, so a crash
    during truncation leaves either the full old journal (whose records the
    new manifest's generation makes replay skip) or the clean new one.
    """
    from repro.db.storage.segments import atomic_write_bytes

    atomic_write_bytes(path, JOURNAL_MAGIC)
