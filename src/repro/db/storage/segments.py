"""Checksummed columnar segment files with crash-safe atomic writes.

One segment file holds one column of one (sealed or tail) shard.  The
layout is::

    MAGIC (8 bytes) | header length (uint64 LE) | JSON header | payload

The header carries the column name, row count, payload codec and the
**per-block CRC32 table** (one checksum per ``block_bytes`` slice of the
payload), so a bit flip anywhere in the payload is localised to a block and
surfaces as a typed :class:`~repro.db.errors.CorruptSegmentError` instead
of silently corrupted query answers.  Fixed-width columns (numeric,
boolean, fixed-width strings) are stored as raw array bytes and read back
as **read-only memmaps** — opening a 1M-row table touches headers and
checksums, not python lists.  Object-dtype columns (mixed-type or ragged
cells) are pickled whole; they have no fixed-width buffer to map.

Every write is crash-safe: bytes go to ``<file>.tmp``, are flushed and
fsynced, and only then atomically renamed over the final name (the
directory is fsynced too, so the rename itself is durable).  A crash —
injected through the ``segment_write``/``manifest_write``/
``journal_append`` fault sites, which fire *mid-write*, after a partial
prefix — leaves at worst a torn ``.tmp`` file that recovery sweeps; the
committed file is never half-written.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import weakref
import zlib
from typing import Any, Dict, Optional

import numpy as np

from repro.db.errors import CorruptSegmentError
from repro.resilience import faults as _faults

#: Segment file magic (8 bytes, versioned).
SEGMENT_MAGIC = b"RPSEG01\x00"

#: Default checksum block size (1 MiB).
DEFAULT_BLOCK_BYTES = 1 << 20

#: Dtype kinds stored as raw fixed-width bytes (memmappable).
_FIXED_KINDS = ("b", "i", "u", "f", "c", "U", "S", "V")

#: Live memmap arrays handed out by :func:`read_segment`, weakly held (keyed
#: by a monotonic token — ndarrays are unhashable): the moment the owning
#: table is garbage-collected the entry vanishes, so the test-suite leak
#: check can assert nothing dangles between tests.
_LIVE_MEMMAPS: "weakref.WeakValueDictionary[int, np.ndarray]" = (
    weakref.WeakValueDictionary()
)
_MEMMAP_TOKENS = iter(range(1 << 62))


def live_memmap_count() -> int:
    """How many segment-backed memmap arrays are still referenced."""
    return len(_LIVE_MEMMAPS)


def _fsync_directory(directory: str) -> None:
    """Make a rename in ``directory`` durable (best-effort off-POSIX)."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, site: Optional[str] = None) -> None:
    """Write ``data`` to ``path`` crash-safely: temp file, fsync, atomic rename.

    ``site`` names the fault-injection point fired *between* the first and
    second half of the payload — an ``error``/``crash`` rule there models a
    torn write: the temp file holds a valid-looking prefix, the final name
    still holds the previous committed bytes (or nothing), and recovery
    must cope with both.
    """
    tmp = f"{path}.tmp"
    half = len(data) // 2
    with open(tmp, "wb") as handle:
        handle.write(data[:half])
        if site is not None:
            handle.flush()
            _faults.maybe_fire(_faults.active_plan(), site)
        handle.write(data[half:])
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(os.path.dirname(path))


def _block_checksums(payload: bytes, block_bytes: int) -> list:
    return [
        zlib.crc32(payload[start : start + block_bytes])
        for start in range(0, max(len(payload), 1), block_bytes)
    ]


def write_segment(
    path: str,
    column: str,
    array: np.ndarray,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> Dict[str, Any]:
    """Persist one column array as a checksummed segment file.

    Returns the manifest entry for the segment: file basename, codec, rows
    and the whole-payload CRC (the per-block CRC table lives in the segment
    header itself).  Fired through the ``segment_write`` fault site.
    """
    array = np.asarray(array)
    if array.dtype.kind in _FIXED_KINDS:
        kind = "numpy"
        dtype = array.dtype.str
        payload = np.ascontiguousarray(array).tobytes()
    else:
        kind = "pickle"
        dtype = None
        payload = pickle.dumps(array.tolist(), protocol=4)
    header = {
        "column": column,
        "kind": kind,
        "dtype": dtype,
        "rows": int(array.shape[0]),
        "payload_bytes": len(payload),
        "block_bytes": int(block_bytes),
        "block_crcs": _block_checksums(payload, block_bytes),
    }
    header["header_crc"] = _header_crc(header)
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data = (
        SEGMENT_MAGIC
        + struct.pack("<Q", len(header_bytes))
        + header_bytes
        + payload
    )
    atomic_write_bytes(path, data, site="segment_write")
    return {
        "file": os.path.basename(path),
        "kind": kind,
        "dtype": dtype,
        "rows": int(array.shape[0]),
        "crc": zlib.crc32(payload),
    }


def _header_crc(header: Dict[str, Any]) -> int:
    """CRC32 over the canonical JSON dump of ``header`` sans its own CRC."""
    body = {key: value for key, value in header.items() if key != "header_crc"}
    return zlib.crc32(json.dumps(body, sort_keys=True).encode("utf-8"))


def _parse_header(path: str, header_bytes: bytes) -> Dict[str, Any]:
    """Parse and CRC-verify a segment's JSON header bytes."""
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise CorruptSegmentError(path, f"unparseable header: {exc}") from None
    stored = header.get("header_crc")
    if stored is not None and int(stored) != _header_crc(header):
        raise CorruptSegmentError(path, "header CRC mismatch")
    return header


def _read_header(path: str, data: bytes) -> "tuple[Dict[str, Any], int]":
    if len(data) < len(SEGMENT_MAGIC) + 8:
        raise CorruptSegmentError(path, "truncated before header")
    if data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        raise CorruptSegmentError(path, "bad magic (not a segment file)")
    (header_len,) = struct.unpack_from("<Q", data, len(SEGMENT_MAGIC))
    header_start = len(SEGMENT_MAGIC) + 8
    if header_start + header_len > len(data):
        raise CorruptSegmentError(path, "truncated header")
    header = _parse_header(path, data[header_start : header_start + header_len])
    return header, header_start + int(header_len)


#: Sanity cap for header lengths read from disk: a corrupted length field
#: must fail typed, not attempt a multi-gigabyte allocation.
_MAX_HEADER_BYTES = 64 << 20


def validate_segment_header(
    path: str, expected: Optional[Dict[str, Any]] = None
) -> "tuple[Dict[str, Any], int]":
    """Header-only validation: magic, header CRC, size and manifest identity.

    Reads the fixed prefix and the JSON header — never the payload — so a
    lazy :meth:`~repro.db.storage.store.TableStore.open` can establish a
    segment's identity in O(header) time and defer the full per-block CRC
    pass to first-touch map time (:func:`read_segment`).  ``expected`` is
    the manifest entry; row count, codec and dtype must agree (the payload
    CRC is deliberately *not* checked here — that is map-time work).
    Returns ``(header, payload_offset)``; the residency layer maps the
    payload at ``payload_offset`` later.
    """
    prefix_len = len(SEGMENT_MAGIC) + 8
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(prefix_len)
            if len(prefix) < prefix_len:
                raise CorruptSegmentError(path, "truncated before header")
            if prefix[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
                raise CorruptSegmentError(path, "bad magic (not a segment file)")
            (header_len,) = struct.unpack_from("<Q", prefix, len(SEGMENT_MAGIC))
            if header_len > _MAX_HEADER_BYTES:
                raise CorruptSegmentError(
                    path, f"implausible header length {header_len}"
                )
            header_bytes = handle.read(int(header_len))
            file_size = os.fstat(handle.fileno()).st_size
    except FileNotFoundError:
        raise CorruptSegmentError(path, "segment file missing") from None
    if len(header_bytes) < int(header_len):
        raise CorruptSegmentError(path, "truncated header")
    header = _parse_header(path, header_bytes)
    payload_offset = prefix_len + int(header_len)
    if file_size != payload_offset + int(header["payload_bytes"]):
        raise CorruptSegmentError(
            path,
            f"file holds {file_size - payload_offset} payload bytes, header "
            f"says {header['payload_bytes']}",
        )
    if expected is not None:
        if int(expected["rows"]) != int(header["rows"]):
            raise CorruptSegmentError(
                path,
                f"manifest expects {expected['rows']} rows, segment holds "
                f"{header['rows']}",
            )
        if expected.get("kind") != header.get("kind") or (
            expected.get("dtype") or None
        ) != (header.get("dtype") or None):
            raise CorruptSegmentError(
                path,
                f"manifest expects kind={expected.get('kind')!r} "
                f"dtype={expected.get('dtype')!r}, segment holds "
                f"kind={header.get('kind')!r} dtype={header.get('dtype')!r}",
            )
    return header, payload_offset


def read_segment(
    path: str,
    expected: Optional[Dict[str, Any]] = None,
    mmap: bool = True,
) -> np.ndarray:
    """Validate and load one segment file as a read-only column array.

    Every block CRC is verified against the header before any data is
    handed out; fixed-width payloads then come back as a read-only
    ``np.memmap`` view (``mmap=False`` forces an in-memory copy), pickled
    object payloads as an object array.  ``expected`` is the manifest entry
    written by :func:`write_segment` — row count and whole-payload CRC must
    agree, so a segment swapped for a different (but self-consistent) file
    still fails typed.

    The ``segment_read`` fault site fires here: a ``garbage`` rule models a
    bit flip (the checksum pass sees one corrupted byte and fails exactly
    as it would for real media corruption).
    """
    fired = _faults.maybe_fire(_faults.active_plan(), "segment_read")
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        raise CorruptSegmentError(path, "segment file missing") from None
    header, payload_offset = _read_header(path, data)
    payload = data[payload_offset:]
    if fired == _faults.GARBAGE and payload:
        # Injected bit flip: corrupt one payload byte before validation.
        payload = bytes([payload[0] ^ 0x40]) + payload[1:]
    if len(payload) != int(header["payload_bytes"]):
        raise CorruptSegmentError(
            path,
            f"payload holds {len(payload)} bytes, header says "
            f"{header['payload_bytes']}",
        )
    block_bytes = int(header["block_bytes"])
    checksums = _block_checksums(payload, block_bytes)
    if checksums != [int(crc) for crc in header["block_crcs"]]:
        bad = [
            position
            for position, (fresh, stored) in enumerate(
                zip(checksums, header["block_crcs"])
            )
            if fresh != int(stored)
        ]
        raise CorruptSegmentError(
            path, f"checksum mismatch in block(s) {bad or 'trailing'}"
        )
    if expected is not None:
        if int(expected["rows"]) != int(header["rows"]):
            raise CorruptSegmentError(
                path,
                f"manifest expects {expected['rows']} rows, segment holds "
                f"{header['rows']}",
            )
        if int(expected["crc"]) != zlib.crc32(payload):
            raise CorruptSegmentError(path, "manifest payload CRC mismatch")
    if header["kind"] == "pickle":
        try:
            values = pickle.loads(payload)
        except Exception as exc:
            raise CorruptSegmentError(path, f"unpicklable payload: {exc}") from None
        array = np.empty(len(values), dtype=object)
        array[:] = values
        array.setflags(write=False)
        return array
    dtype = np.dtype(header["dtype"])
    rows = int(header["rows"])
    if mmap and fired != _faults.GARBAGE:
        array = np.memmap(path, dtype=dtype, mode="r", offset=payload_offset, shape=(rows,))
        _LIVE_MEMMAPS[next(_MEMMAP_TOKENS)] = array
    else:
        array = np.frombuffer(payload, dtype=dtype, count=rows).copy()
        array.setflags(write=False)
    return array
