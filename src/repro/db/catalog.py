"""Catalog of tables and UDFs, the root object a user interacts with."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.db.errors import DuplicateObjectError, TableNotFoundError
from repro.db.sharding import ShardedTable
from repro.db.table import Table
from repro.db.udf import UdfRegistry, UserDefinedFunction


class Catalog:
    """Holds named tables and a UDF registry."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self.udfs = UdfRegistry()

    # -- tables -----------------------------------------------------------------
    def register_table(self, table: Table, replace: bool = False) -> None:
        """Register a table under its own name."""
        if table.name in self._tables and not replace:
            raise DuplicateObjectError(f"table {table.name!r} already registered")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def has_table(self, name: str) -> bool:
        """Whether a table with ``name`` exists."""
        return name in self._tables

    def table_names(self) -> List[str]:
        """Names of all registered tables."""
        return list(self._tables.keys())

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise TableNotFoundError(name)
        del self._tables[name]

    def shard_table(
        self,
        name: str,
        num_shards: int,
        max_workers: Optional[int] = None,
    ) -> ShardedTable:
        """Replace a registered table with a sharded copy of the same rows.

        The replacement is a fresh table object, so every identity-keyed
        cache (plans, statistics) correctly treats it as a new generation;
        row ids, schema and name are unchanged, so queries keep working.
        Returns the new :class:`~repro.db.sharding.ShardedTable`.
        """
        table = self.table(name)
        if (
            isinstance(table, ShardedTable)
            and table.num_shards == num_shards
            and (max_workers is None or table.max_workers == max_workers)
        ):
            return table
        sharded = ShardedTable.from_table(
            table, num_shards=num_shards, max_workers=max_workers
        )
        self._tables[name] = sharded
        return sharded

    def group_index(self, table_name: str, column: str):
        """The shared :class:`~repro.db.index.GroupIndex` for a table column.

        Delegates to :meth:`Table.group_index`, so the engine, the pipeline
        and the serving layer all see one index per (table, column) — a
        re-registered table brings a fresh cache with it.
        """
        return self.table(table_name).group_index(column)

    # -- udfs -------------------------------------------------------------------
    def register_udf(self, udf: UserDefinedFunction, replace: bool = False) -> None:
        """Register a UDF."""
        self.udfs.register(udf, replace=replace)

    def udf(self, name: str) -> UserDefinedFunction:
        """Look up a UDF by name."""
        return self.udfs.get(name)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Catalog(tables={self.table_names()}, udfs={self.udfs.names()})"
