"""Exception hierarchy for the database substrate."""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for every error raised by :mod:`repro.db`."""


class SchemaMismatchError(DatabaseError):
    """A row or column does not match the table schema."""


class ColumnNotFoundError(DatabaseError, KeyError):
    """A referenced column does not exist in the schema."""

    def __init__(self, column: str, available=None):
        self.column = column
        self.available = list(available) if available is not None else None
        message = f"column {column!r} not found"
        if self.available is not None:
            message += f"; available columns: {self.available}"
        super().__init__(message)


class TableNotFoundError(DatabaseError, KeyError):
    """A referenced table is not registered in the catalog."""

    def __init__(self, table: str):
        self.table = table
        super().__init__(f"table {table!r} not found in catalog")


class UdfNotFoundError(DatabaseError, KeyError):
    """A referenced UDF is not registered."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"UDF {name!r} is not registered")


class DuplicateObjectError(DatabaseError):
    """An object (table, UDF) with the same name already exists."""


class UnsupportedQueryError(DatabaseError):
    """A query asked for an evaluation strategy the engine cannot provide."""

    def __init__(self, strategy, available=None):
        self.strategy = strategy
        self.available = sorted(available) if available is not None else None
        message = f"unsupported evaluation strategy {strategy!r}"
        if self.available is not None:
            message += f"; registered strategies: {self.available}"
        super().__init__(message)


class UnpicklableUdfError(DatabaseError):
    """A UDF wraps a callable that cannot be shipped to worker processes."""

    def __init__(self, name: str, func=None):
        self.name = name
        self.func = func
        super().__init__(
            f"UDF {name!r} wraps a callable that does not pickle; process-pool "
            "execution needs a module-level callable (see "
            "repro.db.udf.RevealLabel) or a label-column UDF"
        )


class BudgetExhaustedError(DatabaseError):
    """A UDF call was attempted after its cost budget ran out."""

    def __init__(self, budget: float, spent: float):
        self.budget = budget
        self.spent = spent
        super().__init__(
            f"UDF cost budget exhausted: budget={budget}, already spent={spent}"
        )


class StorageError(DatabaseError):
    """Base class for durable-storage failures (:mod:`repro.db.storage`)."""


class CorruptSegmentError(StorageError):
    """A persisted artifact failed checksum or structural validation.

    Raised for bit-flipped segment blocks, torn journal headers, manifests
    that do not parse — anything where the bytes on disk no longer match
    what was committed.  The store quarantines the offending file and either
    degrades to rebuild-from-source or surfaces this error; it never serves
    silently corrupted data.
    """

    def __init__(self, path, reason: str):
        self.path = str(path)
        self.reason = reason
        super().__init__(f"corrupt storage artifact {self.path}: {reason}")


class SegmentMapError(StorageError):
    """A durable segment could not be mapped into memory.

    Raised by the residency layer (:mod:`repro.db.residency`) when a lazy
    column's first-touch map fails even after a retry — an I/O error, a
    vanished file, or an injected ``segment_map`` fault.  Distinct from
    :class:`CorruptSegmentError` (bytes present but wrong): the mapping
    machinery itself failed, so the table degrades to rebuilt-in-memory
    operation through its map circuit breaker instead of quarantining.
    """

    def __init__(self, path, reason: str):
        self.path = str(path)
        self.reason = reason
        super().__init__(f"cannot map segment {self.path}: {reason}")


class ManifestVersionError(StorageError):
    """A manifest was written by an incompatible storage format version."""

    def __init__(self, path, found: object, supported: int):
        self.path = str(path)
        self.found = found
        self.supported = supported
        super().__init__(
            f"manifest {self.path} has format version {found!r}; this build "
            f"supports version {supported} (migrate or rebuild from source)"
        )
