"""User-defined functions with cost accounting.

The paper charges ``o_e`` for every UDF evaluation and ``o_r`` for every tuple
retrieval.  :class:`CostLedger` tracks both so that an algorithm's total cost
``O = sum o_r (R+ + R-) + o_e (E+ + E-)`` can be read off after execution,
including the sampling phase (whose evaluations the paper explicitly counts).

:class:`UserDefinedFunction` wraps an arbitrary Python callable over a row
dict.  The common case in the reproduction is a UDF that simply reveals a
hidden ground-truth label column — exactly the simulation protocol of
Section 6.1 — but any callable works.
"""

from __future__ import annotations

import pickle
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.db.errors import (
    BudgetExhaustedError,
    DuplicateObjectError,
    UdfNotFoundError,
    UnpicklableUdfError,
)
from repro.db.table import Table
from repro.obs import metrics as _metrics
from repro.resilience import faults as _faults


@dataclass
class CostLedger:
    """Accumulates retrieval and evaluation costs.

    Attributes
    ----------
    retrieval_cost:
        Cost ``o_r`` charged per retrieved tuple.
    evaluation_cost:
        Cost ``o_e`` charged per UDF evaluation.
    """

    retrieval_cost: float = 1.0
    evaluation_cost: float = 3.0
    retrieved_count: int = 0
    evaluated_count: int = 0
    _budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.retrieval_cost < 0 or self.evaluation_cost < 0:
            raise ValueError("costs must be non-negative")

    @property
    def total_cost(self) -> float:
        """Total cost charged so far."""
        return (
            self.retrieved_count * self.retrieval_cost
            + self.evaluated_count * self.evaluation_cost
        )

    @property
    def budget(self) -> Optional[float]:
        """Optional hard budget on total cost."""
        return self._budget

    def set_budget(self, budget: Optional[float]) -> None:
        """Install (or clear) a hard cost budget."""
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        self._budget = budget

    def charge_retrieval(self, count: int = 1) -> None:
        """Charge for ``count`` tuple retrievals."""
        self._check_budget(count * self.retrieval_cost)
        self.retrieved_count += count

    def charge_evaluation(self, count: int = 1) -> None:
        """Charge for ``count`` UDF evaluations."""
        self._check_budget(count * self.evaluation_cost)
        self.evaluated_count += count

    def _check_budget(self, additional: float) -> None:
        if self._budget is not None and self.total_cost + additional > self._budget + 1e-9:
            raise BudgetExhaustedError(self._budget, self.total_cost)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict snapshot for reports."""
        return {
            "retrieved": self.retrieved_count,
            "evaluated": self.evaluated_count,
            "retrieval_cost": self.retrieval_cost,
            "evaluation_cost": self.evaluation_cost,
            "total_cost": self.total_cost,
        }

    def reset(self) -> None:
        """Zero the counters (the unit costs and budget stay)."""
        self.retrieved_count = 0
        self.evaluated_count = 0


class RevealLabel:
    """Picklable row callable that reveals a hidden ground-truth label column.

    This is the function behind :meth:`UserDefinedFunction.from_label_column`.
    It lives at module level (rather than as a closure) so every label-column
    UDF can be pickled into process-pool workers — closures cannot cross a
    process boundary, module-level callables can.
    """

    __slots__ = ("label_column", "positive_value")

    def __init__(self, label_column: str, positive_value: Any = True):
        self.label_column = label_column
        self.positive_value = positive_value

    def __call__(self, row: Mapping[str, Any]) -> bool:
        if self.label_column not in row:
            raise KeyError(
                f"row does not carry hidden label column {self.label_column!r}; "
                "evaluate through Engine/Executor so hidden columns are included"
            )
        return row[self.label_column] == self.positive_value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RevealLabel({self.label_column!r}, {self.positive_value!r})"


@dataclass(frozen=True)
class UdfSpec:
    """A picklable description of a UDF for process-pool workers.

    Workers never see the stateful :class:`UserDefinedFunction` (its memo
    cache, counters, and locks stay in the parent); they receive this spec,
    evaluate rows locally, and ship boolean outcomes back for the parent to
    fold in via :meth:`UserDefinedFunction.merge_remote_evaluations`.

    ``func`` is ``None`` when ``label_column`` is set — the worker then takes
    the vectorised label fast path and only needs that one column exported.
    """

    name: str
    label_column: Optional[str]
    positive_value: Any
    func: Optional[Callable[[Mapping[str, Any]], bool]]


class UserDefinedFunction:
    """An expensive boolean UDF with call accounting.

    Parameters
    ----------
    name:
        UDF name (unique within a registry).
    func:
        Callable mapping a full row dict (hidden columns included) to a
        boolean.
    evaluation_cost:
        Cost charged per *distinct* evaluation (memoised repeats are free when
        ``memoize`` is true, mirroring the fact that a real system would cache
        a value it already paid for).
    memoize:
        Cache results per row id.
    """

    def __init__(
        self,
        name: str,
        func: Callable[[Mapping[str, Any]], bool],
        evaluation_cost: float = 3.0,
        memoize: bool = True,
    ):
        if evaluation_cost < 0:
            raise ValueError(f"evaluation_cost must be non-negative, got {evaluation_cost}")
        self.name = name
        self._func = func
        self.evaluation_cost = evaluation_cost
        self.memoize = memoize
        self._cache: Dict[int, bool] = {}
        self.call_count = 0
        #: Row evaluations answered from the memo cache (no function call).
        self.cache_hits = 0
        #: Row evaluations that had to invoke the underlying function.
        self.cache_misses = 0
        #: Paid :meth:`evaluate_row` invocations (per-row API calls).  The
        #: cold-path benchmarks gate this against :attr:`bulk_calls` to prove
        #: the pipeline stays batched.
        self.row_calls = 0
        #: Paid :meth:`evaluate_rows` invocations (batched API calls).
        self.bulk_calls = 0
        #: Set by :meth:`from_label_column`; enables vectorised evaluation.
        self.label_column: Optional[str] = None
        self.positive_value: Any = True
        self._oracle_depth = 0
        # Counter/memo mutations are lock-protected so concurrent bulk calls
        # (the parallel executor evaluates disjoint shard spans on worker
        # threads) keep the paid-evaluation accounting exact — the CI parity
        # gates compare these counters at ±0.  The lock is taken per bulk
        # call, not per row, so the serial hot path is unaffected.
        self._state_lock = threading.Lock()
        # Sorted snapshot of the memo cache (ids array + aligned values
        # array) for vectorised bulk lookups; rebuilt lazily after writes.
        self._memo_snapshot: Optional[tuple] = None
        # Memoised answer to "does self._func pickle?" for worker_spec().
        self._func_picklable: Optional[bool] = None
        self._obs_counters = _metrics.BoundCounterCache(
            lambda registry, key: registry.counter(f"repro_udf_{key}_total", udf=self.name)
        )

    @classmethod
    def from_label_column(
        cls,
        name: str,
        label_column: str,
        evaluation_cost: float = 3.0,
        positive_value: Any = True,
    ) -> "UserDefinedFunction":
        """A UDF that reveals a hidden label column (the paper's protocol)."""
        udf = cls(
            name=name,
            func=RevealLabel(label_column, positive_value),
            evaluation_cost=evaluation_cost,
        )
        udf.label_column = label_column
        udf.positive_value = positive_value
        return udf

    @contextmanager
    def oracle_mode(self):
        """Side-effect-free evaluation for auditors and ground-truth readers.

        Inside the context, evaluations read the memo cache but never write
        it and never advance any counter — so peeking at the truth (which no
        real system could do for free) cannot make later *paid* evaluations
        look already-paid-for to serving-layer accounting.
        """
        self._oracle_depth += 1
        try:
            yield self
        finally:
            self._oracle_depth -= 1

    def evaluate_row(self, table: Table, row_id: int) -> bool:
        """Evaluate the UDF on one row of ``table`` (charges one call)."""
        if self._oracle_depth:
            if self.memoize and row_id in self._cache:
                return self._cache[row_id]
            return bool(self._func(table.row(row_id, include_hidden=True)))
        registry = _metrics.get_registry()
        if self.memoize and row_id in self._cache:
            with self._state_lock:
                self.row_calls += 1
                self.cache_hits += 1
            if registry.enabled:
                self._obs_counters.get(registry, "row_calls").inc()
                self._obs_counters.get(registry, "memo_hits").inc()
            return self._cache[row_id]
        row = table.row(row_id, include_hidden=True)
        result = bool(self._func(row))
        with self._state_lock:
            self.row_calls += 1
            self.call_count += 1
            self.cache_misses += 1
            if self.memoize:
                self._cache[row_id] = result
                self._memo_snapshot = None
        if registry.enabled:
            self._obs_counters.get(registry, "row_calls").inc()
            self._obs_counters.get(registry, "evaluations").inc()
        return result

    def evaluate_rows(self, table: Table, row_ids: Iterable[int]) -> np.ndarray:
        """Evaluate the UDF on many rows at once, returning a boolean array.

        Memoised rows are answered from the cache (counted as hits); only the
        remaining rows invoke the function.  Label-column UDFs take a
        vectorised fast path through :meth:`Table.column_array`; arbitrary
        callables fall back to per-row dict evaluation.  Counter semantics
        match :meth:`evaluate_row`: ``call_count``/``cache_misses`` advance
        once per actual function evaluation.
        """
        oracle = bool(self._oracle_depth)
        registry = _metrics.get_registry()
        # Fault-injection site ``udf_eval`` (tests only; a ``None`` check
        # otherwise): a ``sleep`` rule here models the paper's adversarially
        # slow predicate without touching the UDF under test.
        _faults.maybe_fire(_faults.active_plan(), "udf_eval")
        id_array = np.asarray(row_ids, dtype=np.intp)
        results, pending_positions, pending_array = self._bulk_split(
            id_array, oracle, registry
        )
        if pending_array.size:
            if self.label_column is not None and table.schema.has_column(self.label_column):
                # gather_column (not column_array[...]): residency-managed
                # tables serve the gather shard-at-a-time with the segment
                # pinned, instead of materialising the whole label column.
                fresh = np.asarray(
                    table.gather_column(
                        self.label_column, pending_array, allow_hidden=True
                    )
                    == self.positive_value,
                    dtype=bool,
                )
            else:
                fresh = np.fromiter(
                    (
                        bool(self._func(table.row(int(r), include_hidden=True)))
                        for r in pending_array
                    ),
                    dtype=bool,
                    count=int(pending_array.size),
                )
            self._bulk_absorb(
                results, pending_positions, pending_array, fresh, oracle, registry
            )
        return results

    def merge_remote_evaluations(
        self, row_ids: Iterable[int], outcomes: Iterable[bool]
    ) -> np.ndarray:
        """Fold UDF outcomes evaluated in a worker process into this instance.

        The process-pool executor evaluates rows against shared-memory column
        views in workers that hold only a :class:`UdfSpec` — no memo cache, no
        counters.  The parent calls this with the worker's ``(row_ids,
        outcomes)`` to replay exactly the accounting :meth:`evaluate_rows`
        would have produced locally: one bulk call, memoised rows counted as
        hits (their cached value wins; determinism makes the remote outcome
        identical), pending rows counted as misses and absorbed into the memo
        cache.  Returns the final boolean array for ``row_ids``, so serial
        and process-pool execution are bitwise indistinguishable to callers
        and to the CI parity gates.
        """
        oracle = bool(self._oracle_depth)
        registry = _metrics.get_registry()
        id_array = np.asarray(row_ids, dtype=np.intp)
        outcome_array = np.asarray(outcomes, dtype=bool)
        if outcome_array.shape != id_array.shape:
            raise ValueError(
                f"outcomes shape {outcome_array.shape} does not match "
                f"row_ids shape {id_array.shape}"
            )
        results, pending_positions, pending_array = self._bulk_split(
            id_array, oracle, registry
        )
        if pending_array.size:
            if pending_positions is not None:
                fresh = outcome_array[pending_positions]
            else:
                fresh = outcome_array
            self._bulk_absorb(
                results, pending_positions, pending_array, fresh, oracle, registry
            )
        return results

    def worker_spec(self) -> UdfSpec:
        """The picklable :class:`UdfSpec` shipped to process-pool workers.

        Label-column UDFs always qualify (the worker takes the vectorised
        label path and never needs the callable).  Arbitrary callables are
        pickle-tested once (the verdict is memoised); a closure or lambda
        raises :class:`~repro.db.errors.UnpicklableUdfError`, which the
        process executor treats as "fall back to in-process evaluation".
        """
        if self.label_column is not None:
            return UdfSpec(self.name, self.label_column, self.positive_value, None)
        if self._func_picklable is None:
            try:
                pickle.loads(pickle.dumps(self._func))
            except Exception:
                self._func_picklable = False
            else:
                self._func_picklable = True
        if not self._func_picklable:
            raise UnpicklableUdfError(self.name, self._func)
        return UdfSpec(self.name, None, self.positive_value, self._func)

    def _bulk_split(
        self, id_array: np.ndarray, oracle: bool, registry
    ) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]:
        """Count one bulk call and split ``id_array`` against the memo cache.

        Returns ``(results, pending_positions, pending_array)``: ``results``
        has memo-answered positions filled in, ``pending_array`` holds the
        row ids still needing evaluation, and ``pending_positions`` their
        positions in ``results`` (``None`` means everything is pending and
        positions are implicit).  Shared by :meth:`evaluate_rows` and
        :meth:`merge_remote_evaluations` so the two paths cannot drift.
        """
        if not oracle:
            with self._state_lock:
                self.bulk_calls += 1
            if registry.enabled:
                self._obs_counters.get(registry, "bulk_calls").inc()
        if self.memoize and self._cache:
            if self._use_memo_snapshot(id_array.size):
                # Vectorised memo lookup against a sorted snapshot of the
                # cache: one searchsorted + gather instead of a python dict
                # walk per row (the walk dominated large bulk calls and,
                # being GIL-bound, serialised the parallel executor's
                # workers).
                memo_ids, memo_values = self._memo_arrays()
                if memo_ids.size:
                    positions = np.searchsorted(memo_ids, id_array)
                    clipped = np.minimum(positions, memo_ids.size - 1)
                    hit_mask = memo_ids[clipped] == id_array
                else:  # cache cleared between truthiness check and snapshot
                    hit_mask = np.zeros(id_array.size, dtype=bool)
                    memo_values = memo_ids
                    clipped = hit_mask
                results = np.empty(id_array.size, dtype=bool)
                if hit_mask.any():
                    results[hit_mask] = memo_values[clipped[hit_mask]]
                pending_positions = np.flatnonzero(~hit_mask)
                pending_array = id_array[pending_positions]
            else:
                # Stale snapshot + small query: an O(k) dict walk beats
                # re-sorting the whole cache to look up a handful of ids.
                cache = self._cache
                pending_list = []
                results = np.empty(id_array.size, dtype=bool)
                for position, row_id in enumerate(id_array.tolist()):
                    cached = cache.get(row_id)
                    if cached is None:
                        pending_list.append(position)
                    else:
                        results[position] = cached
                pending_positions = np.asarray(pending_list, dtype=np.intp)
                pending_array = id_array[pending_positions]
            if not oracle:
                with self._state_lock:
                    self.cache_hits += int(id_array.size - pending_array.size)
                if registry.enabled:
                    self._obs_counters.get(registry, "memo_hits").inc(
                        int(id_array.size - pending_array.size)
                    )
        else:
            results = np.empty(len(id_array), dtype=bool)
            pending_positions = None  # everything pending, positions implicit
            pending_array = id_array
        return results, pending_positions, pending_array

    def _bulk_absorb(
        self,
        results: np.ndarray,
        pending_positions: Optional[np.ndarray],
        pending_array: np.ndarray,
        fresh: np.ndarray,
        oracle: bool,
        registry,
    ) -> None:
        """Scatter fresh outcomes into ``results`` and absorb the paid work.

        The other half of :meth:`_bulk_split`: advances
        ``call_count``/``cache_misses`` once per fresh outcome and writes the
        memo cache, regardless of whether the outcomes were computed locally
        or merged back from a worker process.
        """
        if pending_positions is not None:
            results[pending_positions] = fresh
        else:
            results[:] = fresh
        if not oracle:
            with self._state_lock:
                self.call_count += int(pending_array.size)
                self.cache_misses += int(pending_array.size)
                if self.memoize:
                    self._cache.update(
                        zip(pending_array.tolist(), fresh.tolist())
                    )
                    self._memo_snapshot = None
            if registry.enabled:
                self._obs_counters.get(registry, "evaluations").inc(
                    int(pending_array.size)
                )

    def _use_memo_snapshot(self, query_size: int) -> bool:
        """Whether a bulk lookup should go through the sorted snapshot.

        A fresh snapshot is free to reuse.  A stale one costs an
        O(cache log cache) rebuild, which only pays off when the query is a
        meaningful fraction of the cache — write-heavy workloads issuing
        small lookups (the warm serving path) stay on the O(k) dict walk.
        """
        if self._memo_snapshot is not None:
            return True
        return query_size * 16 >= len(self._cache)

    def _memo_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """The memo cache as sorted ``(row_ids, values)`` arrays (cached).

        Rebuilt lazily after cache writes; built and returned under the state
        lock so a concurrent writer can neither mutate the dict mid-iteration
        nor hand out a half-stale snapshot.  Callers treat the arrays as
        read-only.
        """
        with self._state_lock:
            snapshot = self._memo_snapshot
            if snapshot is None:
                count = len(self._cache)
                ids = np.fromiter(self._cache.keys(), dtype=np.intp, count=count)
                values = np.fromiter(self._cache.values(), dtype=bool, count=count)
                order = np.argsort(ids, kind="stable")
                snapshot = (ids[order], values[order])
                self._memo_snapshot = snapshot
            return snapshot

    def is_memoized(self, row_id: int) -> bool:
        """Whether the UDF value for ``row_id`` is already cached."""
        return self.memoize and row_id in self._cache

    def memoized_mask(self, row_ids: Iterable[int]) -> np.ndarray:
        """Boolean mask of rows whose UDF value is already memoised.

        Used by serving-accounting executors to charge only un-memoised rows
        without a per-row ``is_memoized`` call.
        """
        ids = np.asarray(row_ids, dtype=np.intp)
        if not self.memoize or not self._cache:
            return np.zeros(ids.size, dtype=bool)
        if not self._use_memo_snapshot(ids.size):
            cache = self._cache
            return np.fromiter(
                (row_id in cache for row_id in ids.tolist()),
                dtype=bool,
                count=ids.size,
            )
        memo_ids, _ = self._memo_arrays()
        if not memo_ids.size:
            return np.zeros(ids.size, dtype=bool)
        positions = np.minimum(np.searchsorted(memo_ids, ids), memo_ids.size - 1)
        return np.asarray(memo_ids[positions] == ids, dtype=bool)

    def counter_snapshot(self) -> Dict[str, int]:
        """Memoisation counters as a plain dict (for result metadata)."""
        return {
            "calls": self.call_count,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_size": len(self._cache),
            "row_calls": self.row_calls,
            "bulk_calls": self.bulk_calls,
        }

    def counter_delta(self, before: Mapping[str, int]) -> Dict[str, int]:
        """Counter advance since a :meth:`counter_snapshot` was taken.

        Counters are plain (unlocked) attributes shared by everyone holding
        the UDF, so under concurrent execution a delta attributes whatever
        happened on the UDF in the window — treat per-request deltas as
        approximate when requests share a UDF across threads.
        """
        now = self.counter_snapshot()
        return {
            name: now[name] - before.get(name, 0)
            for name in ("calls", "cache_hits", "cache_misses", "row_calls", "bulk_calls")
        }

    def __call__(self, row: Mapping[str, Any]) -> bool:
        """Evaluate directly on a row dict (charges one call, no memoisation)."""
        with self._state_lock:
            self.call_count += 1
            self.cache_misses += 1
            self.row_calls += 1
        registry = _metrics.get_registry()
        if registry.enabled:
            self._obs_counters.get(registry, "row_calls").inc()
            self._obs_counters.get(registry, "evaluations").inc()
        return bool(self._func(row))

    def reset(self) -> None:
        """Clear the memo cache and every counter."""
        with self._state_lock:
            self._cache.clear()
            self._memo_snapshot = None
            self.call_count = 0
            self.cache_hits = 0
            self.cache_misses = 0
            self.row_calls = 0
            self.bulk_calls = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UserDefinedFunction({self.name!r}, cost={self.evaluation_cost})"


class UdfRegistry:
    """A name → UDF mapping, as a query engine would maintain."""

    def __init__(self) -> None:
        self._udfs: Dict[str, UserDefinedFunction] = {}

    def register(self, udf: UserDefinedFunction, replace: bool = False) -> None:
        """Register a UDF; refuses to silently overwrite unless ``replace``."""
        if udf.name in self._udfs and not replace:
            raise DuplicateObjectError(f"UDF {udf.name!r} already registered")
        self._udfs[udf.name] = udf

    def get(self, name: str) -> UserDefinedFunction:
        """Look up a UDF by name."""
        try:
            return self._udfs[name]
        except KeyError:
            raise UdfNotFoundError(name) from None

    def __contains__(self, name: object) -> bool:
        return name in self._udfs

    def __iter__(self) -> Iterator[UserDefinedFunction]:
        return iter(self._udfs.values())

    def __len__(self) -> int:
        return len(self._udfs)

    def names(self) -> list[str]:
        """Registered UDF names."""
        return list(self._udfs.keys())
