"""User-defined functions with cost accounting.

The paper charges ``o_e`` for every UDF evaluation and ``o_r`` for every tuple
retrieval.  :class:`CostLedger` tracks both so that an algorithm's total cost
``O = sum o_r (R+ + R-) + o_e (E+ + E-)`` can be read off after execution,
including the sampling phase (whose evaluations the paper explicitly counts).

:class:`UserDefinedFunction` wraps an arbitrary Python callable over a row
dict.  The common case in the reproduction is a UDF that simply reveals a
hidden ground-truth label column — exactly the simulation protocol of
Section 6.1 — but any callable works.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional

import numpy as np

from repro.db.errors import BudgetExhaustedError, DuplicateObjectError, UdfNotFoundError
from repro.db.table import Table


@dataclass
class CostLedger:
    """Accumulates retrieval and evaluation costs.

    Attributes
    ----------
    retrieval_cost:
        Cost ``o_r`` charged per retrieved tuple.
    evaluation_cost:
        Cost ``o_e`` charged per UDF evaluation.
    """

    retrieval_cost: float = 1.0
    evaluation_cost: float = 3.0
    retrieved_count: int = 0
    evaluated_count: int = 0
    _budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.retrieval_cost < 0 or self.evaluation_cost < 0:
            raise ValueError("costs must be non-negative")

    @property
    def total_cost(self) -> float:
        """Total cost charged so far."""
        return (
            self.retrieved_count * self.retrieval_cost
            + self.evaluated_count * self.evaluation_cost
        )

    @property
    def budget(self) -> Optional[float]:
        """Optional hard budget on total cost."""
        return self._budget

    def set_budget(self, budget: Optional[float]) -> None:
        """Install (or clear) a hard cost budget."""
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        self._budget = budget

    def charge_retrieval(self, count: int = 1) -> None:
        """Charge for ``count`` tuple retrievals."""
        self._check_budget(count * self.retrieval_cost)
        self.retrieved_count += count

    def charge_evaluation(self, count: int = 1) -> None:
        """Charge for ``count`` UDF evaluations."""
        self._check_budget(count * self.evaluation_cost)
        self.evaluated_count += count

    def _check_budget(self, additional: float) -> None:
        if self._budget is not None and self.total_cost + additional > self._budget + 1e-9:
            raise BudgetExhaustedError(self._budget, self.total_cost)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict snapshot for reports."""
        return {
            "retrieved": self.retrieved_count,
            "evaluated": self.evaluated_count,
            "retrieval_cost": self.retrieval_cost,
            "evaluation_cost": self.evaluation_cost,
            "total_cost": self.total_cost,
        }

    def reset(self) -> None:
        """Zero the counters (the unit costs and budget stay)."""
        self.retrieved_count = 0
        self.evaluated_count = 0


class UserDefinedFunction:
    """An expensive boolean UDF with call accounting.

    Parameters
    ----------
    name:
        UDF name (unique within a registry).
    func:
        Callable mapping a full row dict (hidden columns included) to a
        boolean.
    evaluation_cost:
        Cost charged per *distinct* evaluation (memoised repeats are free when
        ``memoize`` is true, mirroring the fact that a real system would cache
        a value it already paid for).
    memoize:
        Cache results per row id.
    """

    def __init__(
        self,
        name: str,
        func: Callable[[Mapping[str, Any]], bool],
        evaluation_cost: float = 3.0,
        memoize: bool = True,
    ):
        if evaluation_cost < 0:
            raise ValueError(f"evaluation_cost must be non-negative, got {evaluation_cost}")
        self.name = name
        self._func = func
        self.evaluation_cost = evaluation_cost
        self.memoize = memoize
        self._cache: Dict[int, bool] = {}
        self.call_count = 0
        #: Row evaluations answered from the memo cache (no function call).
        self.cache_hits = 0
        #: Row evaluations that had to invoke the underlying function.
        self.cache_misses = 0
        #: Paid :meth:`evaluate_row` invocations (per-row API calls).  The
        #: cold-path benchmarks gate this against :attr:`bulk_calls` to prove
        #: the pipeline stays batched.
        self.row_calls = 0
        #: Paid :meth:`evaluate_rows` invocations (batched API calls).
        self.bulk_calls = 0
        #: Set by :meth:`from_label_column`; enables vectorised evaluation.
        self.label_column: Optional[str] = None
        self.positive_value: Any = True
        self._oracle_depth = 0

    @classmethod
    def from_label_column(
        cls,
        name: str,
        label_column: str,
        evaluation_cost: float = 3.0,
        positive_value: Any = True,
    ) -> "UserDefinedFunction":
        """A UDF that reveals a hidden label column (the paper's protocol)."""

        def reveal(row: Mapping[str, Any]) -> bool:
            if label_column not in row:
                raise KeyError(
                    f"row does not carry hidden label column {label_column!r}; "
                    "evaluate through Engine/Executor so hidden columns are included"
                )
            return row[label_column] == positive_value

        udf = cls(name=name, func=reveal, evaluation_cost=evaluation_cost)
        udf.label_column = label_column
        udf.positive_value = positive_value
        return udf

    @contextmanager
    def oracle_mode(self):
        """Side-effect-free evaluation for auditors and ground-truth readers.

        Inside the context, evaluations read the memo cache but never write
        it and never advance any counter — so peeking at the truth (which no
        real system could do for free) cannot make later *paid* evaluations
        look already-paid-for to serving-layer accounting.
        """
        self._oracle_depth += 1
        try:
            yield self
        finally:
            self._oracle_depth -= 1

    def evaluate_row(self, table: Table, row_id: int) -> bool:
        """Evaluate the UDF on one row of ``table`` (charges one call)."""
        if self._oracle_depth:
            if self.memoize and row_id in self._cache:
                return self._cache[row_id]
            return bool(self._func(table.row(row_id, include_hidden=True)))
        self.row_calls += 1
        if self.memoize and row_id in self._cache:
            self.cache_hits += 1
            return self._cache[row_id]
        row = table.row(row_id, include_hidden=True)
        result = bool(self._func(row))
        self.call_count += 1
        self.cache_misses += 1
        if self.memoize:
            self._cache[row_id] = result
        return result

    def evaluate_rows(self, table: Table, row_ids: Iterable[int]) -> np.ndarray:
        """Evaluate the UDF on many rows at once, returning a boolean array.

        Memoised rows are answered from the cache (counted as hits); only the
        remaining rows invoke the function.  Label-column UDFs take a
        vectorised fast path through :meth:`Table.column_array`; arbitrary
        callables fall back to per-row dict evaluation.  Counter semantics
        match :meth:`evaluate_row`: ``call_count``/``cache_misses`` advance
        once per actual function evaluation.
        """
        oracle = bool(self._oracle_depth)
        id_array = np.asarray(row_ids, dtype=np.intp)
        if not oracle:
            self.bulk_calls += 1
        if self.memoize and self._cache:
            ids = id_array.tolist()
            results = np.empty(len(ids), dtype=bool)
            pending_positions: List[int] = []
            pending_ids: List[int] = []
            for position, row_id in enumerate(ids):
                cached = self._cache.get(row_id)
                if cached is None:
                    pending_positions.append(position)
                    pending_ids.append(row_id)
                else:
                    results[position] = cached
            if not oracle:
                self.cache_hits += len(ids) - len(pending_ids)
        else:
            results = np.empty(len(id_array), dtype=bool)
            pending_positions = []
            pending_ids = id_array.tolist()
        if pending_ids:
            pending_array = np.asarray(pending_ids, dtype=np.intp)
            if self.label_column is not None and table.schema.has_column(self.label_column):
                labels = table.column_array(self.label_column, allow_hidden=True)
                fresh = np.asarray(
                    labels[pending_array] == self.positive_value, dtype=bool
                )
            else:
                fresh = np.fromiter(
                    (bool(self._func(table.row(r, include_hidden=True))) for r in pending_ids),
                    dtype=bool,
                    count=len(pending_ids),
                )
            if pending_positions:
                results[np.asarray(pending_positions, dtype=np.intp)] = fresh
            else:
                results[:] = fresh
            if not oracle:
                self.call_count += len(pending_ids)
                self.cache_misses += len(pending_ids)
                if self.memoize:
                    self._cache.update(zip(pending_ids, fresh.tolist()))
        return results

    def is_memoized(self, row_id: int) -> bool:
        """Whether the UDF value for ``row_id`` is already cached."""
        return self.memoize and row_id in self._cache

    def memoized_mask(self, row_ids: Iterable[int]) -> np.ndarray:
        """Boolean mask of rows whose UDF value is already memoised.

        Used by serving-accounting executors to charge only un-memoised rows
        without a per-row ``is_memoized`` call.
        """
        ids = np.asarray(row_ids, dtype=np.intp)
        if not self.memoize or not self._cache:
            return np.zeros(ids.size, dtype=bool)
        cache = self._cache
        return np.fromiter(
            (row_id in cache for row_id in ids.tolist()), dtype=bool, count=ids.size
        )

    def counter_snapshot(self) -> Dict[str, int]:
        """Memoisation counters as a plain dict (for result metadata)."""
        return {
            "calls": self.call_count,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_size": len(self._cache),
            "row_calls": self.row_calls,
            "bulk_calls": self.bulk_calls,
        }

    def counter_delta(self, before: Mapping[str, int]) -> Dict[str, int]:
        """Counter advance since a :meth:`counter_snapshot` was taken.

        Counters are plain (unlocked) attributes shared by everyone holding
        the UDF, so under concurrent execution a delta attributes whatever
        happened on the UDF in the window — treat per-request deltas as
        approximate when requests share a UDF across threads.
        """
        now = self.counter_snapshot()
        return {
            name: now[name] - before.get(name, 0)
            for name in ("calls", "cache_hits", "cache_misses", "row_calls", "bulk_calls")
        }

    def __call__(self, row: Mapping[str, Any]) -> bool:
        """Evaluate directly on a row dict (charges one call, no memoisation)."""
        self.call_count += 1
        self.cache_misses += 1
        self.row_calls += 1
        return bool(self._func(row))

    def reset(self) -> None:
        """Clear the memo cache and every counter."""
        self._cache.clear()
        self.call_count = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.row_calls = 0
        self.bulk_calls = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UserDefinedFunction({self.name!r}, cost={self.evaluation_cost})"


class UdfRegistry:
    """A name → UDF mapping, as a query engine would maintain."""

    def __init__(self) -> None:
        self._udfs: Dict[str, UserDefinedFunction] = {}

    def register(self, udf: UserDefinedFunction, replace: bool = False) -> None:
        """Register a UDF; refuses to silently overwrite unless ``replace``."""
        if udf.name in self._udfs and not replace:
            raise DuplicateObjectError(f"UDF {udf.name!r} already registered")
        self._udfs[udf.name] = udf

    def get(self, name: str) -> UserDefinedFunction:
        """Look up a UDF by name."""
        try:
            return self._udfs[name]
        except KeyError:
            raise UdfNotFoundError(name) from None

    def __contains__(self, name: object) -> bool:
        return name in self._udfs

    def __iter__(self) -> Iterator[UserDefinedFunction]:
        return iter(self._udfs.values())

    def __len__(self) -> int:
        return len(self._udfs)

    def names(self) -> list[str]:
        """Registered UDF names."""
        return list(self._udfs.keys())
