"""User-defined functions with cost accounting.

The paper charges ``o_e`` for every UDF evaluation and ``o_r`` for every tuple
retrieval.  :class:`CostLedger` tracks both so that an algorithm's total cost
``O = sum o_r (R+ + R-) + o_e (E+ + E-)`` can be read off after execution,
including the sampling phase (whose evaluations the paper explicitly counts).

:class:`UserDefinedFunction` wraps an arbitrary Python callable over a row
dict.  The common case in the reproduction is a UDF that simply reveals a
hidden ground-truth label column — exactly the simulation protocol of
Section 6.1 — but any callable works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Optional

from repro.db.errors import BudgetExhaustedError, DuplicateObjectError, UdfNotFoundError
from repro.db.table import Table


@dataclass
class CostLedger:
    """Accumulates retrieval and evaluation costs.

    Attributes
    ----------
    retrieval_cost:
        Cost ``o_r`` charged per retrieved tuple.
    evaluation_cost:
        Cost ``o_e`` charged per UDF evaluation.
    """

    retrieval_cost: float = 1.0
    evaluation_cost: float = 3.0
    retrieved_count: int = 0
    evaluated_count: int = 0
    _budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.retrieval_cost < 0 or self.evaluation_cost < 0:
            raise ValueError("costs must be non-negative")

    @property
    def total_cost(self) -> float:
        """Total cost charged so far."""
        return (
            self.retrieved_count * self.retrieval_cost
            + self.evaluated_count * self.evaluation_cost
        )

    @property
    def budget(self) -> Optional[float]:
        """Optional hard budget on total cost."""
        return self._budget

    def set_budget(self, budget: Optional[float]) -> None:
        """Install (or clear) a hard cost budget."""
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        self._budget = budget

    def charge_retrieval(self, count: int = 1) -> None:
        """Charge for ``count`` tuple retrievals."""
        self._check_budget(count * self.retrieval_cost)
        self.retrieved_count += count

    def charge_evaluation(self, count: int = 1) -> None:
        """Charge for ``count`` UDF evaluations."""
        self._check_budget(count * self.evaluation_cost)
        self.evaluated_count += count

    def _check_budget(self, additional: float) -> None:
        if self._budget is not None and self.total_cost + additional > self._budget + 1e-9:
            raise BudgetExhaustedError(self._budget, self.total_cost)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict snapshot for reports."""
        return {
            "retrieved": self.retrieved_count,
            "evaluated": self.evaluated_count,
            "retrieval_cost": self.retrieval_cost,
            "evaluation_cost": self.evaluation_cost,
            "total_cost": self.total_cost,
        }

    def reset(self) -> None:
        """Zero the counters (the unit costs and budget stay)."""
        self.retrieved_count = 0
        self.evaluated_count = 0


class UserDefinedFunction:
    """An expensive boolean UDF with call accounting.

    Parameters
    ----------
    name:
        UDF name (unique within a registry).
    func:
        Callable mapping a full row dict (hidden columns included) to a
        boolean.
    evaluation_cost:
        Cost charged per *distinct* evaluation (memoised repeats are free when
        ``memoize`` is true, mirroring the fact that a real system would cache
        a value it already paid for).
    memoize:
        Cache results per row id.
    """

    def __init__(
        self,
        name: str,
        func: Callable[[Mapping[str, Any]], bool],
        evaluation_cost: float = 3.0,
        memoize: bool = True,
    ):
        if evaluation_cost < 0:
            raise ValueError(f"evaluation_cost must be non-negative, got {evaluation_cost}")
        self.name = name
        self._func = func
        self.evaluation_cost = evaluation_cost
        self.memoize = memoize
        self._cache: Dict[int, bool] = {}
        self.call_count = 0

    @classmethod
    def from_label_column(
        cls,
        name: str,
        label_column: str,
        evaluation_cost: float = 3.0,
        positive_value: Any = True,
    ) -> "UserDefinedFunction":
        """A UDF that reveals a hidden label column (the paper's protocol)."""

        def reveal(row: Mapping[str, Any]) -> bool:
            if label_column not in row:
                raise KeyError(
                    f"row does not carry hidden label column {label_column!r}; "
                    "evaluate through Engine/Executor so hidden columns are included"
                )
            return row[label_column] == positive_value

        udf = cls(name=name, func=reveal, evaluation_cost=evaluation_cost)
        udf.label_column = label_column
        return udf

    def evaluate_row(self, table: Table, row_id: int) -> bool:
        """Evaluate the UDF on one row of ``table`` (charges one call)."""
        if self.memoize and row_id in self._cache:
            return self._cache[row_id]
        row = table.row(row_id, include_hidden=True)
        result = bool(self._func(row))
        self.call_count += 1
        if self.memoize:
            self._cache[row_id] = result
        return result

    def __call__(self, row: Mapping[str, Any]) -> bool:
        """Evaluate directly on a row dict (charges one call, no memoisation)."""
        self.call_count += 1
        return bool(self._func(row))

    def reset(self) -> None:
        """Clear the memo cache and call counter."""
        self._cache.clear()
        self.call_count = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UserDefinedFunction({self.name!r}, cost={self.evaluation_cost})"


class UdfRegistry:
    """A name → UDF mapping, as a query engine would maintain."""

    def __init__(self) -> None:
        self._udfs: Dict[str, UserDefinedFunction] = {}

    def register(self, udf: UserDefinedFunction, replace: bool = False) -> None:
        """Register a UDF; refuses to silently overwrite unless ``replace``."""
        if udf.name in self._udfs and not replace:
            raise DuplicateObjectError(f"UDF {udf.name!r} already registered")
        self._udfs[udf.name] = udf

    def get(self, name: str) -> UserDefinedFunction:
        """Look up a UDF by name."""
        try:
            return self._udfs[name]
        except KeyError:
            raise UdfNotFoundError(name) from None

    def __contains__(self, name: object) -> bool:
        return name in self._udfs

    def __iter__(self) -> Iterator[UserDefinedFunction]:
        return iter(self._udfs.values())

    def __len__(self) -> int:
        return len(self._udfs)

    def names(self) -> list[str]:
        """Registered UDF names."""
        return list(self._udfs.keys())
