"""Typed columns for the in-memory column store."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, List, Optional, Sequence

import numpy as np


class ColumnType(str, Enum):
    """Supported logical column types.

    ``CATEGORICAL`` columns are the candidates for the paper's correlated
    attribute ``A``; ``NUMERIC`` columns feed the logistic-regression virtual
    column; ``BOOLEAN`` columns typically hold hidden ground-truth labels.
    """

    CATEGORICAL = "categorical"
    NUMERIC = "numeric"
    BOOLEAN = "boolean"
    TEXT = "text"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def infer_column_type(values: Sequence[Any]) -> ColumnType:
    """Guess a :class:`ColumnType` from example values.

    Booleans map to ``BOOLEAN``, ints/floats to ``NUMERIC``, everything else
    to ``CATEGORICAL`` (strings with many distinct values are still treated as
    categorical; the column-selection logic applies its own distinct-value
    cap).
    """
    saw_numeric = False
    for value in values:
        if isinstance(value, (bool, np.bool_)):
            return ColumnType.BOOLEAN
        if isinstance(value, (int, float, np.integer, np.floating)):
            saw_numeric = True
        else:
            return ColumnType.CATEGORICAL
    return ColumnType.NUMERIC if saw_numeric else ColumnType.CATEGORICAL


@dataclass
class Column:
    """A named, typed column definition.

    Attributes
    ----------
    name:
        Column name, unique within a schema.
    column_type:
        Logical type of the values.
    hidden:
        Hidden columns hold ground-truth labels: the query layer refuses to
        read them except through a registered UDF, mirroring the paper's
        evaluation protocol.
    description:
        Optional human-readable description (used by dataset generators).
    """

    name: str
    column_type: ColumnType = ColumnType.CATEGORICAL
    hidden: bool = False
    description: str = ""
    _metadata: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"column name must be a non-empty string, got {self.name!r}")
        if isinstance(self.column_type, str):
            self.column_type = ColumnType(self.column_type)

    @property
    def is_categorical(self) -> bool:
        """Whether this column can serve as a grouping attribute."""
        return self.column_type in (ColumnType.CATEGORICAL, ColumnType.BOOLEAN)

    @property
    def is_numeric(self) -> bool:
        """Whether this column can feed a numeric feature to the ML layer."""
        return self.column_type == ColumnType.NUMERIC

    def validate_value(self, value: Any) -> None:
        """Raise ``ValueError`` when ``value`` does not fit the column type."""
        if value is None:
            return
        if self.column_type == ColumnType.NUMERIC:
            if isinstance(value, bool) or not isinstance(
                value, (int, float, np.integer, np.floating)
            ):
                raise ValueError(
                    f"column {self.name!r} is numeric but received {value!r}"
                )
        elif self.column_type == ColumnType.BOOLEAN:
            if not isinstance(value, (bool, np.bool_, int, np.integer)):
                raise ValueError(
                    f"column {self.name!r} is boolean but received {value!r}"
                )

    def with_metadata(self, **metadata: Any) -> "Column":
        """Return a copy of the column carrying extra metadata."""
        merged = dict(self._metadata)
        merged.update(metadata)
        return Column(
            name=self.name,
            column_type=self.column_type,
            hidden=self.hidden,
            description=self.description,
            _metadata=merged,
        )

    @property
    def metadata(self) -> dict:
        """Read-only view of the column metadata."""
        return dict(self._metadata)


def distinct_values(values: Iterable[Any]) -> List[Any]:
    """Distinct values of a column in first-appearance order."""
    seen = {}
    for value in values:
        if value not in seen:
            seen[value] = None
    return list(seen.keys())
