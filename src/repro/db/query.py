"""Select-query description.

The paper's running query is ``SELECT * FROM R(A, ID) WHERE f(ID) = 1`` with
user-supplied precision/recall/satisfaction constraints.  :class:`SelectQuery`
captures exactly that: a table name, an expensive predicate, optional cheap
pre-filters, and the accuracy constraints that the approximate evaluation
strategies must honour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.db.predicate import Predicate, UdfPredicate


@dataclass
class SelectQuery:
    """A selection query with one (or more) expensive UDF predicates.

    Attributes
    ----------
    table:
        Name of the table in the catalog.
    predicate:
        The expensive predicate (usually a :class:`UdfPredicate` or a
        conjunction containing one).
    cheap_predicates:
        Inexpensive predicates to apply before any UDF work; the multi-
        predicate extension notes that non-UDF predicates should always run
        first.
    alpha, beta, rho:
        Precision lower bound, recall lower bound and satisfaction
        probability.  ``alpha = beta = 1`` requests the exact answer.
    correlated_column:
        Optional explicit choice of the correlated attribute ``A``; ``None``
        lets the optimizer pick one (Section 4.4).
    strategy:
        Optional name of a registered evaluation strategy (see
        :meth:`repro.db.engine.Engine.register_strategy`).  ``None`` leaves
        strategy selection to the caller; an unknown name raises
        :class:`~repro.db.errors.UnsupportedQueryError` at execution time.
    """

    table: str
    predicate: Predicate
    cheap_predicates: List[Predicate] = field(default_factory=list)
    alpha: float = 1.0
    beta: float = 1.0
    rho: float = 0.95
    correlated_column: Optional[str] = None
    strategy: Optional[str] = None

    def __post_init__(self) -> None:
        for name, value in (("alpha", self.alpha), ("beta", self.beta)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 <= self.rho < 1.0:
            if self.rho == 1.0 and self.is_exact:
                # Exact queries may ask for certainty; probabilistic ones may not.
                pass
            else:
                raise ValueError(
                    f"rho must be in [0, 1) for approximate queries, got {self.rho}"
                )

    @property
    def is_exact(self) -> bool:
        """Whether the query demands perfect precision and recall."""
        return self.alpha >= 1.0 and self.beta >= 1.0

    @property
    def udf_predicates(self) -> List[UdfPredicate]:
        """All UDF predicates reachable from :attr:`predicate`."""
        found: List[UdfPredicate] = []
        stack = [self.predicate] + list(self.cheap_predicates)
        while stack:
            node = stack.pop()
            if isinstance(node, UdfPredicate):
                found.append(node)
            children = getattr(node, "children", None)
            if children:
                stack.extend(children)
            child = getattr(node, "child", None)
            if child is not None:
                stack.append(child)
        return found

    def describe(self) -> str:
        """A human-readable one-line description."""
        constraint = (
            "exact"
            if self.is_exact
            else f"precision>={self.alpha}, recall>={self.beta}, prob>={self.rho}"
        )
        return f"SELECT * FROM {self.table} WHERE {self.predicate!r} [{constraint}]"
