"""Query engine.

The engine executes :class:`~repro.db.query.SelectQuery` objects against a
:class:`~repro.db.catalog.Catalog`.  Exact queries are evaluated the obvious
way (retrieve and evaluate every candidate tuple).  Approximate queries are
delegated to a pluggable *evaluation strategy* — the paper's Intel-Sample
pipeline in :mod:`repro.core.pipeline` implements the strategy protocol — so
the database layer stays free of optimizer logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Set

from repro.db.catalog import Catalog
from repro.db.query import SelectQuery
from repro.db.table import Table
from repro.db.udf import CostLedger
from repro.stats.metrics import ResultQuality, result_quality


@dataclass
class QueryResult:
    """Result of running a select query.

    Attributes
    ----------
    row_ids:
        Row ids returned by the (possibly approximate) evaluation.
    ledger:
        The cost ledger charged during evaluation (sampling included).
    quality:
        Precision/recall against ground truth when the caller asked the engine
        to audit the result (only possible because the substrate knows the
        hidden labels); ``None`` otherwise.
    metadata:
        Free-form strategy diagnostics (chosen column, sample sizes, ...).
    """

    row_ids: List[int]
    ledger: CostLedger
    quality: Optional[ResultQuality] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def row_id_set(self) -> Set[int]:
        """The returned row ids as a set."""
        return set(self.row_ids)

    @property
    def total_cost(self) -> float:
        """Total charged cost."""
        return self.ledger.total_cost

    def __len__(self) -> int:
        return len(self.row_ids)


class EvaluationStrategy(Protocol):
    """Protocol implemented by approximate evaluation strategies."""

    def run(
        self, table: Table, query: SelectQuery, ledger: CostLedger
    ) -> "QueryResult":  # pragma: no cover - protocol definition
        """Evaluate ``query`` over ``table`` charging costs to ``ledger``."""
        ...


class Engine:
    """Executes select queries, exactly or through a pluggable strategy."""

    def __init__(
        self,
        catalog: Catalog,
        retrieval_cost: float = 1.0,
        evaluation_cost: float = 3.0,
    ):
        self.catalog = catalog
        self.retrieval_cost = retrieval_cost
        self.evaluation_cost = evaluation_cost

    def new_ledger(self) -> CostLedger:
        """A fresh cost ledger with this engine's unit costs."""
        return CostLedger(
            retrieval_cost=self.retrieval_cost,
            evaluation_cost=self.evaluation_cost,
        )

    # -- exact execution ---------------------------------------------------------
    def execute_exact(self, query: SelectQuery, ledger: Optional[CostLedger] = None) -> QueryResult:
        """Retrieve and evaluate every candidate tuple (perfect accuracy)."""
        table = self.catalog.table(query.table)
        ledger = ledger or self.new_ledger()
        candidates = self._apply_cheap_predicates(table, query)
        matched: List[int] = []
        for row_id in candidates:
            ledger.charge_retrieval()
            if query.predicate.evaluate(table, row_id, ledger):
                matched.append(row_id)
        return QueryResult(row_ids=matched, ledger=ledger)

    # -- approximate execution -----------------------------------------------------
    def execute(
        self,
        query: SelectQuery,
        strategy: Optional[EvaluationStrategy] = None,
        audit: bool = False,
    ) -> QueryResult:
        """Execute ``query``.

        Exact queries (or calls without a strategy) use exhaustive
        evaluation.  Otherwise the strategy runs with a fresh ledger.  With
        ``audit=True`` the engine additionally computes the ground-truth
        result (without charging any cost) and attaches precision/recall.
        """
        if query.is_exact or strategy is None:
            result = self.execute_exact(query)
        else:
            table = self.catalog.table(query.table)
            result = strategy.run(table, query, self.new_ledger())
        if audit:
            result.quality = self.audit(query, result)
        return result

    def audit(self, query: SelectQuery, result: QueryResult) -> ResultQuality:
        """Compare a result against the true answer without charging costs.

        This mirrors the paper's evaluation protocol: the experimenter knows
        every UDF value and can therefore measure the precision and recall an
        algorithm actually achieved.
        """
        truth = self.ground_truth(query)
        return result_quality(result.row_ids, truth)

    def ground_truth(self, query: SelectQuery) -> Set[int]:
        """The exact answer set, computed outside the cost model."""
        table = self.catalog.table(query.table)
        candidates = self._apply_cheap_predicates(table, query)
        free_ledger = CostLedger(retrieval_cost=0.0, evaluation_cost=0.0)
        return {
            row_id
            for row_id in candidates
            if query.predicate.evaluate(table, row_id, free_ledger)
        }

    # -- helpers --------------------------------------------------------------------
    def _apply_cheap_predicates(self, table: Table, query: SelectQuery) -> List[int]:
        row_ids = list(table.row_ids)
        for cheap in query.cheap_predicates:
            row_ids = [r for r in row_ids if cheap.evaluate(table, r)]
        return row_ids
