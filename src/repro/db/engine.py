"""Query engine.

The engine executes :class:`~repro.db.query.SelectQuery` objects against a
:class:`~repro.db.catalog.Catalog`.  Exact queries are evaluated the obvious
way (retrieve and evaluate every candidate tuple).  Approximate queries are
delegated to a pluggable *evaluation strategy* — the paper's Intel-Sample
pipeline in :mod:`repro.core.pipeline` implements the strategy protocol — so
the database layer stays free of optimizer logic.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Dict, FrozenSet, List, Optional, Protocol, Set, Union

import numpy as np

from repro.db.catalog import Catalog
from repro.db.errors import DuplicateObjectError, UnsupportedQueryError
from repro.db.query import SelectQuery
from repro.db.table import Table
from repro.resilience.deadline import check_deadline
from repro.db.udf import CostLedger
from repro.obs import metrics as _metrics
from repro.solvers.linear import InfeasibleProblemError
from repro.stats.metrics import ResultQuality, result_quality


def metadata_schema() -> Dict[str, str]:
    """The :attr:`QueryResult.metadata` contract, key by key.

    ``metadata`` is free-form by design — strategies attach their own
    diagnostics — but the keys the engine and serving layer themselves write
    follow a fixed contract.  This helper documents (and lets tests pin) the
    reserved keys:

    ==================  =========================================================
    Key                 Meaning
    ==================  =========================================================
    ``strategy``        How the answer was produced: ``"exact"`` or the
                        strategy's own name (e.g. ``"intel_sample"``).
    ``plan_cache``      Serving-layer plan-cache outcome for this query — one
                        of ``"hit"``, ``"miss"``, ``"refresh"`` or
                        ``"restored"`` (the first hit on an entry loaded from
                        durable storage after a restart; subsequent hits
                        report ``"hit"``).  Absent for queries that bypass
                        the service.
    ``fallback_reason`` Why an approximate plan was abandoned for exhaustive
                        evaluation (e.g. ``"infeasible constraints: ..."``);
                        absent when the plan ran as solved.
    ``session``         Serving-layer admission diagnostics: client id and
                        remaining budget (dict).
    ``stats_cache``     Which cached statistics the serving layer reused:
                        ``{"labeled_sample": ..., "sample_outcome": ...}``.
    ``udf_cache``       Per-UDF memo hit/miss deltas for exact scans (dict of
                        per-UDF counter deltas).
    ``coalesced``       ``True`` on results returned to async followers that
                        shared a leader's in-flight execution via
                        ``QueryService.submit_async`` (absent otherwise).
    ``degraded``        Why the serving layer executed this request on a
                        degraded path (e.g. ``"breaker_open"`` — the circuit
                        breaker kept it off the process pool); absent when
                        the request ran on its configured backend.
    ==================  =========================================================

    Returns the table above as a ``{key: description}`` dict so tests and
    tooling can check observed metadata keys against the contract.  The
    per-result metadata contract here has a service-wide sibling:
    ``repro.serving.config.SERVICE_STATS_SCHEMA`` documents the keys of the
    :meth:`repro.serving.QueryService.stats` snapshot the same way.
    """
    return {
        "strategy": "evaluation path: 'exact' or the strategy name",
        "plan_cache": (
            "serving plan-cache outcome: 'hit' | 'miss' | 'refresh' | "
            "'restored' (first hit on an entry restored from durable storage)"
        ),
        "fallback_reason": "why an approximate plan fell back to exhaustive",
        "session": "serving admission diagnostics (client id, budget)",
        "stats_cache": "which cached statistics the serving layer reused",
        "udf_cache": "per-UDF memo hit/miss deltas for exact scans",
        "coalesced": "True when an async follower shared a leader's result",
        "degraded": "why the request ran degraded (e.g. 'breaker_open')",
    }


@dataclass
class QueryResult:
    """Result of running a select query.

    Attributes
    ----------
    row_ids:
        Row ids returned by the (possibly approximate) evaluation — a python
        list, or a numpy array when produced by the parallel executor (same
        iteration/len/set semantics; the array form avoids materialising one
        python int per returned row on large results).
    ledger:
        The cost ledger charged during evaluation (sampling included).
    quality:
        Precision/recall against ground truth when the caller asked the engine
        to audit the result (only possible because the substrate knows the
        hidden labels); ``None`` otherwise.
    metadata:
        Free-form strategy diagnostics (chosen column, sample sizes, ...).
    """

    row_ids: Union[List[int], np.ndarray]
    ledger: CostLedger
    quality: Optional[ResultQuality] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    @cached_property
    def row_id_set(self) -> FrozenSet[int]:
        """The returned row ids as a read-only set (built once, then cached)."""
        if isinstance(self.row_ids, np.ndarray):
            return frozenset(self.row_ids.tolist())  # C-level int conversion
        return frozenset(self.row_ids)

    @property
    def total_cost(self) -> float:
        """Total charged cost."""
        return self.ledger.total_cost

    def __len__(self) -> int:
        return len(self.row_ids)


class EvaluationStrategy(Protocol):
    """Protocol implemented by approximate evaluation strategies."""

    def run(
        self, table: Table, query: SelectQuery, ledger: CostLedger
    ) -> "QueryResult":  # pragma: no cover - protocol definition
        """Evaluate ``query`` over ``table`` charging costs to ``ledger``."""
        ...


class Engine:
    """Executes select queries, exactly or through a pluggable strategy."""

    def __init__(
        self,
        catalog: Catalog,
        retrieval_cost: float = 1.0,
        evaluation_cost: float = 3.0,
    ):
        self.catalog = catalog
        self.retrieval_cost = retrieval_cost
        self.evaluation_cost = evaluation_cost
        self._strategies: Dict[str, EvaluationStrategy] = {}
        #: How many times a strategy let an :class:`InfeasibleProblemError`
        #: escape and the engine answered exhaustively instead.
        self.fallback_total = 0

    # -- strategy registry -------------------------------------------------------
    def register_strategy(
        self, name: str, strategy: EvaluationStrategy, replace: bool = False
    ) -> None:
        """Register an approximate evaluation strategy under ``name``.

        Registered names can be referenced from ``SelectQuery.strategy`` or
        passed as the ``strategy`` argument of :meth:`execute`.
        """
        if not callable(getattr(strategy, "run", None)):
            raise UnsupportedQueryError(
                strategy, available=self._strategies
            )
        if name in self._strategies and not replace:
            raise DuplicateObjectError(f"strategy {name!r} already registered")
        self._strategies[name] = strategy

    def strategy(self, name: str) -> EvaluationStrategy:
        """Look up a registered strategy by name."""
        try:
            return self._strategies[name]
        except KeyError:
            raise UnsupportedQueryError(name, available=self._strategies) from None

    def strategy_names(self) -> List[str]:
        """Names of all registered strategies."""
        return list(self._strategies.keys())

    def resolve_strategy(
        self,
        strategy: Union[str, EvaluationStrategy, None],
        query: Optional[SelectQuery] = None,
    ) -> Optional[EvaluationStrategy]:
        """Coerce a strategy argument (or the query's named strategy) to an object.

        Raises :class:`UnsupportedQueryError` — instead of a bare ``KeyError``
        or a later ``AttributeError`` — when the name is unknown or the object
        does not implement the strategy protocol.
        """
        if strategy is None and query is not None:
            strategy = query.strategy
        if strategy is None:
            return None
        if isinstance(strategy, str):
            return self.strategy(strategy)
        if not callable(getattr(strategy, "run", None)):
            raise UnsupportedQueryError(strategy, available=self._strategies)
        return strategy

    def new_ledger(self) -> CostLedger:
        """A fresh cost ledger with this engine's unit costs."""
        return CostLedger(
            retrieval_cost=self.retrieval_cost,
            evaluation_cost=self.evaluation_cost,
        )

    # -- exact execution ---------------------------------------------------------
    def execute_exact(self, query: SelectQuery, ledger: Optional[CostLedger] = None) -> QueryResult:
        """Retrieve and evaluate every candidate tuple (perfect accuracy).

        The scan is vectorised: retrievals are charged in one block and the
        predicate runs through its bulk :meth:`~repro.db.predicate.Predicate.
        evaluate_rows` path (column comparisons over cached arrays, batched
        UDF calls), with work counters identical to the historical per-row
        loop.  This is also the fallback :meth:`execute` uses on infeasible
        strategies, so it matters that it scales.  With a hard-budgeted
        ledger, exhaustion now stops before the scan's UDF work rather than
        mid-scan.
        """
        table = self.catalog.table(query.table)
        ledger = ledger or self.new_ledger()
        candidates = self._apply_cheap_predicates(table, query)
        udf_counters_before = self._udf_counters(query)
        if candidates.size:
            # Exact scans are the most expensive single step the engine
            # runs; check the request deadline before committing its charge.
            check_deadline("exact-scan")
            ledger.charge_retrieval(int(candidates.size))
            matched = candidates[query.predicate.evaluate_rows(table, candidates, ledger)]
        else:
            matched = candidates
        return QueryResult(
            row_ids=matched.tolist(),
            ledger=ledger,
            metadata={
                "strategy": "exact",
                "udf_cache": self._udf_counter_delta(query, udf_counters_before),
            },
        )

    # -- approximate execution -----------------------------------------------------
    def execute(
        self,
        query: SelectQuery,
        strategy: Union[str, EvaluationStrategy, None] = None,
        audit: bool = False,
    ) -> QueryResult:
        """Execute ``query``.

        ``strategy`` may be a strategy object, the name of a strategy
        registered via :meth:`register_strategy`, or ``None`` (falling back to
        the query's own named strategy, if any).  Exact queries — or calls
        that resolve to no strategy — use exhaustive evaluation.  Otherwise
        the strategy runs with a fresh ledger.  With ``audit=True`` the
        engine additionally computes the ground-truth result (without
        charging any cost) and attaches precision/recall.
        """
        resolved = self.resolve_strategy(strategy, query)
        if query.is_exact or resolved is None:
            result = self.execute_exact(query)
        else:
            table = self.catalog.table(query.table)
            try:
                result = resolved.run(table, query, self.new_ledger())
            except InfeasibleProblemError as error:
                # The built-in strategies fall back internally, but a custom
                # strategy may let a genuinely infeasible margined program
                # escape.  Exhaustive evaluation is always a correct answer,
                # so the engine absorbs the error rather than failing the
                # query; the metadata records why the plan was abandoned.
                self.fallback_total += 1
                registry = _metrics.get_registry()
                if registry.enabled:
                    registry.counter("repro_engine_fallback_total").inc()
                result = self.execute_exact(query)
                result.metadata["fallback_reason"] = f"infeasible constraints: {error}"
        if audit:
            result.quality = self.audit(query, result)
        return result

    def audit(self, query: SelectQuery, result: QueryResult) -> ResultQuality:
        """Compare a result against the true answer without charging costs.

        This mirrors the paper's evaluation protocol: the experimenter knows
        every UDF value and can therefore measure the precision and recall an
        algorithm actually achieved.
        """
        truth = self.ground_truth(query)
        return result_quality(result.row_ids, truth)

    def ground_truth(self, query: SelectQuery) -> Set[int]:
        """The exact answer set, computed outside the cost model.

        Runs every UDF in oracle mode so that peeking at the truth leaves no
        trace — no memo-cache writes, no counter advances.  Otherwise a
        single audit would make every row look already-paid-for to the
        serving layer's cost accounting.
        """
        table = self.catalog.table(query.table)
        candidates = self._apply_cheap_predicates(table, query)
        free_ledger = CostLedger(retrieval_cost=0.0, evaluation_cost=0.0)
        if not candidates.size:
            return set()
        with ExitStack() as stack:
            for predicate in query.udf_predicates:
                stack.enter_context(predicate.udf.oracle_mode())
            mask = query.predicate.evaluate_rows(table, candidates, free_ledger)
            return set(candidates[mask].tolist())

    # -- helpers --------------------------------------------------------------------
    def _udf_counters(self, query: SelectQuery) -> Dict[str, Dict[str, int]]:
        return {
            predicate.udf.name: predicate.udf.counter_snapshot()
            for predicate in query.udf_predicates
        }

    def _udf_counter_delta(
        self, query: SelectQuery, before: Dict[str, Dict[str, int]]
    ) -> Dict[str, Dict[str, int]]:
        """Per-UDF hit/miss counter deltas accumulated during this execution."""
        return {
            predicate.udf.name: predicate.udf.counter_delta(
                before.get(predicate.udf.name, {})
            )
            for predicate in query.udf_predicates
        }

    def _apply_cheap_predicates(self, table: Table, query: SelectQuery) -> np.ndarray:
        row_ids = np.arange(table.num_rows, dtype=np.intp)
        for cheap in query.cheap_predicates:
            if not row_ids.size:
                break
            row_ids = row_ids[cheap.evaluate_rows(table, row_ids)]
        return row_ids
