"""Predicate expressions for the small query layer.

Only what the paper needs: cheap column comparisons, an expensive
:class:`UdfPredicate` (``f(id) = 1``), and boolean combinators used by the
multi-predicate extension of Section 5.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, List

from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction

_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "in": lambda value, container: value in container,
}


class Predicate(ABC):
    """Base class for all predicates."""

    @abstractmethod
    def evaluate(self, table: Table, row_id: int, ledger: CostLedger | None = None) -> bool:
        """Evaluate the predicate on one row, charging costs to ``ledger``."""

    @property
    def is_expensive(self) -> bool:
        """Whether evaluating the predicate triggers UDF calls."""
        return any(True for _ in self.udfs())

    def udfs(self) -> Iterable[UserDefinedFunction]:
        """All UDFs referenced by this predicate (none by default)."""
        return ()

    # -- combinators ----------------------------------------------------------
    def __and__(self, other: "Predicate") -> "AndPredicate":
        return AndPredicate([self, other])

    def __or__(self, other: "Predicate") -> "OrPredicate":
        return OrPredicate([self, other])

    def __invert__(self) -> "NotPredicate":
        return NotPredicate(self)


class ColumnPredicate(Predicate):
    """A cheap comparison on a visible column, e.g. ``grade == 'A'``."""

    def __init__(self, column: str, op: str, value: Any):
        if op not in _OPERATORS:
            raise ValueError(
                f"unsupported operator {op!r}; expected one of {sorted(_OPERATORS)}"
            )
        self.column = column
        self.op = op
        self.value = value

    def evaluate(self, table: Table, row_id: int, ledger: CostLedger | None = None) -> bool:
        cell = table.value(row_id, self.column)
        return bool(_OPERATORS[self.op](cell, self.value))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnPredicate({self.column!r} {self.op} {self.value!r})"


class UdfPredicate(Predicate):
    """The expensive predicate ``f(row) == expected`` (default ``True``)."""

    def __init__(self, udf: UserDefinedFunction, expected: bool = True):
        self.udf = udf
        self.expected = expected

    def evaluate(self, table: Table, row_id: int, ledger: CostLedger | None = None) -> bool:
        if ledger is not None:
            ledger.charge_evaluation()
        return self.udf.evaluate_row(table, row_id) == self.expected

    def udfs(self) -> Iterable[UserDefinedFunction]:
        return (self.udf,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UdfPredicate({self.udf.name!r} == {self.expected})"


class AndPredicate(Predicate):
    """Conjunction of predicates; cheap children are evaluated first."""

    def __init__(self, children: List[Predicate]):
        if not children:
            raise ValueError("AndPredicate requires at least one child")
        self.children = list(children)

    def evaluate(self, table: Table, row_id: int, ledger: CostLedger | None = None) -> bool:
        ordered = sorted(self.children, key=lambda child: child.is_expensive)
        return all(child.evaluate(table, row_id, ledger) for child in ordered)

    def udfs(self) -> Iterable[UserDefinedFunction]:
        for child in self.children:
            yield from child.udfs()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AndPredicate({self.children!r})"


class OrPredicate(Predicate):
    """Disjunction of predicates; cheap children are evaluated first."""

    def __init__(self, children: List[Predicate]):
        if not children:
            raise ValueError("OrPredicate requires at least one child")
        self.children = list(children)

    def evaluate(self, table: Table, row_id: int, ledger: CostLedger | None = None) -> bool:
        ordered = sorted(self.children, key=lambda child: child.is_expensive)
        return any(child.evaluate(table, row_id, ledger) for child in ordered)

    def udfs(self) -> Iterable[UserDefinedFunction]:
        for child in self.children:
            yield from child.udfs()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OrPredicate({self.children!r})"


class NotPredicate(Predicate):
    """Negation of a predicate."""

    def __init__(self, child: Predicate):
        self.child = child

    def evaluate(self, table: Table, row_id: int, ledger: CostLedger | None = None) -> bool:
        return not self.child.evaluate(table, row_id, ledger)

    def udfs(self) -> Iterable[UserDefinedFunction]:
        return self.child.udfs()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NotPredicate({self.child!r})"
