"""Predicate expressions for the small query layer.

Only what the paper needs: cheap column comparisons, an expensive
:class:`UdfPredicate` (``f(id) = 1``), and boolean combinators used by the
multi-predicate extension of Section 5.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, List, Sequence

import numpy as np

from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction

_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "in": lambda value, container: value in container,
}


class Predicate(ABC):
    """Base class for all predicates."""

    @abstractmethod
    def evaluate(self, table: Table, row_id: int, ledger: CostLedger | None = None) -> bool:
        """Evaluate the predicate on one row, charging costs to ``ledger``."""

    def evaluate_rows(
        self,
        table: Table,
        row_ids: Sequence[int],
        ledger: CostLedger | None = None,
    ) -> np.ndarray:
        """Evaluate the predicate on many rows, returning a boolean mask.

        Charging semantics match calling :meth:`evaluate` once per row (same
        ledger totals, same short-circuiting of expensive children in the
        combinators), but the work is done in bulk: column comparisons
        vectorise over :meth:`Table.column_array` and UDF predicates go
        through the batched ``evaluate_rows`` API.  The base implementation
        is the per-row reference loop, so custom predicate classes stay
        correct without opting in.
        """
        ids = np.asarray(row_ids, dtype=np.intp)
        return np.fromiter(
            (self.evaluate(table, int(row_id), ledger) for row_id in ids),
            dtype=bool,
            count=int(ids.size),
        )

    @property
    def is_expensive(self) -> bool:
        """Whether evaluating the predicate triggers UDF calls."""
        return any(True for _ in self.udfs())

    def udfs(self) -> Iterable[UserDefinedFunction]:
        """All UDFs referenced by this predicate (none by default)."""
        return ()

    # -- combinators ----------------------------------------------------------
    def __and__(self, other: "Predicate") -> "AndPredicate":
        return AndPredicate([self, other])

    def __or__(self, other: "Predicate") -> "OrPredicate":
        return OrPredicate([self, other])

    def __invert__(self) -> "NotPredicate":
        return NotPredicate(self)


class ColumnPredicate(Predicate):
    """A cheap comparison on a visible column, e.g. ``grade == 'A'``."""

    def __init__(self, column: str, op: str, value: Any):
        if op not in _OPERATORS:
            raise ValueError(
                f"unsupported operator {op!r}; expected one of {sorted(_OPERATORS)}"
            )
        self.column = column
        self.op = op
        self.value = value

    def evaluate(self, table: Table, row_id: int, ledger: CostLedger | None = None) -> bool:
        cell = table.value(row_id, self.column)
        return bool(_OPERATORS[self.op](cell, self.value))

    def evaluate_rows(
        self,
        table: Table,
        row_ids: Sequence[int],
        ledger: CostLedger | None = None,
    ) -> np.ndarray:
        """Vectorised comparison over the cached column array.

        One gather plus one ufunc for homogeneous columns; anything numpy
        cannot compare faithfully (``in`` membership, incomparable operand
        types, object columns that yield non-elementwise results) falls back
        to a per-*cell* python loop over the gathered values — still no
        per-row dict construction.
        """
        ids = np.asarray(row_ids, dtype=np.intp)
        if not ids.size:
            return np.zeros(0, dtype=bool)
        # Residency-aware gather: shard-at-a-time on lazy durable tables.
        cells = table.gather_column(self.column, ids)
        compare = _OPERATORS[self.op]
        if self.op != "in":
            try:
                mask = compare(cells, self.value)
                if isinstance(mask, np.ndarray) and mask.shape == ids.shape:
                    return mask.astype(bool, copy=False)
            except TypeError:
                pass
        return np.fromiter(
            (bool(compare(cell, self.value)) for cell in cells.tolist()),
            dtype=bool,
            count=int(ids.size),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnPredicate({self.column!r} {self.op} {self.value!r})"


class UdfPredicate(Predicate):
    """The expensive predicate ``f(row) == expected`` (default ``True``)."""

    def __init__(self, udf: UserDefinedFunction, expected: bool = True):
        self.udf = udf
        self.expected = expected

    def evaluate(self, table: Table, row_id: int, ledger: CostLedger | None = None) -> bool:
        if ledger is not None:
            ledger.charge_evaluation()
        return self.udf.evaluate_row(table, row_id) == self.expected

    def evaluate_rows(
        self,
        table: Table,
        row_ids: Sequence[int],
        ledger: CostLedger | None = None,
    ) -> np.ndarray:
        """One bulk charge + one batched UDF call (same totals as per-row).

        With a hard-budgeted ledger the whole batch is charged up front, so
        exhaustion stops before any UDF work instead of mid-scan; callers
        that need the per-row charging order should use :meth:`evaluate`.
        """
        ids = np.asarray(row_ids, dtype=np.intp)
        if not ids.size:
            return np.zeros(0, dtype=bool)
        if ledger is not None:
            ledger.charge_evaluation(int(ids.size))
        outcomes = self.udf.evaluate_rows(table, ids)
        return outcomes if self.expected else ~outcomes

    def udfs(self) -> Iterable[UserDefinedFunction]:
        return (self.udf,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UdfPredicate({self.udf.name!r} == {self.expected})"


class AndPredicate(Predicate):
    """Conjunction of predicates; cheap children are evaluated first."""

    def __init__(self, children: List[Predicate]):
        if not children:
            raise ValueError("AndPredicate requires at least one child")
        self.children = list(children)

    def evaluate(self, table: Table, row_id: int, ledger: CostLedger | None = None) -> bool:
        ordered = sorted(self.children, key=lambda child: child.is_expensive)
        return all(child.evaluate(table, row_id, ledger) for child in ordered)

    def evaluate_rows(
        self,
        table: Table,
        row_ids: Sequence[int],
        ledger: CostLedger | None = None,
    ) -> np.ndarray:
        """Cheap children first; each child sees only still-alive rows.

        This reproduces the per-row short-circuit exactly: a row failed by a
        cheap child is never handed to (or charged by) an expensive child.
        """
        ids = np.asarray(row_ids, dtype=np.intp)
        mask = np.ones(ids.size, dtype=bool)
        for child in sorted(self.children, key=lambda child: child.is_expensive):
            if not mask.any():
                break
            mask[mask] = child.evaluate_rows(table, ids[mask], ledger)
        return mask

    def udfs(self) -> Iterable[UserDefinedFunction]:
        for child in self.children:
            yield from child.udfs()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AndPredicate({self.children!r})"


class OrPredicate(Predicate):
    """Disjunction of predicates; cheap children are evaluated first."""

    def __init__(self, children: List[Predicate]):
        if not children:
            raise ValueError("OrPredicate requires at least one child")
        self.children = list(children)

    def evaluate(self, table: Table, row_id: int, ledger: CostLedger | None = None) -> bool:
        ordered = sorted(self.children, key=lambda child: child.is_expensive)
        return any(child.evaluate(table, row_id, ledger) for child in ordered)

    def evaluate_rows(
        self,
        table: Table,
        row_ids: Sequence[int],
        ledger: CostLedger | None = None,
    ) -> np.ndarray:
        """Cheap children first; each child sees only still-undecided rows."""
        ids = np.asarray(row_ids, dtype=np.intp)
        mask = np.zeros(ids.size, dtype=bool)
        for child in sorted(self.children, key=lambda child: child.is_expensive):
            pending = ~mask
            if not pending.any():
                break
            mask[pending] = child.evaluate_rows(table, ids[pending], ledger)
        return mask

    def udfs(self) -> Iterable[UserDefinedFunction]:
        for child in self.children:
            yield from child.udfs()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OrPredicate({self.children!r})"


class NotPredicate(Predicate):
    """Negation of a predicate."""

    def __init__(self, child: Predicate):
        self.child = child

    def evaluate(self, table: Table, row_id: int, ledger: CostLedger | None = None) -> bool:
        return not self.child.evaluate(table, row_id, ledger)

    def evaluate_rows(
        self,
        table: Table,
        row_ids: Sequence[int],
        ledger: CostLedger | None = None,
    ) -> np.ndarray:
        return ~self.child.evaluate_rows(table, row_ids, ledger)

    def udfs(self) -> Iterable[UserDefinedFunction]:
        return self.child.udfs()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NotPredicate({self.child!r})"
