"""Hash index on the correlated attribute.

The paper's cost model "implies we have some type of index on A so we can
reach the examined tuples with constant cost independent of the discarded
tuples" (Section 2).  :class:`GroupIndex` is that index: it maps each distinct
value of a categorical column to the row ids carrying it.

The index is *array-native*: construction factorises the column into an
integer ``codes`` array (one group code per row, in first-appearance order of
the distinct values) plus one read-only row-id array per group.  Group
membership lookups, per-group gathers and label aggregation are then O(1)
vectorised operations instead of per-tuple dict walks, and the same index
object is shared between the engine, the pipeline and the serving layer via
:meth:`repro.db.table.Table.group_index` instead of being rebuilt per query.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.errors import ColumnNotFoundError
from repro.db.table import Table
from repro.obs import metrics as _metrics


def _dict_factorise(cells: Sequence[Any]) -> Tuple[List[Any], np.ndarray]:
    """Reference dict-based factorisation over the original python values.

    Byte-for-byte the grouping of :meth:`Table.group_row_ids` — used when
    numpy's ``unique`` would change semantics (unsortable mixed-type cells,
    or NaNs, which ``np.unique`` collapses while dict grouping keys each
    occurrence by object equality/identity).
    """
    lookup: Dict[Any, int] = {}
    codes = np.empty(len(cells), dtype=np.intp)
    values: List[Any] = []
    for position, value in enumerate(cells):
        code = lookup.get(value)
        if code is None:
            code = len(values)
            lookup[value] = code
            values.append(value)
        codes[position] = code
    return values, codes


def _factorise(
    array: np.ndarray, cells_supplier: Callable[[], Sequence[Any]]
) -> Tuple[List[Any], np.ndarray]:
    """Factorise a column into first-appearance-ordered values + codes.

    Returns ``(values, codes)`` where ``values[codes[i]] == array[i]`` and
    ``values`` preserves the order in which distinct values first appear —
    the same order the historical dict-based grouping produced.
    ``cells_supplier`` lazily yields the column's original python values for
    the reference fallback when numpy cannot reproduce dict semantics.
    """
    if array.dtype.kind == "f" and bool(np.isnan(array).any()):
        # np.unique merges NaNs into one group; the dict reference does not.
        return _dict_factorise(cells_supplier())
    try:
        uniques, first_index, inverse = np.unique(
            array, return_index=True, return_inverse=True
        )
    except TypeError:  # unsortable mixed-type object cells
        return _dict_factorise(cells_supplier())
    # np.unique sorts; remap sorted codes to first-appearance order.
    appearance_order = np.argsort(first_index, kind="stable")
    rank = np.empty(len(uniques), dtype=np.intp)
    rank[appearance_order] = np.arange(len(uniques), dtype=np.intp)
    codes = rank[inverse.reshape(-1)]
    values = [
        value.item() if isinstance(value, np.generic) else value
        for value in (uniques[i] for i in appearance_order)
    ]
    return values, codes


class GroupIndex:
    """Value → row-id index over one categorical column of a table.

    Prefer :meth:`repro.db.table.Table.group_index` over direct construction:
    the table keeps one cached index per column, shared by every caller, so
    repeated queries never re-group the same data.
    """

    #: Total number of index constructions since process start.  The serving
    #: benchmarks read this to prove the shared cache amortises index builds
    #: (a wall-clock-independent counter the CI gate can hold steady).
    builds_total: int = 0

    #: Total number of *incremental* extensions (see :meth:`extended_by`)
    #: since process start.  Extensions deliberately do not count as builds:
    #: the update benchmarks gate ``builds_total`` to prove appends never
    #: trigger a from-scratch refactorisation of a warm column.
    extensions_total: int = 0

    def __init__(self, table: Table, column: str, allow_hidden: bool = False):
        if not table.schema.has_column(column):
            raise ColumnNotFoundError(column, table.schema.column_names)
        self.table = table
        self.column = column
        array = table.column_array(column, allow_hidden=allow_hidden)
        values, codes = _factorise(
            array, lambda: table.column_values(column, allow_hidden=allow_hidden)
        )
        self._install(values, codes)

    def _install(
        self,
        values: List[Any],
        codes: np.ndarray,
        row_id_arrays: Optional[List[np.ndarray]] = None,
        count_build: bool = True,
    ) -> None:
        """Finish construction from factorised parts.

        ``row_id_arrays`` (per-group ascending global row ids) may be supplied
        by subclasses that already know the grouping — :class:`MergedGroupIndex`
        concatenates per-shard arrays instead of re-sorting the whole table —
        otherwise they are derived from ``codes`` with one stable argsort.
        ``count_build=False`` keeps :attr:`builds_total` untouched (the
        incremental-extension path advances :attr:`extensions_total` instead).
        """
        codes.setflags(write=False)
        self._values: List[Any] = values
        self._codes: np.ndarray = codes
        self._code_by_value: Dict[Any, int] = {
            value: code for code, value in enumerate(values)
        }
        if row_id_arrays is None:
            # One read-only row-id array per group, each ascending in row order
            # (stable sort over row position), sliced out of a single argsort.
            order = np.argsort(codes, kind="stable")
            boundaries = np.searchsorted(codes[order], np.arange(len(values) + 1))
            row_id_arrays = []
            for code in range(len(values)):
                rows = np.ascontiguousarray(
                    order[boundaries[code] : boundaries[code + 1]]
                )
                rows.setflags(write=False)
                row_id_arrays.append(rows)
        self._row_id_arrays: List[np.ndarray] = row_id_arrays
        self._sizes: List[int] = [int(rows.size) for rows in self._row_id_arrays]
        self._empty: np.ndarray = np.empty(0, dtype=np.intp)
        self._empty.setflags(write=False)
        if count_build:
            GroupIndex.builds_total += 1
            registry = _metrics.get_registry()
            if registry.enabled:
                registry.counter(
                    "repro_index_builds_total", column=self.column
                ).inc()

    # -- lookup -----------------------------------------------------------------
    @property
    def values(self) -> List[Any]:
        """Distinct indexed values (group keys), in first-appearance order."""
        return list(self._values)

    @property
    def num_groups(self) -> int:
        """Number of distinct groups."""
        return len(self._values)

    @property
    def codes(self) -> np.ndarray:
        """Read-only per-row group codes (``values[codes[i]]`` is row i's key).

        The codes array is what makes shared statistics cheap: labelling a
        sample for *all* candidate columns at once is one fancy-index per
        column instead of one dict walk per (column, row) pair.
        """
        return self._codes

    def code_of(self, value: Any) -> int:
        """The integer group code for ``value`` (-1 when absent)."""
        return self._code_by_value.get(value, -1)

    def codes_for_rows(self, row_ids: Sequence[int]) -> np.ndarray:
        """Group codes of ``row_ids`` in one vectorised gather."""
        return self._codes[np.asarray(row_ids, dtype=np.intp)]

    def row_ids(self, value: Any) -> np.ndarray:
        """Row ids in the group for ``value`` as a cached, read-only array.

        The array is built once at construction and shared by every caller
        (empty when the value is absent); callers must not write to it.
        """
        code = self._code_by_value.get(value)
        if code is None:
            return self._empty
        return self._row_id_arrays[code]

    def row_id_array(self, value: Any) -> np.ndarray:
        """Alias of :meth:`row_ids`, kept for the serving layer's vocabulary."""
        return self.row_ids(value)

    def group_size(self, value: Any) -> int:
        """Number of tuples in the group for ``value`` (``t_a``)."""
        code = self._code_by_value.get(value)
        return 0 if code is None else self._sizes[code]

    def group_sizes(self) -> Dict[Any, int]:
        """All group sizes keyed by value."""
        return dict(zip(self._values, self._sizes))

    def size_array(self) -> np.ndarray:
        """Group sizes as an array aligned with :attr:`values` order."""
        return np.asarray(self._sizes, dtype=np.intp)

    def __contains__(self, value: object) -> bool:
        return value in self._code_by_value

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def items(self) -> Iterator[Tuple[Any, np.ndarray]]:
        """Iterate ``(value, row_ids)`` pairs over cached read-only arrays."""
        return zip(self._values, self._row_id_arrays)

    def total_rows(self) -> int:
        """Total number of indexed rows."""
        return int(self._codes.size)

    def span_boundaries(self) -> Tuple[int, ...]:
        """Contiguous row-id spans the index naturally decomposes into.

        A monolithic index is one span ``(0, total_rows)``; a
        :class:`MergedGroupIndex` reports its shard boundaries.  The parallel
        executor partitions work along these spans — thanks to its
        position-addressable coin streams the partition never changes the
        result, only where the work runs.
        """
        return (0, self.total_rows())

    # -- incremental maintenance -------------------------------------------------
    def _extended_parts(
        self,
        delta_array: np.ndarray,
        delta_cells_supplier: Callable[[], Sequence[Any]],
    ) -> Tuple[List[Any], np.ndarray, List[np.ndarray]]:
        """Factorise only the appended rows and merge against the code table.

        Returns the ``(values, codes, row_id_arrays)`` of the index covering
        the old rows plus the delta.  Work is proportional to the delta (plus
        one O(n) code-array concatenation): unseen delta values are appended
        to the value list in their delta first-appearance order — exactly
        where a from-scratch factorisation of the concatenated column would
        put them — and only groups touched by the delta get a new row-id
        array; untouched groups keep sharing their existing (read-only)
        arrays.
        """
        old_total = int(self._codes.size)
        delta_values, local_codes = _factorise(delta_array, delta_cells_supplier)
        values = list(self._values)
        code_by_value = dict(self._code_by_value)
        remap = np.empty(len(delta_values), dtype=np.intp)
        for local_code, value in enumerate(delta_values):
            merged_code = code_by_value.get(value)
            if merged_code is None:
                merged_code = len(values)
                code_by_value[value] = merged_code
                values.append(value)
            remap[local_code] = merged_code
        delta_codes = remap[local_codes] if local_codes.size else local_codes
        codes = np.concatenate([self._codes, delta_codes])

        row_id_arrays = list(self._row_id_arrays)
        row_id_arrays.extend(self._empty for _ in range(len(values) - len(row_id_arrays)))
        if delta_codes.size:
            order = np.argsort(delta_codes, kind="stable")
            boundaries = np.searchsorted(
                delta_codes[order], np.arange(len(values) + 1)
            )
            for code in range(len(values)):
                lo, hi = int(boundaries[code]), int(boundaries[code + 1])
                if hi <= lo:
                    continue
                addition = order[lo:hi] + old_total
                base = row_id_arrays[code]
                rows = (
                    np.concatenate([base, addition])
                    if base.size
                    else np.ascontiguousarray(addition)
                )
                rows.setflags(write=False)
                row_id_arrays[code] = rows
        return values, codes, row_id_arrays

    def extended_by(
        self,
        delta_array: np.ndarray,
        delta_cells_supplier: Callable[[], Sequence[Any]],
    ) -> "GroupIndex":
        """A new index covering the indexed rows plus an appended delta.

        The extension is *exactly* equivalent to rebuilding the index over
        the concatenated column (pinned by Hypothesis property tests) but
        factorises only the delta; the original index object is untouched,
        so concurrent readers holding it keep a consistent (pre-append)
        view.  Does not advance :attr:`builds_total` — incremental work is
        counted on :attr:`extensions_total`.
        """
        extended = GroupIndex.__new__(GroupIndex)
        extended.table = self.table
        extended.column = self.column
        extended._install(
            *self._extended_parts(delta_array, delta_cells_supplier),
            count_build=False,
        )
        GroupIndex.extensions_total += 1
        registry = _metrics.get_registry()
        if registry.enabled:
            registry.counter("repro_index_extensions_total", column=self.column).inc()
        return extended

    def label_counts(
        self, row_ids: Sequence[int], labels: Optional[Sequence[bool]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-group ``(totals, positives)`` for a labelled subset of rows.

        ``row_ids`` are the labelled rows and ``labels`` their boolean UDF
        outcomes (``None`` counts every row as positive).  Both returned
        arrays align with :attr:`values` order.  One ``bincount`` per array —
        this is the factorised aggregation that lets every candidate column
        share a single labelled sample during column selection.  Row ids
        outside the indexed table are ignored (matching the historical
        membership-dict grouping, which skipped unknown rows).
        """
        ids = np.asarray(row_ids, dtype=np.intp)
        in_range = (ids >= 0) & (ids < self._codes.size)
        if not in_range.all():
            ids = ids[in_range]
            if labels is not None:
                labels = np.asarray(labels, dtype=bool)[in_range]
        codes = self.codes_for_rows(ids)
        totals = np.bincount(codes, minlength=self.num_groups)
        if labels is None:
            positives = totals.copy()
        else:
            positives = np.bincount(
                codes,
                weights=np.asarray(labels, dtype=float),
                minlength=self.num_groups,
            ).astype(np.intp)
        return totals, positives

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GroupIndex(table={self.table.name!r}, column={self.column!r}, "
            f"groups={self.num_groups})"
        )


class MergedGroupIndex(GroupIndex):
    """Exact concatenation of per-shard group indexes.

    Built by :meth:`repro.db.sharding.ShardedTable.group_index` from one
    :class:`GroupIndex` per shard.  Every derived statistic is an exact
    merge — group keys appear in global first-appearance order (each shard's
    values are already in local first-appearance order, and shards are
    concatenated in row order), ``codes`` is the concatenation of the shards'
    codes remapped to global codes, and each group's row-id array is the
    offset-shifted concatenation of its per-shard arrays (ascending, since
    shards cover contiguous ascending row ranges).  Property tests pin all of
    it equal to the :class:`GroupIndex` of the equivalent monolithic table,
    so optimizers and executors cannot tell a sharded table apart from an
    unsharded one.
    """

    def __init__(
        self,
        table: Table,
        column: str,
        shard_indexes: Sequence[GroupIndex],
        offsets: Sequence[int],
    ):
        if len(offsets) != len(shard_indexes) + 1:
            raise ValueError(
                f"expected {len(shard_indexes) + 1} offsets for "
                f"{len(shard_indexes)} shards, got {len(offsets)}"
            )
        self.table = table
        self.column = column
        self.shard_indexes: List[GroupIndex] = list(shard_indexes)
        self._offsets: Tuple[int, ...] = tuple(int(o) for o in offsets)

        values: List[Any] = []
        code_by_value: Dict[Any, int] = {}
        remaps: List[np.ndarray] = []
        for shard_index in self.shard_indexes:
            remap = np.empty(shard_index.num_groups, dtype=np.intp)
            for local_code, value in enumerate(shard_index._values):
                merged_code = code_by_value.get(value)
                if merged_code is None:
                    merged_code = len(values)
                    code_by_value[value] = merged_code
                    values.append(value)
                remap[local_code] = merged_code
            remaps.append(remap)

        if self.shard_indexes:
            codes = np.concatenate(
                [
                    remap[shard_index.codes]
                    for shard_index, remap in zip(self.shard_indexes, remaps)
                ]
            ).astype(np.intp, copy=False)
        else:
            codes = np.empty(0, dtype=np.intp)

        row_id_arrays: List[np.ndarray] = []
        for value in values:
            parts = [
                shard_index.row_ids(value) + offset
                for shard_index, offset in zip(self.shard_indexes, self._offsets)
                if shard_index.group_size(value)
            ]
            rows = (
                np.concatenate(parts).astype(np.intp, copy=False)
                if parts
                else np.empty(0, dtype=np.intp)
            )
            rows.setflags(write=False)
            row_id_arrays.append(rows)

        self._install(values, codes, row_id_arrays)

    @property
    def num_shards(self) -> int:
        """Number of merged shard indexes."""
        return len(self.shard_indexes)

    def span_boundaries(self) -> Tuple[int, ...]:
        """The shard boundaries this index was merged along."""
        return self._offsets

    # -- incremental maintenance -------------------------------------------------
    def extended_by(
        self,
        delta_array: np.ndarray,
        delta_cells_supplier: Callable[[], Sequence[Any]],
        tail_index: Optional[GroupIndex] = None,
    ) -> "MergedGroupIndex":
        """Extend the merged index with rows appended to the *tail* shard.

        Appends land at the global end of the table, so the delta path is
        the same first-appearance-preserving merge as
        :meth:`GroupIndex.extended_by`; additionally the last span boundary
        grows by the delta and ``tail_index`` (the tail shard's own, already
        extended index) replaces the stale per-shard entry.
        """
        extended = MergedGroupIndex.__new__(MergedGroupIndex)
        extended.table = self.table
        extended.column = self.column
        shard_indexes = list(self.shard_indexes)
        if tail_index is not None and shard_indexes:
            shard_indexes[-1] = tail_index
        extended.shard_indexes = shard_indexes
        offsets = list(self._offsets)
        offsets[-1] += int(np.asarray(delta_array).size)
        extended._offsets = tuple(offsets)
        extended._install(
            *self._extended_parts(delta_array, delta_cells_supplier),
            count_build=False,
        )
        GroupIndex.extensions_total += 1
        registry = _metrics.get_registry()
        if registry.enabled:
            registry.counter("repro_index_extensions_total", column=self.column).inc()
        return extended

    def resharded(
        self, offsets: Sequence[int], shard_indexes: Sequence[GroupIndex]
    ) -> "MergedGroupIndex":
        """The same index data over a new span decomposition.

        Used after a tail seal/re-chunk: re-chunking never reorders rows, so
        values, codes and per-group row arrays are shared as-is; only the
        span boundaries (and the per-shard index list) change.
        """
        bounds = tuple(int(o) for o in offsets)
        if len(bounds) != len(shard_indexes) + 1:
            raise ValueError(
                f"expected {len(shard_indexes) + 1} offsets for "
                f"{len(shard_indexes)} shards, got {len(bounds)}"
            )
        if bounds[-1] != self.total_rows():
            raise ValueError(
                f"new offsets cover {bounds[-1]} rows but the index holds "
                f"{self.total_rows()}"
            )
        clone = MergedGroupIndex.__new__(MergedGroupIndex)
        clone.table = self.table
        clone.column = self.column
        clone.shard_indexes = list(shard_indexes)
        clone._offsets = bounds
        clone._values = self._values
        clone._codes = self._codes
        clone._code_by_value = self._code_by_value
        clone._row_id_arrays = self._row_id_arrays
        clone._sizes = self._sizes
        clone._empty = self._empty
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MergedGroupIndex(table={self.table.name!r}, column={self.column!r}, "
            f"groups={self.num_groups}, shards={self.num_shards})"
        )
