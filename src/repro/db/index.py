"""Hash index on the correlated attribute.

The paper's cost model "implies we have some type of index on A so we can
reach the examined tuples with constant cost independent of the discarded
tuples" (Section 2).  :class:`GroupIndex` is that index: it maps each distinct
value of a categorical column to the row ids carrying it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List

import numpy as np

from repro.db.errors import ColumnNotFoundError
from repro.db.table import Table


class GroupIndex:
    """Value → row-id index over one categorical column of a table."""

    def __init__(self, table: Table, column: str, allow_hidden: bool = False):
        if not table.schema.has_column(column):
            raise ColumnNotFoundError(column, table.schema.column_names)
        self.table = table
        self.column = column
        self._groups: Dict[Any, List[int]] = table.group_row_ids(
            column, allow_hidden=allow_hidden
        )
        self._arrays: Dict[Any, np.ndarray] = {}

    # -- lookup -----------------------------------------------------------------
    @property
    def values(self) -> List[Any]:
        """Distinct indexed values (group keys), in first-appearance order."""
        return list(self._groups.keys())

    @property
    def num_groups(self) -> int:
        """Number of distinct groups."""
        return len(self._groups)

    def row_ids(self, value: Any) -> List[int]:
        """Row ids in the group for ``value`` (empty list when absent)."""
        return list(self._groups.get(value, []))

    def row_id_array(self, value: Any) -> np.ndarray:
        """Row ids in the group for ``value`` as a cached, read-only array.

        Groups never change after construction, so batch executors and
        vectorised statistics can share one array per group without copying.
        """
        array = self._arrays.get(value)
        if array is None:
            array = np.asarray(self._groups.get(value, ()), dtype=np.intp)
            array.setflags(write=False)
            self._arrays[value] = array
        return array

    def group_size(self, value: Any) -> int:
        """Number of tuples in the group for ``value`` (``t_a``)."""
        return len(self._groups.get(value, ()))

    def group_sizes(self) -> Dict[Any, int]:
        """All group sizes keyed by value."""
        return {value: len(ids) for value, ids in self._groups.items()}

    def __contains__(self, value: object) -> bool:
        return value in self._groups

    def __iter__(self) -> Iterator[Any]:
        return iter(self._groups)

    def items(self) -> Iterator[tuple[Any, List[int]]]:
        """Iterate ``(value, row_ids)`` pairs."""
        for value, ids in self._groups.items():
            yield value, list(ids)

    def total_rows(self) -> int:
        """Total number of indexed rows."""
        return sum(len(ids) for ids in self._groups.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GroupIndex(table={self.table.name!r}, column={self.column!r}, "
            f"groups={self.num_groups})"
        )
