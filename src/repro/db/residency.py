"""Bounded-memory residency for durable column segments.

PR 9 made storage durable; this module makes memory a first-class,
*enforced* budget on top of it.  A :class:`ResidencyManager` tracks every
mapped column segment (charging actual ``nbytes``), serves columns through
lazy per-shard :class:`SegmentHandle` objects — ``TableStore.open`` with a
manager returns stubs whose segments map on first touch, full block-CRC
verified once per map — and evicts clean mappings LRU when the byte budget
is exceeded.  Pin counting keeps an in-flight span's columns resident for
the duration of the pass; because results are assembled by global row id
(never by visit order), eviction order is bitwise-invisible to answers.

The memory-safety model is deliberately simple: "eviction" means the
manager drops *its* reference to the mapped array.  Any array a caller
already holds stays valid (the memmap lives while referenced); pinning
exists for budget honesty (a pinned segment is never double-faulted
mid-gather) and churn control, not to keep pointers alive.  Peak resident
bytes therefore never exceed ``budget + the pinned columns of one shard``
— the acceptance envelope for out-of-core serving.

Degradation order under pressure (wired by the serving layer):

1. **caches** — a ``high`` watermark callback shrinks the service's plan /
   statistics caches;
2. **shedding** — ``critical`` (pins holding residency over budget) sheds
   new admissions through the existing typed ``Overloaded`` path;
3. **breaker** — repeated ``segment_map`` failures trip a per-table
   circuit breaker and the table degrades to rebuilt-in-memory operation
   (:meth:`LazySegmentTable._materialise`), trading memory for liveness.

Fault sites (:mod:`repro.resilience.faults`): ``segment_map`` fires before
each first-touch map (one retry, then a typed
:class:`~repro.db.errors.SegmentMapError`), ``segment_evict`` fires inside
eviction (the logical drop still completes, so an injected evict fault can
never leak a mapping).  Counters, a resident-bytes gauge and a map-latency
histogram are mirrored into :mod:`repro.obs` when the registry is enabled.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.db.errors import (
    ColumnNotFoundError,
    CorruptSegmentError,
    SchemaMismatchError,
    SegmentMapError,
)
from repro.db.schema import Schema
from repro.db.sharding import ShardedTable
from repro.db.shm import ColumnBlock, SpanExport
from repro.db.storage.segments import read_segment
from repro.db.table import Table
from repro.obs import metrics as _metrics
from repro.resilience import faults as _faults
from repro.resilience.breaker import CLOSED, CircuitBreaker

#: Pressure levels reported to watermark callbacks, in escalation order.
PRESSURE_LEVELS = ("ok", "high", "critical")

#: Name of the map-latency histogram mirrored into :mod:`repro.obs`.
MAP_LATENCY_HISTOGRAM = "repro_residency_map_latency_seconds"

# Module-level counters, mirroring repro.db.storage.store: always-on plain
# ints (asserted exactly by tests and benchmarks), mirrored to the opt-in
# registry when it is enabled.
_COUNTERS: Dict[str, int] = {
    "segments_mapped": 0,
    "evictions": 0,
    "refaults": 0,
    "map_faults": 0,
    "evict_faults": 0,
    "tables_materialised": 0,
    "tables_degraded": 0,
}
_COUNTER_LOCK = threading.Lock()

#: Every live manager, weakly held: the test-suite leak gate sums resident
#: and pinned state across managers and asserts zero once owners are gone.
_MANAGERS: "weakref.WeakSet[ResidencyManager]" = weakref.WeakSet()


def _count(name: str, amount: int = 1) -> None:
    with _COUNTER_LOCK:
        _COUNTERS[name] += amount
    registry = _metrics.get_registry()
    if registry.enabled:
        registry.counter(f"repro_residency_{name}_total").inc(amount)


def residency_counters() -> Dict[str, int]:
    """A snapshot of the module-wide residency counters."""
    with _COUNTER_LOCK:
        return dict(_COUNTERS)


def reset_residency_counters() -> None:
    """Zero the module-wide counters (benchmark/test isolation)."""
    with _COUNTER_LOCK:
        for key in _COUNTERS:
            _COUNTERS[key] = 0


def resident_bytes_total() -> int:
    """Resident mapped bytes summed over every live manager (leak gate)."""
    return sum(manager.resident_bytes for manager in list(_MANAGERS))


def pinned_segments_total() -> int:
    """Pinned segments summed over every live manager (leak gate)."""
    return sum(manager.pinned_segments for manager in list(_MANAGERS))


class ResidencyManager:
    """LRU residency tracking for mapped column segments under a byte budget.

    ``budget_bytes=None`` means unbounded (track, never evict).  The
    ``watermark`` fraction marks the ``high`` pressure level; residency
    held *over* budget by pins is ``critical``.  Pressure callbacks are
    edge-triggered — called once per level change, outside the lock — so a
    service can shrink caches on ``high`` and shed load on ``critical``
    without polling.

    Thread safe.  All eviction is *clean*: segments are read-only maps of
    committed files, so dropping one never loses data — the next touch
    refaults it (full CRC re-verified by :func:`read_segment`).
    """

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        watermark: float = 0.9,
    ):
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        if not 0.0 < watermark <= 1.0:
            raise ValueError(f"watermark must be in (0, 1], got {watermark}")
        self.watermark = float(watermark)
        self._budget = budget_bytes
        self._lock = threading.RLock()
        self._lru: "OrderedDict[SegmentHandle, bool]" = OrderedDict()
        self._resident_bytes = 0
        self._peak_resident_bytes = 0
        self._maps = 0
        self._evictions = 0
        self._refaults = 0
        self._map_faults = 0
        self._evict_faults = 0
        self._map_seconds = 0.0
        self._level = "ok"
        self._callbacks: List[Callable[[str], None]] = []
        _MANAGERS.add(self)

    # -- observation -----------------------------------------------------------
    @property
    def budget_bytes(self) -> Optional[int]:
        return self._budget

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._resident_bytes

    @property
    def peak_resident_bytes(self) -> int:
        with self._lock:
            return self._peak_resident_bytes

    @property
    def mapped_segments(self) -> int:
        with self._lock:
            return len(self._lru)

    @property
    def pinned_segments(self) -> int:
        with self._lock:
            return sum(1 for handle in self._lru if handle.pin_count > 0)

    @property
    def pressure_level(self) -> str:
        with self._lock:
            return self._level

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view for ``stats().storage["residency"]``."""
        with self._lock:
            return {
                "budget_bytes": self._budget,
                "resident_bytes": self._resident_bytes,
                "peak_resident_bytes": self._peak_resident_bytes,
                "mapped_segments": len(self._lru),
                "pinned_segments": sum(
                    1 for handle in self._lru if handle.pin_count > 0
                ),
                "pressure_level": self._level,
                "maps": self._maps,
                "evictions": self._evictions,
                "refaults": self._refaults,
                "map_faults": self._map_faults,
                "evict_faults": self._evict_faults,
                "map_seconds_total": self._map_seconds,
            }

    # -- configuration ---------------------------------------------------------
    def set_budget(self, budget_bytes: Optional[int]) -> None:
        """Change the byte budget; shrinking evicts immediately."""
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        with self._lock:
            self._budget = budget_bytes
        self._enforce()

    def add_pressure_callback(self, callback: Callable[[str], None]) -> None:
        """Register an edge-triggered watermark callback ``fn(level)``."""
        with self._lock:
            self._callbacks.append(callback)

    # -- residency bookkeeping (called by SegmentHandle) -----------------------
    def _register(self, handle: "SegmentHandle", map_seconds: float) -> None:
        """Charge a freshly mapped handle and enforce the budget."""
        with self._lock:
            refault = handle.ever_mapped
            handle.ever_mapped = True
            if handle not in self._lru:
                self._lru[handle] = True
                self._resident_bytes += handle.nbytes
            self._lru.move_to_end(handle)
            if self._resident_bytes > self._peak_resident_bytes:
                self._peak_resident_bytes = self._resident_bytes
            self._maps += 1
            self._map_seconds += map_seconds
            if refault:
                self._refaults += 1
                _count("refaults")
            _count("segments_mapped")
            self._set_gauge()
        registry = _metrics.get_registry()
        if registry.enabled:
            registry.histogram(
                MAP_LATENCY_HISTOGRAM, buckets=_metrics.DEFAULT_LATENCY_BUCKETS
            ).observe(map_seconds)
        self._enforce()

    def _touch(self, handle: "SegmentHandle") -> None:
        with self._lock:
            if handle in self._lru:
                self._lru.move_to_end(handle)

    def _pin(self, handle: "SegmentHandle") -> None:
        with self._lock:
            handle.pin_count += 1

    def _unpin(self, handle: "SegmentHandle") -> None:
        with self._lock:
            handle.pin_count = max(0, handle.pin_count - 1)
        # A pin may have been the only thing holding residency over budget.
        self._enforce()

    def _record_map_fault(self) -> None:
        with self._lock:
            self._map_faults += 1
        _count("map_faults")

    # -- eviction --------------------------------------------------------------
    def _enforce(self) -> None:
        """Evict unpinned LRU mappings until residency fits the budget."""
        with self._lock:
            if self._budget is not None:
                while self._resident_bytes > self._budget:
                    victim = next(
                        (h for h in self._lru if h.pin_count == 0), None
                    )
                    if victim is None:
                        break  # only pins remain: over budget, 'critical'
                    self._evict_locked(victim)
        self._notify()

    def _evict_locked(self, handle: "SegmentHandle") -> None:
        try:
            _faults.maybe_fire(_faults.active_plan(), "segment_evict")
        except _faults.InjectedFault:
            # An injected evict fault models bookkeeping trouble; the
            # invariant under test is *zero leaked mappings*, so the
            # logical drop still completes below and results are
            # untouched (the mapping was clean and read-only).
            self._evict_faults += 1
            _count("evict_faults")
        self._lru.pop(handle, None)
        self._resident_bytes -= handle.nbytes
        handle._array = None
        self._evictions += 1
        _count("evictions")
        self._set_gauge()

    def evict_all(self) -> int:
        """Drop every unpinned mapping (service ``close()``); returns count."""
        dropped = 0
        with self._lock:
            for handle in list(self._lru):
                if handle.pin_count == 0:
                    self._evict_locked(handle)
                    dropped += 1
        self._notify()
        return dropped

    def discard(self, handle: "SegmentHandle") -> None:
        """Forget a handle entirely (its table materialised or closed).

        Unlike eviction this ignores pins and does not fire the
        ``segment_evict`` site: the handle is leaving the residency domain,
        not being pressured out of it.
        """
        with self._lock:
            if handle in self._lru:
                self._lru.pop(handle)
                self._resident_bytes -= handle.nbytes
                self._set_gauge()
            handle._array = None
        self._notify()

    # -- pressure --------------------------------------------------------------
    def _compute_level(self) -> str:
        if self._budget is None:
            return "ok"
        if self._resident_bytes > self._budget:
            return "critical"
        if self._resident_bytes >= self.watermark * self._budget:
            return "high"
        return "ok"

    def _notify(self) -> None:
        with self._lock:
            level = self._compute_level()
            if level == self._level:
                return
            self._level = level
            callbacks = list(self._callbacks)
        for callback in callbacks:
            try:
                callback(level)
            except Exception:  # pragma: no cover - callbacks must not break serving
                pass

    def _set_gauge(self) -> None:
        registry = _metrics.get_registry()
        if registry.enabled:
            registry.gauge("repro_residency_resident_bytes").set(
                self._resident_bytes
            )


class SegmentHandle:
    """One durable column segment, mapped on first touch and LRU-evictable.

    Created by the lazy ``TableStore.open`` path after *header-only*
    validation (magic + header CRC + manifest identity); the payload's full
    per-block CRC pass runs at map time, once per map, inside
    :func:`~repro.db.storage.segments.read_segment`.  ``pin_count`` and
    ``ever_mapped`` are guarded by the owning manager's lock.
    """

    def __init__(
        self,
        path: str,
        entry: Mapping[str, Any],
        manager: ResidencyManager,
        *,
        column: str,
        kind: str,
        dtype: Optional[str],
        rows: int,
        payload_offset: int,
        payload_bytes: int,
        breaker: Optional[CircuitBreaker] = None,
    ):
        self.path = str(path)
        self.entry = dict(entry)
        self.manager = manager
        self.column = column
        self.kind = kind
        self.dtype = dtype
        self.rows = int(rows)
        self.payload_offset = int(payload_offset)
        self.payload_bytes = int(payload_bytes)
        self.breaker = breaker
        self.pin_count = 0
        self.ever_mapped = False
        self.nbytes = 0
        self._array: Optional[np.ndarray] = None

    @property
    def is_resident(self) -> bool:
        return self._array is not None

    def array(self) -> np.ndarray:
        """The column array, faulting the segment in if it is not resident."""
        array = self._array
        if array is not None:
            self.manager._touch(self)
            return array
        return self._map()

    def _map(self) -> np.ndarray:
        plan = _faults.active_plan()
        last_error: Optional[BaseException] = None
        for _attempt in range(2):
            try:
                _faults.maybe_fire(plan, "segment_map")
                started = time.perf_counter()
                array = read_segment(
                    self.path, expected=self.entry, mmap=self.kind == "numpy"
                )
                elapsed = time.perf_counter() - started
            except CorruptSegmentError:
                # Bytes present but wrong: not a mapping problem, and not
                # retryable — surface typed, untouched by the breaker.  The
                # block-CRC pass that would have run at eager open time ran
                # here instead, so the storage counter still advances.
                from repro.db.storage.store import _count as _store_count

                _store_count("checksum_failures")
                raise
            except (_faults.InjectedFault, OSError) as exc:
                last_error = exc
                self.manager._record_map_fault()
                continue
            return self._install(array, elapsed)
        if self.breaker is not None:
            self.breaker.record_failure("segment_map")
        raise SegmentMapError(self.path, f"map failed after retry: {last_error}")

    def _install(self, array: np.ndarray, elapsed: float) -> np.ndarray:
        with self.manager._lock:
            if self._array is not None:
                # Lost a concurrent map race; serve the winner's array (the
                # duplicate map is garbage-collected, never charged).
                return self._array
            self._array = array
            # Object (pickled) columns report pointer bytes only; charge the
            # serialized payload size as the closer heap approximation.
            self.nbytes = (
                int(array.nbytes) if self.kind == "numpy" else self.payload_bytes
            )
        self.manager._register(self, elapsed)
        if self.breaker is not None:
            self.breaker.record_success()
        from repro.db.storage.store import _count as _store_count

        _store_count("segments_loaded")
        return array

    @contextmanager
    def pinned(self):
        """Hold the segment un-evictable for the duration of a span pass."""
        self.manager._pin(self)
        try:
            yield self
        finally:
            self.manager._unpin(self)

    def ensure_verified(self) -> None:
        """Map (and thereby full-CRC verify) the segment at least once."""
        if not self.ever_mapped:
            with self.pinned():
                self.array()

    def durable_block(self) -> Optional[ColumnBlock]:
        """A (path, offset, dtype) block for direct worker attach, or None.

        Only fixed-width (``numpy``-kind) payloads are directly mappable;
        pickled object columns have no fixed-width buffer and fall back to
        the shared-memory export path.
        """
        if self.kind != "numpy" or self.dtype is None:
            return None
        return ColumnBlock(
            shm_name=None,
            dtype=self.dtype,
            length=self.rows,
            path=os.path.abspath(self.path),
            offset=self.payload_offset,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "resident" if self.is_resident else "cold"
        return f"SegmentHandle({self.column!r}, {state}, path={self.path!r})"


class LazySegmentTable(Table):
    """A :class:`Table` whose columns live in durable segments, mapped lazily.

    Built by the lazy ``TableStore.open`` path: construction validates
    headers only; the first touch of each column maps (and CRC-verifies)
    its segment through the :class:`ResidencyManager`.  Mapped arrays are
    *not* cached in ``_arrays`` — the handle owns residency, so eviction
    works.  Appends (journal replay, live ingest) first materialise the
    table in memory, as do repeated map failures once the per-table map
    breaker opens (graceful degradation: memory for liveness).
    """

    @classmethod
    def from_segments(
        cls,
        name: str,
        schema: Schema,
        handles: Mapping[str, SegmentHandle],
        num_rows: int,
        data_generation: int = 0,
        map_breaker: Optional[CircuitBreaker] = None,
    ) -> "LazySegmentTable":
        missing = [c for c in schema.column_names if c not in handles]
        if missing:
            raise SchemaMismatchError(f"missing segment handles for {missing}")
        for column, handle in handles.items():
            if handle.rows != int(num_rows):
                raise SchemaMismatchError(
                    f"column {column!r} segment holds {handle.rows} rows for a "
                    f"table of {num_rows} rows"
                )
        table = cls.__new__(cls)
        table.name = name
        table.schema = schema
        table._data = {}
        table._num_rows = int(num_rows)
        table._data_generation = int(data_generation)
        table._arrays = {}
        table._group_indexes = {}
        table._group_index_lock = threading.Lock()
        table._handles = dict(handles)
        table._materialise_lock = threading.Lock()
        table._map_breaker = map_breaker
        return table

    # -- residency surface -----------------------------------------------------
    @property
    def is_lazy(self) -> bool:
        """Whether any column is still served from a durable segment."""
        return bool(self._handles)

    @property
    def residency_manager(self) -> Optional[ResidencyManager]:
        for handle in self._handles.values():
            return handle.manager
        return None

    def segment_handle(self, column: str) -> Optional[SegmentHandle]:
        return self._handles.get(column)

    def durable_block(self, column: str) -> Optional[ColumnBlock]:
        """A direct-attach block for ``column``, or None if not lazy-durable."""
        handle = self._handles.get(column)
        if handle is None or column in self._arrays:
            return None
        return handle.durable_block()

    def _materialise(self, reason: str) -> None:
        """Copy every column into memory and leave the residency domain.

        Reads go through :func:`read_segment` directly (``mmap=False``, no
        ``segment_map`` site), so a persistent injected map fault cannot
        block the degrade path; the bytes are still full-CRC verified.
        """
        with self._materialise_lock:
            if not self._handles:
                return
            for column, handle in list(self._handles.items()):
                if column in self._arrays:
                    continue
                mapped = handle._array
                if mapped is not None:
                    array = np.array(mapped)  # own the bytes, drop the map
                else:
                    array = read_segment(
                        handle.path, expected=handle.entry, mmap=False
                    )
                array.setflags(write=False)
                self._arrays[column] = array
            for handle in self._handles.values():
                handle.manager.discard(handle)
            self._handles = {}
        _count("tables_materialised")
        if reason == "map_breaker_open":
            _count("tables_degraded")

    # -- Table overrides -------------------------------------------------------
    def column_array(self, column: str, allow_hidden: bool = False) -> np.ndarray:
        column_def = self.schema.column(column)
        if column_def.hidden and not allow_hidden:
            raise ColumnNotFoundError(column, self.schema.visible_column_names)
        array = self._arrays.get(column)
        if array is not None:
            return array
        handle = self._handles.get(column)
        if handle is None:
            return super().column_array(column, allow_hidden=allow_hidden)
        try:
            return handle.array()
        except SegmentMapError:
            if (
                self._map_breaker is not None
                and self._map_breaker.state != CLOSED
            ):
                # Repeated map failures tripped the breaker: degrade the
                # whole table to rebuilt-in-memory operation and retry.
                self._materialise("map_breaker_open")
                return super().column_array(column, allow_hidden=allow_hidden)
            raise

    def gather_column(
        self,
        column: str,
        row_ids: Sequence[int],
        allow_hidden: bool = False,
    ) -> np.ndarray:
        handle = self._handles.get(column)
        if handle is None or column in self._arrays:
            return super().gather_column(column, row_ids, allow_hidden=allow_hidden)
        ids = np.asarray(row_ids, dtype=np.intp)
        with handle.pinned():
            array = self.column_array(column, allow_hidden=allow_hidden)
            return array[ids]  # fancy indexing copies: safe past eviction

    def _cells(self, column: str) -> List[Any]:
        cells = self._data.get(column)
        if cells is not None:
            return cells
        handle = self._handles.get(column)
        if handle is not None and column not in self._arrays:
            with handle.pinned():
                cells = handle.array().tolist()
            self._data[column] = cells
            return cells
        return super()._cells(column)

    def _apply_append(self, delta: Dict[str, List[Any]]) -> int:
        # Appends mutate; segments are immutable. Materialise first (journal
        # replay hits this; checkpointed tables have empty journals, so warm
        # restarts stay lazy).
        if self._handles:
            self._materialise("append")
        return super()._apply_append(delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LazySegmentTable({self.name!r}, rows={self._num_rows}, "
            f"lazy_columns={len(self._handles)})"
        )


class LazyShardedTable(ShardedTable):
    """A :class:`ShardedTable` over :class:`LazySegmentTable` shards.

    Inherits the full sharded contract; the one override that matters is
    :meth:`gather_column`, which serves point gathers shard-at-a-time in
    *residency order* — resident shards first, then cold shards faulted in
    one at a time with their segment pinned for the duration of that
    shard's slice.  Results are scattered back by global row position, so
    the visit order (and therefore eviction history) is bitwise-invisible.
    """

    @property
    def residency_manager(self) -> Optional[ResidencyManager]:
        for shard in self._shards:
            manager = getattr(shard, "residency_manager", None)
            if manager is not None:
                return manager
        return None

    @property
    def is_lazy(self) -> bool:
        return any(getattr(shard, "is_lazy", False) for shard in self._shards)

    def _shard_resident(self, position: int, column: str) -> bool:
        shard = self._shards[position]
        handle = (
            shard.segment_handle(column)
            if isinstance(shard, LazySegmentTable)
            else None
        )
        return handle is None or handle.is_resident

    def gather_column(
        self,
        column: str,
        row_ids: Sequence[int],
        allow_hidden: bool = False,
    ) -> np.ndarray:
        column_def = self.schema.column(column)
        if column_def.hidden and not allow_hidden:
            raise ColumnNotFoundError(column, self.schema.visible_column_names)
        if column in self._arrays:
            return self._arrays[column][np.asarray(row_ids, dtype=np.intp)]
        ids = np.asarray(row_ids, dtype=np.intp)
        if ids.size == 0:
            return self._shards[0].gather_column(
                column, ids, allow_hidden=allow_hidden
            )
        positions = (
            np.searchsorted(self._offset_array, ids, side="right") - 1
        )
        # Spill-aware visit order: shards whose segment is already resident
        # first, then cold shards one at a time (each pinned by the shard's
        # own gather while its slice is read).
        order = sorted(
            np.unique(positions).tolist(),
            key=lambda p: (0 if self._shard_resident(p, column) else 1, p),
        )
        parts: Dict[int, np.ndarray] = {}
        for position in order:
            local = ids[positions == position] - self._offsets[position]
            parts[position] = self._shards[position].gather_column(
                column, local, allow_hidden=allow_hidden
            )
        if len(parts) == 1:
            return next(iter(parts.values()))
        try:
            dtype = np.result_type(*(part.dtype for part in parts.values()))
        except TypeError:
            # Mixed kinds across shard boundaries: preserve values as
            # objects, matching the sharded concatenation fallback.
            dtype = np.dtype(object)
        gathered = np.empty(ids.size, dtype=dtype)
        for position, part in parts.items():
            gathered[positions == position] = part
        return gathered

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LazyShardedTable({self.name!r}, rows={self._num_rows}, "
            f"columns={self.num_columns}, shards={self.num_shards})"
        )


def iter_column_spans(
    table: Table, column: str, allow_hidden: bool = False
):
    """Yield ``(start, stop, array)`` per shard, resident shards first.

    The shard-at-a-time replacement for whole-column scans
    (``column_array``) in order-independent reductions — per-span partial
    sums, distinct-value unions.  For a lazy sharded table each cold
    shard's segment faults in only while its span is being consumed and is
    evictable again as soon as the caller moves on; for monolithic or
    fully-resident tables this degenerates to one span.  Callers must be
    order-insensitive: spans arrive in residency order, not row order.
    """
    shards = getattr(table, "shards", None)
    if not shards:
        yield 0, table.num_rows, table.column_array(column, allow_hidden=allow_hidden)
        return
    spans = table.shard_spans()
    order = range(len(shards))
    if isinstance(table, LazyShardedTable):
        order = sorted(
            order, key=lambda p: (0 if table._shard_resident(p, column) else 1, p)
        )
    for position in order:
        start, stop = spans[position]
        yield start, stop, shards[position].column_array(
            column, allow_hidden=allow_hidden
        )


def durable_span_exports(
    table: Table, columns: Sequence[str]
) -> Optional[Tuple[SpanExport, ...]]:
    """Direct-attach span exports for a fully lazy-durable table, or None.

    Workers re-map the committed segment files by ``(path, offset, dtype)``
    — memmaps are already zero-copy, so this skips the shared-memory export
    copy entirely.  The parent full-CRC verifies each segment at least once
    (:meth:`SegmentHandle.ensure_verified`) before handing its coordinates
    out.  Returns None when any column of any shard is not served from a
    durable fixed-width segment (in-memory tables, pickled object columns,
    materialised/degraded tables): the caller falls back to the
    shared-memory path.
    """
    shards = getattr(table, "shards", None)
    if shards:
        spans = table.shard_spans()
    else:
        shards = [table]
        spans = [(0, table.num_rows)]
    exports = []
    for shard, (start, stop) in zip(shards, spans):
        if not isinstance(shard, LazySegmentTable) or not shard.is_lazy:
            return None
        blocks: Dict[str, ColumnBlock] = {}
        for column in columns:
            block = shard.durable_block(column)
            if block is None:
                return None
            handle = shard.segment_handle(column)
            assert handle is not None
            handle.ensure_verified()
            blocks[column] = block
        exports.append(SpanExport(start=start, stop=stop, columns=blocks))
    return tuple(exports)
