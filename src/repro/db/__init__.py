"""In-memory relational substrate.

The paper's evaluation protocol (Section 6.1) keeps the ground-truth UDF value
for every tuple but hides it from the query-evaluation algorithms, revealing a
value only when the algorithm explicitly "evaluates" that tuple and charging
the corresponding cost.  This package provides exactly that substrate:

* :class:`~repro.db.table.Table` / :class:`~repro.db.schema.Schema` — a tiny
  in-memory column store with typed columns and per-row identifiers,
* :class:`~repro.db.udf.UserDefinedFunction` — a UDF wrapper with a call
  ledger, per-call cost and optional memoisation,
* :class:`~repro.db.index.GroupIndex` — the hash index on the correlated
  attribute that the paper's cost model assumes,
* :class:`~repro.db.query.SelectQuery` and :class:`~repro.db.engine.Engine`
  — a small query layer that runs exact or approximate UDF-predicate selects,
* :mod:`repro.db.storage` — durable checksummed columnar segments under an
  atomic manifest, with a tail-append journal and chaos-tested warm restart,
* :mod:`repro.db.residency` — bounded-memory serving of durable tables:
  lazy segment maps under a byte budget with LRU eviction and pin-counting
  (``CatalogStore.open(residency=ResidencyManager(budget_bytes=...))``).
"""

from repro.db.catalog import Catalog
from repro.db.column import Column, ColumnType, infer_column_type
from repro.db.engine import Engine, QueryResult, metadata_schema
from repro.db.errors import (
    BudgetExhaustedError,
    ColumnNotFoundError,
    CorruptSegmentError,
    DatabaseError,
    DuplicateObjectError,
    ManifestVersionError,
    SchemaMismatchError,
    SegmentMapError,
    StorageError,
    TableNotFoundError,
    UdfNotFoundError,
)
from repro.db.index import GroupIndex, MergedGroupIndex
from repro.db.predicate import (
    AndPredicate,
    ColumnPredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
    UdfPredicate,
)
from repro.db.query import SelectQuery
from repro.db.residency import LazySegmentTable, LazyShardedTable, ResidencyManager
from repro.db.schema import Schema
from repro.db.sharding import ShardedTable, shard_bounds
from repro.db.storage import CatalogStore, RecoveryReport, TableStore
from repro.db.table import Table
from repro.db.udf import CostLedger, UdfRegistry, UserDefinedFunction

__all__ = [
    "Catalog",
    "Column",
    "ColumnType",
    "infer_column_type",
    "Engine",
    "QueryResult",
    "metadata_schema",
    "DatabaseError",
    "ColumnNotFoundError",
    "TableNotFoundError",
    "UdfNotFoundError",
    "DuplicateObjectError",
    "SchemaMismatchError",
    "BudgetExhaustedError",
    "StorageError",
    "CorruptSegmentError",
    "ManifestVersionError",
    "SegmentMapError",
    "ResidencyManager",
    "LazySegmentTable",
    "LazyShardedTable",
    "TableStore",
    "CatalogStore",
    "RecoveryReport",
    "GroupIndex",
    "MergedGroupIndex",
    "ShardedTable",
    "shard_bounds",
    "Predicate",
    "ColumnPredicate",
    "UdfPredicate",
    "AndPredicate",
    "OrPredicate",
    "NotPredicate",
    "SelectQuery",
    "Schema",
    "Table",
    "UserDefinedFunction",
    "UdfRegistry",
    "CostLedger",
]
