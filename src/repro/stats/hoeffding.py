"""Hoeffding concentration bounds (paper Section 3.2 and Appendix 10.1).

The perfect-selectivity linear program does not enforce the precision/recall
constraints in expectation alone: it demands a safety margin so that the
realized (random) precision and recall still meet the user's thresholds with
probability at least ``rho``.  The margins come from Hoeffding's inequality
applied to the per-tuple indicator variables:

* precision indicators live in ``[-alpha, 1 - alpha]`` — width 1,
* recall indicators live in ``[0, 1 - beta]`` — width ``1 - beta``.

For a sum of ``n`` independent variables with ranges of width ``w_i``,

``P(S - E[S] <= -t) <= exp(-2 t^2 / sum_i w_i^2)``

so requiring the right-hand side to be at most ``1 - rho`` gives

``t = sqrt( ln(1 / (1 - rho)) * sum_i w_i^2 / 2 )``.
"""

from __future__ import annotations

import math
from typing import Sequence


def hoeffding_bound(total_squared_range: float, failure_probability: float) -> float:
    """Margin ``t`` such that a Hoeffding sum stays within ``t`` of its mean.

    Parameters
    ----------
    total_squared_range:
        ``sum_i (b_i - a_i)^2`` over the independent bounded summands.
    failure_probability:
        Acceptable probability of the sum falling more than ``t`` below its
        expectation (``1 - rho`` in the paper).
    """
    if total_squared_range < 0:
        raise ValueError(
            f"total_squared_range must be non-negative, got {total_squared_range}"
        )
    if not 0.0 < failure_probability <= 1.0:
        raise ValueError(
            "failure_probability must be in (0, 1], got " f"{failure_probability}"
        )
    if failure_probability >= 1.0:
        return 0.0
    return math.sqrt(
        math.log(1.0 / failure_probability) * total_squared_range / 2.0
    )


def hoeffding_precision_margin(total_tuples: float, rho: float) -> float:
    """The paper's ``h^p_rho`` margin for the precision constraint.

    Each tuple contributes an indicator bounded in an interval of width 1, so
    the squared-range sum is just the number of tuples.
    """
    _validate_rho(rho)
    if total_tuples < 0:
        raise ValueError(f"total_tuples must be non-negative, got {total_tuples}")
    return hoeffding_bound(total_tuples, 1.0 - rho)


def hoeffding_recall_margin(total_tuples: float, beta: float, rho: float) -> float:
    """The paper's ``h^r_rho`` margin for the recall constraint.

    Each tuple contributes an indicator bounded in an interval of width
    ``1 - beta``.
    """
    _validate_rho(rho)
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    if total_tuples < 0:
        raise ValueError(f"total_tuples must be non-negative, got {total_tuples}")
    return hoeffding_bound(total_tuples * (1.0 - beta) ** 2, 1.0 - rho)


def hoeffding_sample_size(margin: float, failure_probability: float) -> int:
    """Number of bounded-[0,1] samples needed for a mean estimate within ``margin``.

    Inverts the two-sided Hoeffding bound; handy for sanity-checking sampling
    budgets in tests and examples.
    """
    if margin <= 0.0:
        raise ValueError(f"margin must be positive, got {margin}")
    if not 0.0 < failure_probability < 1.0:
        raise ValueError(
            f"failure_probability must be in (0, 1), got {failure_probability}"
        )
    n = math.log(2.0 / failure_probability) / (2.0 * margin**2)
    return int(math.ceil(n))


def hoeffding_tail_probability(
    margin: float, ranges: Sequence[float]
) -> float:
    """Upper bound on ``P(S - E[S] <= -margin)`` for summands with given ranges."""
    if margin < 0:
        raise ValueError(f"margin must be non-negative, got {margin}")
    total = sum(float(r) ** 2 for r in ranges)
    if total == 0.0:
        return 0.0 if margin > 0 else 1.0
    return math.exp(-2.0 * margin**2 / total)


def _validate_rho(rho: float) -> None:
    if not 0.0 <= rho < 1.0:
        raise ValueError(
            f"satisfaction probability rho must be in [0, 1), got {rho}"
        )
