"""Chebyshev bounds used by the estimated-selectivity convex programs.

Section 3.3 of the paper keeps the precision constraint ``Q >= 0`` satisfied
with probability ``rho`` by demanding ``E[Q] >= e_rho * Dev(Q)`` where
``e_rho = 1 / sqrt(1 - rho)``.  This is the one-sided consequence of
Chebyshev's inequality: ``P(Q <= E[Q] - k Dev(Q)) <= 1 / k^2``.
"""

from __future__ import annotations

import math


def chebyshev_deviation_factor(rho: float) -> float:
    """The multiplier ``e_rho = 1 / sqrt(1 - rho)`` from the paper.

    Requiring the expectation to exceed ``e_rho`` standard deviations ensures
    the random quantity is non-negative with probability at least ``rho``.
    """
    if not 0.0 <= rho < 1.0:
        raise ValueError(
            f"satisfaction probability rho must be in [0, 1), got {rho}"
        )
    return 1.0 / math.sqrt(1.0 - rho)


def chebyshev_tail_bound(num_deviations: float) -> float:
    """Upper bound on the probability of deviating ``k`` standard deviations."""
    if num_deviations <= 0:
        return 1.0
    return min(1.0, 1.0 / num_deviations**2)


def required_deviations(failure_probability: float) -> float:
    """Number of standard deviations needed for a given failure probability."""
    if not 0.0 < failure_probability <= 1.0:
        raise ValueError(
            f"failure_probability must be in (0, 1], got {failure_probability}"
        )
    return 1.0 / math.sqrt(failure_probability)
