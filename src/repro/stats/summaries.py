"""Small summary-statistics helpers shared by experiments and dataset reports.

Table 3 of the paper characterises each dataset's group structure with the
standard deviation of group sizes, the standard deviation of group
selectivities and the Pearson correlation between size and selectivity.  The
experiment harness reports means and deviations of repeated runs.  Both live
here so the experiment code stays declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SeriesSummary:
    """Mean/deviation/extent summary of a numeric series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def as_dict(self) -> dict:
        """Plain-dict view (useful for report rendering)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }


def summarize_series(values: Sequence[float]) -> SeriesSummary:
    """Summarise a non-empty numeric series."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarise an empty series")
    return SeriesSummary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=0)),
        minimum=float(array.min()),
        maximum=float(array.max()),
    )


def mean_and_deviation(values: Sequence[float]) -> tuple[float, float]:
    """Convenience accessor returning ``(mean, population std)``."""
    summary = summarize_series(values)
    return summary.mean, summary.std


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient between two equal-length series.

    Returns 0.0 when either series is constant (the correlation is undefined
    there, and 0.0 is the neutral value for the Table 3 style reports).
    """
    x = np.asarray(list(xs), dtype=float)
    y = np.asarray(list(ys), dtype=float)
    if x.size != y.size:
        raise ValueError(
            f"series must have equal length, got {x.size} and {y.size}"
        )
    if x.size < 2:
        raise ValueError("correlation requires at least two points")
    x_std = x.std(ddof=0)
    y_std = y.std(ddof=0)
    if x_std == 0.0 or y_std == 0.0:
        return 0.0
    covariance = float(((x - x.mean()) * (y - y.mean())).mean())
    return covariance / (x_std * y_std)
