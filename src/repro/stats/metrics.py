"""Information-retrieval metrics (paper Section 2).

The paper measures an approximate result ``R`` against the correct result
``C`` with precision ``|R ∩ C| / |R|`` and recall ``|R ∩ C| / |C|``.  These
helpers operate either on explicit sets of tuple identifiers or on raw counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable


def precision(returned: AbstractSet, correct: AbstractSet) -> float:
    """Fraction of returned items that are correct.

    An empty result is assigned precision 1.0 (nothing wrong was returned);
    this matches how the paper treats the degenerate all-discard plan.
    """
    if not returned:
        return 1.0
    return len(returned & correct) / len(returned)


def recall(returned: AbstractSet, correct: AbstractSet) -> float:
    """Fraction of correct items that were returned.

    If there are no correct items at all, recall is trivially 1.0.
    """
    if not correct:
        return 1.0
    return len(returned & correct) / len(correct)


def f1_score(returned: AbstractSet, correct: AbstractSet) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(returned, correct)
    r = recall(returned, correct)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def precision_from_counts(true_positives: int, returned_total: int) -> float:
    """Precision from raw counts."""
    _validate_count_pair(true_positives, returned_total, "returned_total")
    if returned_total == 0:
        return 1.0
    return true_positives / returned_total


def recall_from_counts(true_positives: int, correct_total: int) -> float:
    """Recall from raw counts."""
    _validate_count_pair(true_positives, correct_total, "correct_total")
    if correct_total == 0:
        return 1.0
    return true_positives / correct_total


def _validate_count_pair(true_positives: int, total: int, name: str) -> None:
    if true_positives < 0 or total < 0:
        raise ValueError("counts must be non-negative")
    if true_positives > total:
        raise ValueError(
            f"true_positives ({true_positives}) cannot exceed {name} ({total})"
        )


@dataclass(frozen=True)
class ResultQuality:
    """Precision/recall summary of one query execution.

    Attributes
    ----------
    precision, recall:
        The standard IR metrics.
    returned_count:
        Number of tuples in the approximate result.
    correct_count:
        Number of tuples in the exact result.
    true_positive_count:
        Size of the intersection.
    """

    precision: float
    recall: float
    returned_count: int
    correct_count: int
    true_positive_count: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)

    def satisfies(self, alpha: float, beta: float) -> bool:
        """Whether this result meets precision ``alpha`` and recall ``beta``.

        A tiny tolerance absorbs floating point noise in the comparison; the
        quantities themselves are ratios of integer counts.
        """
        eps = 1e-12
        return self.precision >= alpha - eps and self.recall >= beta - eps


def result_quality(returned: Iterable, correct: Iterable) -> ResultQuality:
    """Compute a :class:`ResultQuality` from two collections of identifiers."""
    returned_set = set(returned)
    correct_set = set(correct)
    intersection = returned_set & correct_set
    return ResultQuality(
        precision=precision(returned_set, correct_set),
        recall=recall(returned_set, correct_set),
        returned_count=len(returned_set),
        correct_count=len(correct_set),
        true_positive_count=len(intersection),
    )
