"""Beta-posterior selectivity estimates (paper Section 4.1).

After evaluating ``F_a`` tuples of group ``a`` and observing ``F_a^+``
positives, the posterior over the group selectivity (with a uniform prior) is
``Beta(F_a^+ + 1, F_a^- + 1)``.  The paper uses its mean and variance

* ``s_a = (F_a^+ + 1) / (F_a + 2)``
* ``v_a = s_a (1 - s_a) / (F_a + 3)``

as the estimate/uncertainty pair fed to the convex programs of Section 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats as _scipy_stats


def beta_mean(positives: int, negatives: int) -> float:
    """Posterior mean selectivity after ``positives``/``negatives`` outcomes."""
    _validate_counts(positives, negatives)
    total = positives + negatives
    return (positives + 1) / (total + 2)


def beta_variance(positives: int, negatives: int) -> float:
    """Posterior variance matching the paper's ``s_a (1-s_a) / (F_a + 3)``."""
    _validate_counts(positives, negatives)
    total = positives + negatives
    mean = beta_mean(positives, negatives)
    return mean * (1.0 - mean) / (total + 3)


def _validate_counts(positives: int, negatives: int) -> None:
    if positives < 0 or negatives < 0:
        raise ValueError(
            f"counts must be non-negative, got {positives} positives and "
            f"{negatives} negatives"
        )


@dataclass(frozen=True)
class BetaPosterior:
    """Posterior over a group selectivity given sampled UDF outcomes.

    Attributes
    ----------
    positives:
        Number of sampled tuples that satisfied the predicate (``F_a^+``).
    negatives:
        Number of sampled tuples that did not (``F_a^-``).
    """

    positives: int
    negatives: int

    def __post_init__(self) -> None:
        _validate_counts(self.positives, self.negatives)

    @property
    def sample_size(self) -> int:
        """Total number of evaluated tuples ``F_a``."""
        return self.positives + self.negatives

    @property
    def alpha(self) -> float:
        """First shape parameter of the posterior Beta distribution."""
        return self.positives + 1.0

    @property
    def beta(self) -> float:
        """Second shape parameter of the posterior Beta distribution."""
        return self.negatives + 1.0

    @property
    def mean(self) -> float:
        """Posterior mean ``s_a``."""
        return beta_mean(self.positives, self.negatives)

    @property
    def variance(self) -> float:
        """Paper's variance estimate ``v_a = s_a (1-s_a) / (F_a + 3)``."""
        return beta_variance(self.positives, self.negatives)

    @property
    def std(self) -> float:
        """Standard deviation of the posterior."""
        return self.variance**0.5

    def credible_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Equal-tailed credible interval for the selectivity."""
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level}")
        lower_q = (1.0 - level) / 2.0
        dist = _scipy_stats.beta(self.alpha, self.beta)
        return float(dist.ppf(lower_q)), float(dist.ppf(1.0 - lower_q))

    def pdf(self, x: float) -> float:
        """Posterior density at ``x``."""
        return float(_scipy_stats.beta(self.alpha, self.beta).pdf(x))

    def cdf(self, x: float) -> float:
        """Posterior cumulative distribution at ``x``."""
        return float(_scipy_stats.beta(self.alpha, self.beta).cdf(x))

    def updated(self, positives: int, negatives: int) -> "BetaPosterior":
        """Return a new posterior after observing more evaluations."""
        return BetaPosterior(
            positives=self.positives + positives,
            negatives=self.negatives + negatives,
        )

    @classmethod
    def uninformed(cls) -> "BetaPosterior":
        """The uniform prior (no samples seen yet)."""
        return cls(positives=0, negatives=0)

    @classmethod
    def from_labels(cls, labels) -> "BetaPosterior":
        """Build a posterior from an iterable of boolean/0-1 outcomes."""
        labels = [bool(v) for v in labels]
        positives = sum(labels)
        return cls(positives=positives, negatives=len(labels) - positives)
