"""Seeded random-number management.

Every stochastic component in the library (samplers, probabilistic executors,
dataset generators, baselines) accepts either an integer seed or a
:class:`RandomState`.  Centralising the conversion in one place keeps the
experiments reproducible and lets a single experiment seed fan out into
independent child streams.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, "RandomState", None]


class RandomState:
    """A thin, picklable wrapper around :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        An integer seed, another ``RandomState`` (shared stream), a numpy
        ``Generator`` (wrapped as-is) or ``None`` for OS entropy.
    """

    def __init__(self, seed: SeedLike = None):
        if isinstance(seed, RandomState):
            self._generator = seed.generator
        elif isinstance(seed, np.random.Generator):
            self._generator = seed
        else:
            self._generator = np.random.default_rng(seed)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._generator

    # -- convenience wrappers -------------------------------------------------
    def random(self, size=None):
        """Uniform floats in ``[0, 1)``."""
        return self._generator.random(size)

    def integers(self, low: int, high: Optional[int] = None, size=None):
        """Uniform integers in ``[low, high)``."""
        return self._generator.integers(low, high, size=size)

    def choice(self, values, size=None, replace: bool = True, p=None):
        """Sample from ``values``."""
        return self._generator.choice(values, size=size, replace=replace, p=p)

    def shuffle(self, values) -> None:
        """Shuffle ``values`` in place."""
        self._generator.shuffle(values)

    def permutation(self, n_or_values):
        """Return a permuted copy."""
        return self._generator.permutation(n_or_values)

    def binomial(self, n, p, size=None):
        """Binomial draws."""
        return self._generator.binomial(n, p, size=size)

    def normal(self, loc=0.0, scale=1.0, size=None):
        """Gaussian draws."""
        return self._generator.normal(loc, scale, size=size)

    def beta(self, a, b, size=None):
        """Beta draws."""
        return self._generator.beta(a, b, size=size)

    def bernoulli(self, p, size=None):
        """Bernoulli draws returned as a boolean array (or scalar)."""
        draws = self._generator.random(size)
        return draws < p

    def spawn(self, count: int) -> List["RandomState"]:
        """Create ``count`` statistically independent child streams."""
        seeds = self._generator.integers(0, 2**31 - 1, size=count)
        return [RandomState(int(s)) for s in seeds]

    def child(self) -> "RandomState":
        """Create a single independent child stream."""
        return self.spawn(1)[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RandomState({self._generator!r})"


def as_random_state(seed: SeedLike) -> RandomState:
    """Coerce ``seed`` into a :class:`RandomState`."""
    if isinstance(seed, RandomState):
        return seed
    return RandomState(seed)


def spawn_children(seed: SeedLike, count: int) -> List[RandomState]:
    """Spawn ``count`` independent random states derived from ``seed``."""
    return as_random_state(seed).spawn(count)


def sample_without_replacement(
    rng: SeedLike, population: Sequence, k: int
) -> List:
    """Draw ``k`` distinct elements from ``population`` uniformly at random."""
    state = as_random_state(rng)
    population = list(population)
    if k >= len(population):
        return population
    indices = state.choice(len(population), size=k, replace=False)
    return [population[int(i)] for i in np.atleast_1d(indices)]


# ---------------------------------------------------------------------------
# Counter-based (position-addressable) substreams
# ---------------------------------------------------------------------------
#
# The parallel executor needs coins that depend only on *where* a tuple sits
# (its group and its position inside the group's candidate list), never on
# which shard or worker happens to draw them.  Sequential generators cannot
# provide that — consuming a stream couples every draw to all earlier draws —
# so these helpers implement a stateless SplitMix64 stream: the uniform at
# position ``p`` of stream ``key`` is a pure function of ``(key, p)``.  Any
# contiguous slice of a stream can be generated independently, which is what
# makes sharded execution bitwise identical to unsharded execution.

_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_MULT_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MULT_2 = np.uint64(0x94D049BB133111EB)
_U64_MASK = (1 << 64) - 1


def _mix64(state: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: avalanche a 64-bit state into output bits."""
    with np.errstate(over="ignore"):  # modular 2**64 arithmetic, by design
        z = (state + _SPLITMIX_GAMMA).astype(np.uint64, copy=False)
        z = (z ^ (z >> np.uint64(30))) * _MIX_MULT_1
        z = (z ^ (z >> np.uint64(27))) * _MIX_MULT_2
        return z ^ (z >> np.uint64(31))


def stream_key(*parts: int) -> int:
    """Derive a 64-bit stream key from integer parts (order-sensitive).

    Used to give every (seed, group, phase) coin stream its own key; the
    same parts always produce the same key on every platform.
    """
    acc = np.uint64(0x6A09E667F3BCC909)
    for part in parts:
        acc = _mix64(acc ^ np.uint64(int(part) & _U64_MASK))
    return int(acc)


def counter_uniforms(key: int, start: int, count: int) -> np.ndarray:
    """Uniforms in ``[0, 1)`` at positions ``start .. start+count-1`` of a stream.

    ``counter_uniforms(k, 0, n)[i] == counter_uniforms(k, i, 1)[0]`` for every
    ``i`` — slices of one stream agree wherever they overlap, so workers can
    draw disjoint segments of a group's coin stream concurrently and obtain
    exactly the coins a single serial pass would have drawn.
    """
    if count <= 0:
        return np.empty(0, dtype=np.float64)
    positions = np.arange(start, start + count, dtype=np.uint64)
    with np.errstate(over="ignore"):  # modular 2**64 arithmetic, by design
        state = np.uint64(int(key) & _U64_MASK) + positions * _SPLITMIX_GAMMA
    bits = _mix64(state)
    # Top 53 bits -> float64 in [0, 1), the standard generator construction.
    return (bits >> np.uint64(11)) * np.float64(2.0**-53)


def stable_hash_seed(*parts: Iterable) -> int:
    """Derive a deterministic 32-bit seed from arbitrary hashable parts.

    Useful when an experiment wants per-(dataset, iteration) seeds that do not
    depend on Python's randomised ``hash``.
    """
    acc = 2166136261
    for part in parts:
        for byte in repr(part).encode("utf8"):
            acc ^= byte
            acc = (acc * 16777619) % (2**32)
    return acc
