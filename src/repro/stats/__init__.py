"""Statistical substrate used throughout the reproduction.

The paper's guarantees rest on three pieces of classical probability:

* Beta posteriors for per-group selectivity estimates obtained by sampling
  (Section 4.1 of the paper),
* Hoeffding's inequality for the perfect-selectivity linear program
  (Section 3.2), and
* Chebyshev's inequality for the estimated-selectivity convex programs
  (Section 3.3).

This package implements those pieces along with the precision/recall metrics
used to evaluate query results and seeded random-number helpers that keep
every experiment reproducible.
"""

from repro.stats.beta import BetaPosterior, beta_mean, beta_variance
from repro.stats.chebyshev import chebyshev_deviation_factor, chebyshev_tail_bound
from repro.stats.hoeffding import (
    hoeffding_bound,
    hoeffding_precision_margin,
    hoeffding_recall_margin,
    hoeffding_sample_size,
)
from repro.stats.metrics import (
    ResultQuality,
    f1_score,
    precision,
    recall,
    result_quality,
)
from repro.stats.random import RandomState, spawn_children
from repro.stats.summaries import (
    SeriesSummary,
    mean_and_deviation,
    pearson_correlation,
    summarize_series,
)

__all__ = [
    "BetaPosterior",
    "beta_mean",
    "beta_variance",
    "chebyshev_deviation_factor",
    "chebyshev_tail_bound",
    "hoeffding_bound",
    "hoeffding_precision_margin",
    "hoeffding_recall_margin",
    "hoeffding_sample_size",
    "ResultQuality",
    "precision",
    "recall",
    "f1_score",
    "result_quality",
    "RandomState",
    "spawn_children",
    "SeriesSummary",
    "mean_and_deviation",
    "pearson_correlation",
    "summarize_series",
]
