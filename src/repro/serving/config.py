"""Service configuration and the unified stats surface.

:class:`ServiceConfig` is the one place :class:`~repro.serving.service.QueryService`
is configured — it replaces the ~10 loose keyword arguments that accreted on
the constructor across releases (those still work for one release, with
:class:`DeprecationWarning` shims).  :class:`ServiceStats` is the matching
read side: one typed snapshot unifying the serving counters, cache
statistics, session accounting, latency summaries, async front-end state and
the optional :mod:`repro.obs` registry dump.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

#: Canonical executor backend names.
#:
#: ``serial``
#:     The vectorised single-threaded :class:`~repro.core.executor.BatchExecutor`
#:     (the default — "serial" describes its concurrency, not its speed).
#: ``thread``
#:     Sharded thread-pool :class:`~repro.core.parallel.ParallelBatchExecutor`;
#:     scales while per-span work stays in GIL-releasing NumPy kernels.
#: ``process``
#:     :class:`~repro.core.procpool.ProcessPoolBatchExecutor` over
#:     shared-memory shards; the only backend that scales python-callable
#:     UDF evaluation across cores.
#: ``reference``
#:     The paper-faithful tuple-at-a-time :class:`~repro.core.executor.PlanExecutor`,
#:     kept for differential testing.
EXECUTORS = ("serial", "thread", "process", "reference")

#: Pre-1.3 names accepted (with a warning) through the deprecated
#: ``QueryService`` keyword path.  Note the trap this renaming removes:
#: legacy ``"serial"`` meant the tuple-at-a-time reference executor, while
#: canonical ``"serial"`` is the vectorised default — so the legacy spelling
#: maps to ``"reference"``.
LEGACY_EXECUTORS = {
    "batch": "serial",
    "parallel": "thread",
    "serial": "reference",
}


@dataclass(frozen=True)
class ServiceConfig:
    """Everything configurable about a :class:`QueryService`, in one value.

    Parameters
    ----------
    executor:
        One of :data:`EXECUTORS` — backend for warm-plan execution and the
        pipeline's execution step.  Legacy names (``"batch"``/``"parallel"``)
        are only accepted through the deprecated keyword shims, never here.
    max_workers:
        Worker bound for the ``thread``/``process`` backends (``None`` =
        machine cores); ignored by the others.
    plan_cache_size / stats_cache_size:
        LRU bounds for the two caches (``0`` disables caching).
    ttl:
        Optional time-to-live in seconds applied to both caches.
    default_budget:
        UDF-cost budget assigned to implicitly created client sessions.
    free_memoized:
        Serving accounting: do not re-charge evaluations whose value the UDF
        already memoised.  Cold pipeline runs always use the paper's
        accounting.
    max_concurrency:
        Threads executing requests for the asyncio front-end
        (:meth:`QueryService.submit_async`); bounds how many requests run at
        once regardless of how many are admitted.
    max_pending:
        Default per-class admission limit for the async front-end: when this
        many requests of one query class are already in flight, further
        arrivals are shed with :class:`~repro.serving.session.Overloaded`.
    class_limits:
        Per-class overrides of ``max_pending``, keyed by query class
        (``"exact"`` / ``"strategy"`` / ``"approximate"``).
    coalesce:
        Merge concurrent same-signature cold misses on the async front-end:
        followers await the leader's planning/sampling pass instead of
        re-running it (and followers with the same seed share its result).
    default_timeout_s:
        Deadline applied to every request that does not carry its own
        ``timeout_s``/``deadline`` (``None`` = no default deadline).  An
        expired request raises the typed
        :class:`~repro.resilience.deadline.DeadlineExceeded` at the next
        cooperative cancellation point, charging no further UDF work.
    retry_spans:
        Let the process executor retry a transiently failed span once
        against a respawned pool before recomputing it in-process.
    breaker_threshold / breaker_recovery_s / breaker_probes:
        Circuit breaker over process-pool health: after ``breaker_threshold``
        consecutive faulting requests the service degrades process-backed
        execution to the in-process thread path; after
        ``breaker_recovery_s`` seconds it half-opens and lets up to
        ``breaker_probes`` probe requests try the pool again.
    storage_dir:
        Root directory of a durable :class:`~repro.db.storage.CatalogStore`.
        When set, the service restores persisted warm state (plan-cache
        entries, statistics reservoirs, group-index codes, UDF memos) for
        matching tables on construction — a restarted service answers its
        first repeated query as a warm hit with zero UDF evaluations — and
        :meth:`QueryService.save_warm_state` / :meth:`QueryService.close`
        write the warm state back.  ``None`` (the default) keeps the service
        fully in-memory.
    memory_budget_bytes:
        Residency budget for durable table segments, in bytes.  When set
        (with ``storage_dir``), tables open *lazily*: segments map on first
        touch and a :class:`~repro.db.residency.ResidencyManager` evicts
        clean least-recently-used mappings to keep resident bytes at or
        under the budget (pinned in-flight segments may transiently exceed
        it by one shard's columns).  Crossing the high watermark sheds the
        service caches; exceeding the budget outright (``critical``) sheds
        new async admissions with :class:`~repro.serving.session.Overloaded`.
        ``None`` (the default) keeps durable tables fully resident, exactly
        as before.
    """

    executor: str = "serial"
    max_workers: Optional[int] = None
    plan_cache_size: Optional[int] = 256
    stats_cache_size: Optional[int] = 256
    ttl: Optional[float] = None
    default_budget: Optional[float] = None
    free_memoized: bool = True
    max_concurrency: int = 8
    max_pending: int = 64
    class_limits: Mapping[str, int] = field(default_factory=dict)
    coalesce: bool = True
    default_timeout_s: Optional[float] = None
    retry_spans: bool = True
    breaker_threshold: int = 3
    breaker_recovery_s: float = 30.0
    breaker_probes: int = 1
    storage_dir: Optional[str] = None
    memory_budget_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            hint = ""
            if self.executor in LEGACY_EXECUTORS:
                hint = (
                    f" ({self.executor!r} is a pre-1.3 name; use "
                    f"{LEGACY_EXECUTORS[self.executor]!r})"
                )
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}{hint}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {self.max_workers}")
        if self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be positive, got {self.max_concurrency}"
            )
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be positive, got {self.max_pending}")
        for query_class, limit in self.class_limits.items():
            if limit < 0:
                raise ValueError(
                    f"class_limits[{query_class!r}] must be non-negative, got {limit}"
                )
        if self.default_timeout_s is not None and self.default_timeout_s <= 0:
            raise ValueError(
                f"default_timeout_s must be positive, got {self.default_timeout_s}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be positive, got {self.breaker_threshold}"
            )
        if self.breaker_recovery_s <= 0:
            raise ValueError(
                f"breaker_recovery_s must be positive, got {self.breaker_recovery_s}"
            )
        if self.breaker_probes < 1:
            raise ValueError(
                f"breaker_probes must be positive, got {self.breaker_probes}"
            )
        if self.memory_budget_bytes is not None and self.memory_budget_bytes <= 0:
            raise ValueError(
                f"memory_budget_bytes must be positive, got {self.memory_budget_bytes}"
            )


@dataclass
class ServiceStats:
    """One typed observability surface for a :class:`QueryService`.

    Returned by :meth:`QueryService.stats`; the legacy ``metrics()`` /
    ``latency_snapshot()`` / ``metrics_snapshot()`` methods remain as thin
    aliases over the same data.  See :data:`SERVICE_STATS_SCHEMA` for the
    field contract (documented alongside
    :meth:`repro.db.engine.Engine.metadata_schema`, the result-metadata
    contract).
    """

    serving: Dict[str, int]
    plan_cache: Dict[str, float]
    stats_cache: Dict[str, float]
    sessions: Dict[str, Dict[str, float]]
    latency_ms: Dict[str, Dict[str, Optional[float]]]
    frontend: Dict[str, object]
    registry: Dict[str, object]
    resilience: Dict[str, object] = field(default_factory=dict)
    storage: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """The whole snapshot as one plain dict (for JSON reports)."""
        return {
            "serving": dict(self.serving),
            "plan_cache": dict(self.plan_cache),
            "stats_cache": dict(self.stats_cache),
            "sessions": dict(self.sessions),
            "latency_ms": dict(self.latency_ms),
            "frontend": dict(self.frontend),
            "registry": dict(self.registry),
            "resilience": dict(self.resilience),
            "storage": dict(self.storage),
        }


#: Contract for :class:`ServiceStats` fields — the stats-side sibling of
#: :meth:`repro.db.engine.Engine.metadata_schema`.
SERVICE_STATS_SCHEMA: Dict[str, str] = {
    "serving": (
        "monotonic request counters: queries, exact_queries, plan_hits/"
        "misses/refreshes, pipeline_runs, solver_calls, degraded_plans, "
        "rejected, flight_waits, fallbacks, trace_sink_errors, shed "
        "(async admission rejections), coalesced (requests answered from a "
        "coalesced leader's result without executing), deadline_exceeded "
        "(requests cancelled by their deadline), degraded (requests served "
        "in-process because the circuit breaker was open), retried_spans "
        "(process-pool spans retried after a transient fault), "
        "plan_restored (requests served from a plan-cache entry restored "
        "from durable storage), pressure_shed (async admissions shed under "
        "critical memory pressure), pressure_cache_clears (cache sheds "
        "triggered by the residency watermark)"
    ),
    "plan_cache": "LRUCache.snapshot() of the plan cache (hits, misses, size, ...)",
    "stats_cache": "LRUCache.snapshot() of the statistics cache",
    "sessions": "per-client SessionManager.snapshot(): budget, spent, admitted, ...",
    "latency_ms": (
        "per-path latency summaries {count, mean_ms, p50_ms, p95_ms, p99_ms, "
        "max_ms}; paths: all, exact, strategy, hit, miss, refresh, restored, "
        "error, coalesced"
    ),
    "frontend": (
        "async front-end state: pending per query class, class_limits, "
        "max_pending, max_concurrency, coalesce flag, open_flights"
    ),
    "registry": "repro.obs MetricsRegistry.snapshot() (empty while disabled)",
    "resilience": (
        "CircuitBreaker.snapshot(): state (closed/open/half_open), "
        "consecutive_failures, failures_total, successes_total, "
        "retried_spans, opened_count, probes_in_flight, failure_threshold, "
        "recovery_time_s, last_failure_reason; plus service_closed (bool, "
        "true once QueryService.close() has begun)"
    ),
    "storage": (
        "durability counters (empty dict when storage_dir is unset): the "
        "process-wide repro.db.storage counters — segments_written/"
        "segments_loaded (segment files persisted/validated+mapped), "
        "checksum_failures, quarantines, journal_replays/"
        "journal_records_replayed/journal_truncations, manifest_commits, "
        "rebuilds (rebuild-from-source recoveries), temp_files_cleaned — "
        "plus restore accounting for this service: restored_plans, "
        "restored_stats_entries, restored_group_indexes, restored_udf_memos, "
        "restore_errors, and warm_state_saved (saves written by this service); "
        "when memory_budget_bytes is set, a 'residency' sub-dict — "
        "ResidencyManager.snapshot(): budget_bytes, resident_bytes, "
        "peak_resident_bytes, mapped_segments, pinned_segments, "
        "pressure_level (ok/high/critical), maps, evictions, refaults, "
        "map_faults, evict_faults, map_seconds_total"
    ),
}
