"""Plan cache: solved execution plans keyed by canonical query signature.

A plan-cache hit means a repeated query skips column selection, labelling,
sampling *and* the convex-program solve: the service re-executes the cached
probabilistic plan (with fresh per-request randomness) against the cached
group index and sample outcome.  Entries are keyed by
:func:`repro.serving.signature.plan_signature`, so syntactic reorderings of
the same query share one entry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.groups import SelectivityModel
from repro.core.plan import ExecutionPlan
from repro.db.table import Table
from repro.sampling.sampler import SampleOutcome
from repro.serving.cache import LRUCache

#: Version of the plan-producing solver stack.  Folded into every plan
#: signature and stamped on every :class:`CachedPlan`, so plans solved by an
#: older solver can never be replayed after an upgrade (neither within a
#: process nor through any externalised signature).  History: 1 — PR 1's
#: original serving layer; 2 — PR 2's joint phase-2 repair in
#: :func:`repro.core.bigreedy.solve_bigreedy`, which changes the optimal
#: plans (and their expected costs) for loose-recall queries.
PLAN_CACHE_VERSION = 2


@dataclass(frozen=True)
class CachedPlan:
    """Everything needed to re-execute a solved query without re-planning.

    Attributes
    ----------
    column:
        The correlated column the plan groups by.
    plan:
        The solved per-group retrieve/evaluate probabilities.
    model:
        The selectivity model the plan was solved against (used for
        budget-degraded re-solves and expected-cost admission checks).
    sample_outcome:
        Sampled rows whose UDF value is already paid for; their positives are
        returned for free and they are excluded from the probabilistic pass.
    working_table:
        The table the plan executes over — the base table, or the augmented
        copy carrying a virtual correlated column.
    base_table:
        The catalog table the plan was computed from; a cache hit is only
        valid while the catalog still serves this exact object (re-registered
        tables invalidate the entry by identity).
    expected_execution_cost:
        Expected cost of executing the plan (sampling excluded); used by the
        admission layer to pre-check client budgets.
    used_virtual_column:
        Whether ``column`` is a derived virtual column.
    used_fallback:
        Whether the solver fell back to evaluate-everything.
    solver_version:
        The :data:`PLAN_CACHE_VERSION` of the solver stack that produced the
        plan; the service refuses to replay entries from any other version.
    data_generation / table_rows:
        The base table's :attr:`~repro.db.table.Table.data_generation` and
        row count when the plan was solved.  Tables mutate in place under
        incremental ingest, so identity alone no longer proves freshness: a
        generation mismatch marks the entry *refreshable* — its statistics
        are exact for the first ``table_rows`` rows and the service updates
        them through the delta path instead of a cold re-plan.
    restored:
        Whether the entry was loaded from durable storage
        (:mod:`repro.db.storage`) rather than solved in this process.  The
        first hit reports ``plan_cache: "restored"`` in result metadata and
        then clears the flag, so warm-restart wins are observable without
        perturbing steady-state accounting.
    """

    column: str
    plan: ExecutionPlan
    model: SelectivityModel
    sample_outcome: Optional[SampleOutcome]
    working_table: Table
    base_table: Table
    expected_execution_cost: float
    used_virtual_column: bool = False
    used_fallback: bool = False
    solver_version: int = PLAN_CACHE_VERSION
    data_generation: int = 0
    table_rows: int = 0
    restored: bool = False


class PlanCache:
    """A TTL/size-bounded LRU cache of :class:`CachedPlan` entries."""

    def __init__(
        self,
        max_size: Optional[int] = 256,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._cache = LRUCache(max_size=max_size, ttl=ttl, clock=clock, name="plans")

    @property
    def enabled(self) -> bool:
        """Whether plan caching is on at all."""
        return self._cache.enabled

    @property
    def stats(self):
        """Hit/miss statistics of the underlying cache."""
        return self._cache.stats

    def get(self, signature: Tuple, record: bool = True) -> Optional[CachedPlan]:
        """The cached plan for a canonical signature, if any."""
        return self._cache.get(signature, record=record)

    def note_hit(self) -> None:
        """Record a hit observed outside :meth:`get` (single-flight waiters)."""
        self._cache.note_hit()

    def note_miss(self) -> None:
        """Record a miss observed outside :meth:`get` (dead entries)."""
        self._cache.note_miss()

    def put(self, signature: Tuple, entry: CachedPlan) -> None:
        """Store a solved plan under its canonical signature."""
        self._cache.put(signature, entry)

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict statistics snapshot (atomic: one lock acquisition)."""
        return self._cache.snapshot()

    def clear(self) -> None:
        """Drop every cached plan."""
        self._cache.clear()

    def __contains__(self, signature: object) -> bool:
        return signature in self._cache

    def __len__(self) -> int:
        return len(self._cache)
