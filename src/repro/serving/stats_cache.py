"""Statistics cache: memoised selectivity evidence shared across queries.

The expensive part of answering a query is statistical: labelling a uniform
sample for column selection, and stratified per-group sampling to estimate
selectivities.  Both depend only on ``(table, predicate)`` — not on the
constraints — so two queries with different ``alpha``/``beta`` against the
same table and UDF can share them.  :class:`StatisticsCache` memoises

* the labelled sample per ``(table, predicate)``,
* the merged :class:`~repro.sampling.sampler.SampleOutcome` (and the
  selectivity model derived from it) per ``(table, column, predicate)``,

each behind its own TTL/size-bounded :class:`~repro.serving.cache.LRUCache`
with hit/miss accounting.  Entries remember the table's shard signature and
row count at store time, so after an append the ``stale_*`` getters can
hand the (still exact, merely incomplete) evidence to the delta-refresh
path instead of treating the grown table as cold.  Group indexes are no
longer cached here: since
the db layer grew a per-column index cache
(:meth:`~repro.db.table.Table.group_index`), the serving layer shares the
*same* index objects as the engine and the cold pipeline — :meth:`get_index`
delegates to the table and only keeps hit/miss accounting so dashboards
still see index reuse.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.core.column_selection import LabeledSample
from repro.db.index import GroupIndex
from repro.db.predicate import Predicate
from repro.db.table import Table
from repro.obs import metrics as _metrics
from repro.sampling.sampler import SampleOutcome
from repro.serving.cache import CacheStats, LRUCache
from repro.serving.signature import model_key, statistics_key


class StatisticsCache:
    """Memoises labelled samples, sample outcomes and group indexes."""

    def __init__(
        self,
        max_size: Optional[int] = 256,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.labeled_samples = LRUCache(
            max_size=max_size, ttl=ttl, clock=clock, name="labeled_samples"
        )
        self.sample_outcomes = LRUCache(
            max_size=max_size, ttl=ttl, clock=clock, name="sample_outcomes"
        )
        # Group indexes live on the tables themselves (Table.group_index);
        # this only counts how often serving found one already built.
        self.index_stats = CacheStats()
        self._obs_counters = _metrics.BoundCounterCache(
            lambda registry, stat: registry.counter(
                f"repro_cache_{stat}_total", cache="indexes"
            )
        )

    @property
    def enabled(self) -> bool:
        """Whether statistics caching is on at all."""
        return self.labeled_samples.enabled

    # Entries are keyed by table *identity* and store the table reference,
    # its shard signature (layout + data generation) and its row count at
    # store time alongside the payload.  Identity protects against a table
    # re-registered under the same name (row ids would not line up) and
    # against id() reuse combined with signatures; the stored signature
    # separates layout/data generations.  A signature mismatch at matching
    # identity is *not* discarded: row ids are append-only stable, so the
    # payload is still exact evidence for the first ``rows`` rows and the
    # ``stale_*`` getters hand it to the delta-refresh path instead of
    # treating the grown table as cold.
    @staticmethod
    def _labeled_key(table: Table, predicate: Predicate) -> Hashable:
        return (id(table), statistics_key(table.name, predicate))

    @staticmethod
    def _outcome_key(table: Table, predicate: Predicate, column: str) -> Hashable:
        return (id(table), model_key(table.name, predicate, column))

    def _validated(self, cache: LRUCache, key: Hashable, table: Table):
        """The entry's payload when it matches the table's *current* state."""
        entry = cache.get(key, record=False)
        if entry is None:
            cache.note_miss()
            return None
        stored_table, signature, _rows, payload = entry
        if stored_table is not table or signature != table.shard_signature():
            cache.note_miss()
            return None
        cache.note_hit()
        return payload

    def _validated_stale(
        self, cache: LRUCache, key: Hashable, table: Table
    ) -> Optional[Tuple[Any, int]]:
        """``(payload, rows_at_store_time)`` for a same-table entry of any
        generation whose rows are a prefix of the current table.

        Accounting mirrors :meth:`_validated`: an unusable entry (evicted,
        re-registered table, rows beyond the current table) counts as the
        miss it behaves as; a usable stale one counts as a ``refresh``.
        """
        entry = cache.get(key, record=False)
        if entry is None:
            cache.note_miss()
            return None
        stored_table, signature, rows, payload = entry
        if stored_table is not table or rows > table.num_rows:
            cache.note_miss()
            return None
        if signature == table.shard_signature():
            cache.note_hit()
        else:
            cache.note_refresh()
        return payload, rows

    # -- labelled samples ---------------------------------------------------------
    def get_labeled(self, table: Table, predicate: Predicate) -> Optional[LabeledSample]:
        """The cached labelled sample for ``(table, predicate)``, if any."""
        return self._validated(
            self.labeled_samples, self._labeled_key(table, predicate), table
        )

    def stale_labeled(
        self, table: Table, predicate: Predicate
    ) -> Optional[Tuple[LabeledSample, int]]:
        """A possibly-stale labelled sample plus the row count it covered.

        Used by the refresh path after appends: the sample is exact over the
        first ``rows`` rows and only needs a reservoir top-up over the delta.
        """
        return self._validated_stale(
            self.labeled_samples, self._labeled_key(table, predicate), table
        )

    def put_labeled(
        self, table: Table, predicate: Predicate, labeled: LabeledSample
    ) -> None:
        """Store a labelled sample (no-op for empty samples)."""
        if labeled is not None and labeled.size:
            self.labeled_samples.put(
                self._labeled_key(table, predicate),
                (table, table.shard_signature(), table.num_rows, labeled),
            )

    # -- per-column sample outcomes ----------------------------------------------
    def get_outcome(
        self, table: Table, predicate: Predicate, column: str
    ) -> Optional[SampleOutcome]:
        """The cached (merged) sample outcome for one correlated column."""
        return self._validated(
            self.sample_outcomes, self._outcome_key(table, predicate, column), table
        )

    def stale_outcome(
        self, table: Table, predicate: Predicate, column: str
    ) -> Optional[Tuple[SampleOutcome, int]]:
        """A possibly-stale sample outcome plus the row count it covered."""
        return self._validated_stale(
            self.sample_outcomes, self._outcome_key(table, predicate, column), table
        )

    def outcomes_for(
        self, table: Table, predicate: Predicate, columns: Tuple[str, ...]
    ) -> Dict[str, SampleOutcome]:
        """Cached outcomes for each of ``columns`` (absent columns omitted)."""
        found: Dict[str, SampleOutcome] = {}
        for column in columns:
            outcome = self.get_outcome(table, predicate, column)
            if outcome is not None:
                found[column] = outcome
        return found

    def put_outcome(
        self,
        table: Table,
        predicate: Predicate,
        column: str,
        outcome: SampleOutcome,
    ) -> None:
        """Store (replacing) the merged sample outcome for a column."""
        if outcome is not None:
            self.sample_outcomes.put(
                self._outcome_key(table, predicate, column),
                (table, table.shard_signature(), table.num_rows, outcome),
            )

    # -- group indexes -------------------------------------------------------------
    def get_index(self, table: Table, column: str) -> GroupIndex:
        """The shared :class:`GroupIndex`, built at most once per (table, column).

        Delegates to :meth:`Table.group_index` — the same object the engine
        and the cold pipeline use, so a plan-cache hit never rebuilds an
        index the cold run already paid for.  Identity is inherent: the
        index lives on the table instance itself, so a re-registered table
        (or a derived virtual-column table) brings its own fresh cache.
        """
        registry = _metrics.get_registry()
        if table.has_group_index(column):
            self.index_stats.hits += 1
            if registry.enabled:
                self._obs_counters.get(registry, "hits").inc()
        else:
            self.index_stats.misses += 1
            self.index_stats.puts += 1
            if registry.enabled:
                self._obs_counters.get(registry, "misses").inc()
                self._obs_counters.get(registry, "puts").inc()
        return table.group_index(column)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Hit/miss statistics of every underlying cache (atomic per cache)."""
        return {
            "labeled_samples": self.labeled_samples.snapshot(),
            "sample_outcomes": self.sample_outcomes.snapshot(),
            "indexes": self.index_stats.snapshot(),
        }

    def clear(self) -> None:
        """Drop cached statistics (shared table-resident indexes are kept)."""
        self.labeled_samples.clear()
        self.sample_outcomes.clear()
