"""Thread-safe LRU cache with TTL expiry and hit/miss accounting.

Every cache in the serving layer (statistics, plans, group indexes) is an
instance of :class:`LRUCache`.  The cache is deliberately simple: a lock, an
ordered dict in recency order, an optional per-entry time-to-live, and a
size bound enforced by least-recently-used eviction.  ``max_size=0`` turns
the cache off entirely (every ``get`` misses, every ``put`` is dropped),
which is how benchmarks model a cold, no-amortisation serving path.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.obs import metrics as _metrics


@dataclass
class CacheStats:
    """Counters describing how effective a cache has been."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    expirations: int = 0
    #: Entries reclaimed by an opportunistic :meth:`LRUCache.purge_expired`
    #: sweep (also counted in :attr:`expirations`).
    purged: int = 0
    #: Stale lookups that were answered for delta-refresh instead of being
    #: treated as cold misses (serving statistics caches only).
    refreshes: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict snapshot for reports and benchmark output."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "purged": self.purged,
            "refreshes": self.refreshes,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    value: Any
    stored_at: float
    last_used_at: float = field(default=0.0)


class LRUCache:
    """A bounded, optionally-expiring, thread-safe key/value cache.

    Parameters
    ----------
    max_size:
        Maximum number of entries; the least recently used entry is evicted
        when a ``put`` would exceed it.  ``0`` disables the cache; ``None``
        means unbounded.
    ttl:
        Optional time-to-live in seconds.  Entries older than ``ttl`` at
        lookup time count as misses (and are dropped).
    clock:
        Injectable time source (seconds); defaults to ``time.monotonic`` and
        is overridden in tests to exercise expiry deterministically.
    name:
        Optional metrics name.  A named cache mirrors every stats advance to
        the global :mod:`repro.obs` registry as
        ``repro_cache_<stat>_total{cache=<name>}`` counters (no-ops while
        metrics are disabled); an unnamed cache never touches the registry.
    """

    def __init__(
        self,
        max_size: Optional[int] = 128,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        name: Optional[str] = None,
    ):
        if max_size is not None and max_size < 0:
            raise ValueError(f"max_size must be non-negative, got {max_size}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.max_size = max_size
        self.ttl = ttl
        self.name = name
        self._clock = clock
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()
        self._puts_since_purge = 0
        self._obs_counters = _metrics.BoundCounterCache(
            lambda registry, stat: registry.counter(
                f"repro_cache_{stat}_total", cache=self.name
            )
        )

    def _mirror(self, stat: str, amount: int = 1) -> None:
        """Mirror a stats advance to the global metrics registry (if named).

        Safe to call with :attr:`_lock` held: registry instruments use their
        own leaf locks and never call back into the cache, so there is no
        ordering cycle.  Unnamed caches (and a disabled registry) return
        after one attribute check."""
        if self.name is None or not amount:
            return
        registry = _metrics.get_registry()
        if registry.enabled:
            self._obs_counters.get(registry, stat).inc(amount)

    #: Puts between opportunistic expiry sweeps.  Lookup-time expiry only
    #: reclaims keys that are touched again, so never-retouched entries
    #: would pin memory until LRU pressure evicts them; sweeping every
    #: N puts bounds that leak at amortised O(size / N) work per put.
    PURGE_EVERY_PUTS = 64

    @property
    def enabled(self) -> bool:
        """Whether the cache can hold anything at all."""
        return self.max_size is None or self.max_size > 0

    def get(self, key: Hashable, default: Any = None, record: bool = True) -> Any:
        """Look up ``key``, refreshing its recency; ``default`` on miss.

        ``record=False`` leaves the hit/miss statistics untouched — used for
        re-checks whose outcome was already accounted for (or is accounted
        for separately via :meth:`note_hit`).
        """
        # Clock reads happen before taking the lock: an injected clock may be
        # arbitrarily slow (or itself synchronised), and a slow call under the
        # cache lock would stall every other cache user.
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                if record:
                    self.stats.misses += 1
                    self._mirror("misses")
                return default
            if self.ttl is not None and now - entry.stored_at > self.ttl:
                del self._entries[key]
                self.stats.expirations += 1
                self._mirror("expirations")
                if record:
                    self.stats.misses += 1
                    self._mirror("misses")
                return default
            entry.last_used_at = now
            self._entries.move_to_end(key)
            if record:
                self.stats.hits += 1
                self._mirror("hits")
            return entry.value

    def note_hit(self) -> None:
        """Count a hit that was observed through an unrecorded lookup."""
        with self._lock:
            self.stats.hits += 1
        self._mirror("hits")

    def note_miss(self) -> None:
        """Count a miss for an unrecorded lookup — e.g. an entry that was
        found but failed a caller-side liveness check (stale solver version,
        re-registered table) and will not be used."""
        with self._lock:
            self.stats.misses += 1
        self._mirror("misses")

    def note_refresh(self) -> None:
        """Count a stale entry handed to the delta-refresh path.

        Locked like every other stats mutation so concurrent refreshes over
        one appended table never lose an increment."""
        with self._lock:
            self.stats.refreshes += 1
        self._mirror("refreshes")

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if needed.

        Every :data:`PURGE_EVERY_PUTS`-th put also runs an opportunistic
        :meth:`purge_expired` sweep, so TTL-expired entries whose keys are
        never looked up again are still reclaimed (amortised, without a
        background thread).
        """
        if not self.enabled:
            return
        now = self._clock()  # hoisted: never call the clock under the lock
        with self._lock:
            if key in self._entries:
                self._entries[key] = _Entry(value=value, stored_at=now, last_used_at=now)
                self._entries.move_to_end(key)
            else:
                self._entries[key] = _Entry(value=value, stored_at=now, last_used_at=now)
                if self.max_size is not None and len(self._entries) > self.max_size:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
                    self._mirror("evictions")
            self.stats.puts += 1
            self._mirror("puts")
            if self.ttl is not None:
                self._puts_since_purge += 1
                if self._puts_since_purge >= self.PURGE_EVERY_PUTS:
                    self._purge_expired_locked(now)

    def purge_expired(self) -> int:
        """Drop every TTL-expired entry now; returns how many were reclaimed.

        Expired entries normally die lazily when their key is looked up
        again; this sweep reclaims the ones nobody will ever retouch.  Safe
        (and a no-op) without a TTL.
        """
        if self.ttl is None:
            return 0
        now = self._clock()  # hoisted: never call the clock under the lock
        with self._lock:
            return self._purge_expired_locked(now)

    def _purge_expired_locked(self, now: float) -> int:
        """Sweep expired entries under the already-held lock."""
        self._puts_since_purge = 0
        if self.ttl is None:
            return 0
        expired = [
            key
            for key, entry in self._entries.items()
            if now - entry.stored_at > self.ttl
        ]
        for key in expired:
            del self._entries[key]
        self.stats.expirations += len(expired)
        self.stats.purged += len(expired)
        self._mirror("expirations", len(expired))
        self._mirror("purged", len(expired))
        return len(expired)

    def keys(self) -> List[Hashable]:
        """Current keys in recency order (oldest first)."""
        with self._lock:
            return list(self._entries.keys())

    def items(self) -> List[Tuple[Hashable, Any]]:
        """Current ``(key, value)`` pairs in recency order (oldest first)."""
        with self._lock:
            return [(key, entry.value) for key, entry in self._entries.items()]

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> Dict[str, float]:
        """All counters plus the current size, read atomically.

        One lock acquisition for the whole snapshot: per-field reads on
        :attr:`stats` can interleave with concurrent updates (hits observed
        after misses were read, and so on), which makes polled metrics drift
        under load.  Metric pollers should use this instead of reading
        ``stats`` field by field.
        """
        with self._lock:
            return {
                **self.stats.snapshot(),
                "size": len(self._entries),
            }

    def __contains__(self, key: object) -> bool:
        now = self._clock()  # hoisted: never call the clock under the lock
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            if self.ttl is not None and now - entry.stored_at > self.ttl:
                return False
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LRUCache(size={len(self)}, max_size={self.max_size}, "
            f"ttl={self.ttl}, hit_rate={self.stats.hit_rate:.2f})"
        )
