"""Canonical query signatures for the serving caches.

Two queries should share cached statistics and plans whenever they are
*semantically* identical, even if they were built differently: ``A AND B``
versus ``B AND A``, a float constraint written as ``0.8`` versus
``0.8000000000001``, the same UDF referenced through two predicate objects.
This module maps queries, constraints and strategy configurations onto
hashable tuples with those equivalences folded away:

* conjunction/disjunction children are sorted into a canonical order, so
  reordered predicates produce equal keys;
* floats are rounded to 12 significant decimals, absorbing representation
  noise without conflating genuinely different constraints;
* UDFs are identified by name (the registry enforces uniqueness).
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from repro.core.constraints import CostModel
from repro.db.predicate import (
    AndPredicate,
    ColumnPredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
    UdfPredicate,
)
from repro.db.query import SelectQuery
from repro.serving.plan_cache import PLAN_CACHE_VERSION

#: Decimal places kept when folding float noise out of signature components.
_FLOAT_DECIMALS = 12


def _canonical_value(value: Any) -> Hashable:
    """Make an arbitrary predicate operand hashable and stable."""
    if isinstance(value, float):
        return round(value, _FLOAT_DECIMALS)
    if isinstance(value, (str, int, bool, type(None))):
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        parts = tuple(sorted((_canonical_value(v) for v in value), key=repr))
        return ("collection", parts)
    return ("repr", repr(value))


def canonical_predicate(predicate: Predicate) -> Tuple:
    """A hashable canonical form of a predicate tree.

    Children of AND/OR nodes are sorted (by the repr of their own canonical
    form) so that logically identical conjunctions hash equal regardless of
    the order they were written in.
    """
    if isinstance(predicate, ColumnPredicate):
        return ("col", predicate.column, predicate.op, _canonical_value(predicate.value))
    if isinstance(predicate, UdfPredicate):
        return ("udf", predicate.udf.name, bool(predicate.expected))
    if isinstance(predicate, (AndPredicate, OrPredicate)):
        tag = "and" if isinstance(predicate, AndPredicate) else "or"
        children = tuple(
            sorted((canonical_predicate(child) for child in predicate.children), key=repr)
        )
        return (tag, children)
    if isinstance(predicate, NotPredicate):
        return ("not", canonical_predicate(predicate.child))
    # Unknown predicate classes fall back to their repr: still hashable, just
    # without reordering equivalence.
    return ("opaque", type(predicate).__name__, repr(predicate))


def statistics_key(table_name: str, predicate: Predicate) -> Tuple:
    """Cache key for per-(table, predicate) statistics (labelled samples)."""
    return ("stats", table_name, canonical_predicate(predicate))


def model_key(table_name: str, predicate: Predicate, column: str) -> Tuple:
    """Cache key for per-(table, column, predicate) selectivity evidence."""
    return ("model", table_name, column, canonical_predicate(predicate))


def strategy_fingerprint(strategy: Any) -> Tuple:
    """A hashable fingerprint of a strategy's plan-affecting configuration.

    Duck-typed over the attributes shared by the pipeline strategies; unknown
    strategies contribute their class name only (callers wanting finer keys
    can expose a ``fingerprint()`` method, which wins when present).
    """
    explicit = getattr(strategy, "fingerprint", None)
    if callable(explicit):
        return tuple(explicit())
    parts = [type(strategy).__name__]
    for attribute in (
        "correlated_column",
        "use_virtual_column",
        "num_buckets",
        "independent",
        "column_sample_fraction",
    ):
        if hasattr(strategy, attribute):
            parts.append((attribute, _canonical_value(getattr(strategy, attribute))))
    scheme = getattr(strategy, "sampling_scheme", None)
    parts.append(("sampling_scheme", repr(scheme) if scheme is not None else None))
    return tuple(parts)


def plan_signature(
    query: SelectQuery,
    cost_model: CostModel,
    strategy: Optional[Any] = None,
) -> Tuple:
    """The canonical plan-cache key for a query under a cost model + strategy.

    Reordered (cheap or expensive) predicates, float representation noise in
    the constraints, and distinct-but-identical strategy instances all map to
    the same signature.  The signature embeds
    :data:`~repro.serving.plan_cache.PLAN_CACHE_VERSION`, so plans produced
    by an older solver stack can never collide with current ones.
    """
    cheap = tuple(
        sorted((canonical_predicate(p) for p in query.cheap_predicates), key=repr)
    )
    return (
        "plan",
        PLAN_CACHE_VERSION,
        query.table,
        canonical_predicate(query.predicate),
        cheap,
        round(query.alpha, _FLOAT_DECIMALS),
        round(query.beta, _FLOAT_DECIMALS),
        round(query.rho, _FLOAT_DECIMALS),
        query.correlated_column,
        round(cost_model.retrieval_cost, _FLOAT_DECIMALS),
        round(cost_model.evaluation_cost, _FLOAT_DECIMALS),
        strategy_fingerprint(strategy) if strategy is not None else None,
    )
