"""Client sessions and admission control for the query service.

Each client of a :class:`~repro.serving.service.QueryService` may carry a
UDF-cost budget: the cumulative retrieval + evaluation cost its queries are
allowed to charge.  The machinery reuses the substrate's cost accounting —
each request runs against a :class:`~repro.db.udf.CostLedger` whose hard
budget is set to the session's remaining allowance, so a query that would
overrun is stopped mid-flight by :class:`~repro.db.errors.BudgetExhaustedError`
exactly as `extensions/budget.py` queries are — and the admission layer adds
two cheaper gates in front:

* a client whose budget is already spent is rejected outright, and
* when a cached plan predicts a cost above the remaining allowance, the
  service re-solves with :func:`repro.core.extensions.budget.solve_budgeted_recall`
  to fit the answer into what the client can still afford (degraded mode)
  instead of failing mid-execution.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.db.errors import DatabaseError


class AdmissionError(DatabaseError):
    """A request was refused before execution (client budget exhausted)."""

    def __init__(self, client_id: str, budget: float, spent: float):
        self.client_id = client_id
        self.budget = budget
        self.spent = spent
        super().__init__(
            f"client {client_id!r} rejected: budget={budget}, already spent={spent}"
        )


class ServiceClosed(DatabaseError):
    """A request arrived after :meth:`QueryService.close` began.

    Typed so clients can tell an orderly shutdown from overload or failure:
    in-flight requests at close time drain to completion, but every later
    ``submit``/``submit_async`` raises this immediately.
    """

    def __init__(self) -> None:
        super().__init__(
            "service is closed: new requests are rejected; re-create the "
            "QueryService to resume serving"
        )


class Overloaded(DatabaseError):
    """A request was shed by the async front-end's admission control.

    Raised (never silently dropped) when the per-class pending-request limit
    is full; counted on the service's ``shed`` metric and on
    ``repro_serving_shed_total`` when the :mod:`repro.obs` registry is
    enabled.  Clients should back off and retry.
    """

    def __init__(self, query_class: str, pending: int, limit: int):
        self.query_class = query_class
        self.pending = pending
        self.limit = limit
        super().__init__(
            f"service overloaded: {pending} pending {query_class!r} requests "
            f"at limit {limit}; retry later"
        )


@dataclass
class ClientSession:
    """Per-client accounting: budget, spend, reservations and counters."""

    client_id: str
    budget: Optional[float] = None
    spent: float = 0.0
    reserved: float = 0.0
    admitted: int = 0
    rejected: int = 0
    degraded: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    #: Held for the duration of each budgeted request: a client's requests
    #: execute one at a time, so budget checks always see settled state and
    #: concurrent arrivals queue instead of being spuriously rejected.
    execution_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def remaining(self) -> float:
        """Remaining allowance (infinite when the session has no budget)."""
        if self.budget is None:
            return float("inf")
        return max(0.0, self.budget - self.spent)

    def reserve(self) -> Optional[float]:
        """Claim the currently unreserved allowance for one request.

        Concurrent requests from one client each get a disjoint slice of the
        budget (the whole free remainder; later arrivals get what is left),
        so N in-flight requests can never jointly overspend.  Returns the
        granted allowance, or ``None`` for unbudgeted sessions.
        """
        with self._lock:
            if self.budget is None:
                return None
            available = max(0.0, self.budget - self.spent - self.reserved)
            self.reserved += available
            return available

    def settle(self, cost: float, reservation: Optional[float] = None) -> None:
        """Record the actual charged cost and release the request's reservation."""
        with self._lock:
            self.spent += cost
            if reservation is not None:
                self.reserved = max(0.0, self.reserved - reservation)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict view for result metadata."""
        return {
            "client_id": self.client_id,
            "budget": self.budget,
            "spent": self.spent,
            "reserved": self.reserved,
            "remaining": None if self.budget is None else self.remaining,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "degraded": self.degraded,
        }


_UNSET = object()


class SessionManager:
    """Creates, tracks and admits client sessions.

    Parameters
    ----------
    default_budget:
        Budget assigned to sessions created implicitly on first use;
        ``None`` means unlimited.
    """

    def __init__(self, default_budget: Optional[float] = None):
        if default_budget is not None and default_budget < 0:
            raise ValueError(f"default_budget must be non-negative, got {default_budget}")
        self.default_budget = default_budget
        self._sessions: Dict[str, ClientSession] = {}
        self._lock = threading.Lock()

    def session(self, client_id: str, budget: object = _UNSET) -> ClientSession:
        """The session for ``client_id``, created on first use.

        ``budget`` overrides the default only at creation time; an existing
        session keeps its original allowance.
        """
        with self._lock:
            existing = self._sessions.get(client_id)
            if existing is not None:
                return existing
            allowance = self.default_budget if budget is _UNSET else budget
            created = ClientSession(client_id=client_id, budget=allowance)
            self._sessions[client_id] = created
            return created

    def admit(self, client_id: str) -> ClientSession:
        """Admit a request for ``client_id`` or raise :class:`AdmissionError`.

        Admission only refuses clients with nothing left to spend; budgeted
        clients with a positive remainder are admitted and constrained by
        their ledger's hard budget during execution.
        """
        session = self.session(client_id)
        with session._lock:
            if session.budget is not None and (
                session.budget - session.spent - session.reserved <= 0.0
            ):
                session.rejected += 1
                raise AdmissionError(client_id, session.budget, session.spent)
            session.admitted += 1
        return session

    def sessions(self) -> Dict[str, ClientSession]:
        """All sessions keyed by client id (a shallow copy)."""
        with self._lock:
            return dict(self._sessions)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-client accounting snapshots."""
        return {client_id: s.snapshot() for client_id, s in self.sessions().items()}
