"""repro.serving — concurrent query serving with statistics/plan caching.

The one-shot pipeline in :mod:`repro.core` recomputes selectivity estimates,
the correlated column and the solved plan on every call.  This package adds
the serving layer a repeated workload needs:

* :class:`QueryService` — thread-safe front-end over a shared catalog,
  with an asyncio front-end (:meth:`~QueryService.submit_async`:
  admission control with typed :class:`Overloaded` shedding, bounded
  concurrency, cold-miss coalescing);
* :class:`ServiceConfig` / :class:`ServiceStats` — one configuration value
  and one typed observability snapshot (:meth:`QueryService.stats`);
* :class:`StatisticsCache` — memoised labelled samples and per-column
  sample outcomes (TTL + LRU, hit/miss accounted);
* :class:`PlanCache` / :class:`CachedPlan` — solved plans keyed by
  canonical query signature;
* :class:`SessionManager` / :class:`ClientSession` / :class:`AdmissionError`
  — per-client UDF-cost budgets and admission control;
* resilience — per-request deadlines (``submit(..., timeout_s=...)`` /
  ``ServiceConfig.default_timeout_s``), circuit-broken degradation of the
  process pool, graceful shutdown (:meth:`QueryService.close`, also a
  context manager) with the typed :class:`ServiceClosed`;
* :class:`BatchExecutor` — vectorised plan execution backend;
* :func:`plan_signature` / :func:`canonical_predicate` — signature
  canonicalisation.

See the "Serving repeated workloads" section of the top-level package
docstring and ``examples/serving_workload.py`` for a full tour.
"""

from repro.serving.batch_executor import BatchExecutor
from repro.serving.cache import CacheStats, LRUCache
from repro.serving.config import ServiceConfig, ServiceStats
from repro.serving.plan_cache import CachedPlan, PlanCache
from repro.serving.service import QueryService
from repro.serving.session import (
    AdmissionError,
    ClientSession,
    Overloaded,
    ServiceClosed,
    SessionManager,
)
from repro.serving.signature import (
    canonical_predicate,
    plan_signature,
    statistics_key,
    strategy_fingerprint,
)
from repro.serving.stats_cache import StatisticsCache

__all__ = [
    "AdmissionError",
    "BatchExecutor",
    "CachedPlan",
    "CacheStats",
    "ClientSession",
    "LRUCache",
    "Overloaded",
    "PlanCache",
    "QueryService",
    "ServiceConfig",
    "ServiceStats",
    "ServiceClosed",
    "SessionManager",
    "StatisticsCache",
    "canonical_predicate",
    "plan_signature",
    "statistics_key",
    "strategy_fingerprint",
]
