"""The concurrent query-serving front-end.

:class:`QueryService` accepts many (possibly concurrent) ``SelectQuery``
requests against one shared :class:`~repro.db.catalog.Catalog` and amortises
the expensive statistical work across them:

* **plan cache** — a repeated query signature skips column selection,
  labelling, sampling *and* the convex-program solve; only the (cheap,
  per-request-seeded) probabilistic execution runs.
* **statistics cache** — a new signature over an already-profiled
  ``(table, predicate)`` reuses the labelled sample and per-column sample
  outcomes, paying only the sampling shortfall before solving.
* **admission/sessions** — per-client UDF-cost budgets enforced through the
  ledger's hard budget, with a budget-constrained re-solve
  (:func:`~repro.core.extensions.budget.solve_budgeted_recall`) when a
  cached plan would overrun what the client can still afford.
* **batched execution** — warm plans execute on the vectorised
  :class:`~repro.serving.batch_executor.BatchExecutor` by default.

Thread safety: cache structures are individually locked, and cold
signatures are computed under a per-signature single-flight lock so N
concurrent identical requests plan once; the single-flight registry is
striped 16 ways by signature hash, so distinct cold signatures never share
a guard.  Each request carries its own seed and ledger, so a warm service
is deterministic per request regardless of thread interleaving.

Sharded catalogs are served transparently: a
:class:`~repro.db.sharding.ShardedTable` satisfies the full table contract,
the statistics cache keys per (table, shard-layout) generation, and the
``"thread"``/``"process"`` executor backends fan execution across the
shards (``"process"`` over shared-memory column exports, the only backend
that scales python-callable UDFs past the GIL).

On top of the synchronous :meth:`QueryService.submit` there is an asyncio
front-end, :meth:`QueryService.submit_async`: admission control sheds
excess per-class load with a typed
:class:`~repro.serving.session.Overloaded` (never a silent drop), requests
execute on a bounded worker pool, and concurrent cold misses for one plan
signature **coalesce** — followers await the leader's planning/sampling
pass, and same-seed followers share its result outright.  Configuration
lives in one :class:`~repro.serving.config.ServiceConfig` value; the
unified observability surface is :meth:`QueryService.stats`.

Data churn is served through a **refresh path**: appending rows to a
catalog table bumps its ``data_generation``, which marks warm plan entries
*refreshable* rather than dead — the next request for such a signature
tops up the cached statistics with delta-only UDF work (sticky correlated
column, reservoir-topped labelled sample, shortfall-only sampling) and
re-solves once, instead of re-planning cold.  See ``_refresh_and_execute``
and the package docstring's "Update workloads" section.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import threading
import time
import warnings
from contextvars import ContextVar
from dataclasses import dataclass, replace as _dc_replace
from typing import Callable, Dict, Hashable, Optional, Tuple, Union

from repro.core.column_selection import top_up_labeled_sample
from repro.core.constraints import CostModel, QueryConstraints
from repro.core.executor import (
    BatchExecutor,
    ExecutorAware,
    ExecutorBackend,
    PlanExecutor,
)
from repro.core.extensions.budget import solve_budgeted_recall
from repro.core.parallel import ParallelBatchExecutor, default_max_workers
from repro.core.pipeline import IntelSample, _probe_bulk_evaluator
from repro.core.procpool import ProcessPoolBatchExecutor, _discard_process_pool
from repro.db.catalog import Catalog
from repro.db.engine import Engine, QueryResult
from repro.db.query import SelectQuery
from repro.db.shm import release_exports
from repro.db.storage import CatalogStore
from repro.db.storage.store import storage_counters
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.obs import metrics as _metrics
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, Histogram
from repro.obs.trace import Trace
from repro.obs.trace import span as _span
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import (
    Deadline,
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
)
from repro.serving import persistence as _persistence
from repro.serving.config import LEGACY_EXECUTORS, ServiceConfig, ServiceStats
from repro.serving.plan_cache import PLAN_CACHE_VERSION, CachedPlan, PlanCache
from repro.serving.session import (
    ClientSession,
    Overloaded,
    ServiceClosed,
    SessionManager,
)
from repro.serving.stats_cache import StatisticsCache
from repro.serving.signature import plan_signature, statistics_key
from repro.stats.random import (
    RandomState,
    SeedLike,
    as_random_state,
    stable_hash_seed,
)

#: Sentinel distinguishing "kwarg not passed" from an explicit ``None`` on
#: the deprecated :class:`QueryService` keyword shims.
_UNSET = object()

#: The deprecated constructor kwargs and the :class:`ServiceConfig` field
#: each folds into.
_LEGACY_KWARGS = (
    "plan_cache_size",
    "stats_cache_size",
    "ttl",
    "executor",
    "default_budget",
    "free_memoized",
    "max_workers",
)


@dataclass
class _Flight:
    """A coalesced cold miss on the async front-end.

    The first arrival for a cold signature becomes the leader and runs the
    full request; followers await ``future``.  Followers whose request is
    bitwise-compatible with the leader's (same seed and audit flag, both
    anonymous) share the leader's result; the rest re-submit once the plan
    is warm.
    """

    signature: Hashable
    seed: object
    audit: bool
    client_id: Optional[str]
    future: "concurrent.futures.Future[QueryResult]"


#: Number of independent single-flight guard stripes.  Cold signatures hash
#: onto a stripe, so registry bookkeeping for one signature never contends
#: with bookkeeping for unrelated signatures on other stripes.
_FLIGHT_STRIPES = 16

#: Why the current request was served degraded (``"breaker_open"`` when the
#: circuit breaker forced in-process execution), or ``None``.  Request-scoped:
#: :meth:`QueryService.submit` resets it on entry and folds it into result
#: metadata and the trace root on exit.
_DEGRADED: ContextVar[Optional[str]] = ContextVar("repro_degraded", default=None)


class QueryService:
    """Serves repeated approximate queries with statistics/plan caching.

    Parameters
    ----------
    catalog:
        The shared catalog, or an :class:`Engine` wrapping one.
    config:
        A :class:`~repro.serving.config.ServiceConfig` with everything else:
        executor backend (``"serial"``/``"thread"``/``"process"``/
        ``"reference"``), cache bounds and TTL, session budgets, serving
        accounting, and the async front-end's admission limits.  Omitted =
        all defaults.  The pre-1.3 loose keyword arguments
        (``plan_cache_size``, ``executor=...`` and friends) still work for
        one release — each folds into a ``ServiceConfig`` with a
        :class:`DeprecationWarning`, and legacy executor names are mapped
        (``"batch"`` → ``"serial"``, ``"parallel"`` → ``"thread"``, old
        ``"serial"`` → ``"reference"``).  Passing both ``config`` and a
        legacy kwarg is an error.
    strategy_factory:
        Maps a per-request :class:`RandomState` to a strategy instance; the
        default builds an :class:`IntelSample` wired to this service's
        executor backend.  The factory must produce identically-configured
        strategies — the configuration is part of every plan signature.
        With a ``"thread"``/``"process"`` backend the strategies must
        implement :class:`~repro.core.executor.ExecutorAware`, otherwise
        the backend would be silently dropped on refresh traffic (checked
        at construction).
    sessions:
        Session manager for admission control; a default manager with
        ``config.default_budget`` is created when omitted.
    """

    def __init__(
        self,
        catalog: Union[Catalog, Engine],
        strategy_factory: Optional[Callable[[RandomState], object]] = None,
        *,
        config: Optional[ServiceConfig] = None,
        sessions: Optional[SessionManager] = None,
        plan_cache_size: object = _UNSET,
        stats_cache_size: object = _UNSET,
        ttl: object = _UNSET,
        executor: object = _UNSET,
        default_budget: object = _UNSET,
        free_memoized: object = _UNSET,
        max_workers: object = _UNSET,
    ):
        legacy = {
            name: value
            for name, value in (
                ("plan_cache_size", plan_cache_size),
                ("stats_cache_size", stats_cache_size),
                ("ttl", ttl),
                ("executor", executor),
                ("default_budget", default_budget),
                ("free_memoized", free_memoized),
                ("max_workers", max_workers),
            )
            if value is not _UNSET
        }
        if legacy:
            if config is not None:
                raise ValueError(
                    "pass configuration either as config=ServiceConfig(...) or "
                    f"through the deprecated keyword arguments {sorted(legacy)}, "
                    "not both"
                )
            remap = ""
            if "executor" in legacy and legacy["executor"] in LEGACY_EXECUTORS:
                canonical = LEGACY_EXECUTORS[legacy["executor"]]
                remap = (
                    f"; executor {legacy['executor']!r} is now spelled "
                    f"{canonical!r}"
                )
                legacy["executor"] = canonical
            warnings.warn(
                f"QueryService keyword arguments {sorted(legacy)} are "
                f"deprecated; pass config=ServiceConfig(...){remap}",
                DeprecationWarning,
                stacklevel=2,
            )
            config = _dc_replace(ServiceConfig(), **legacy)
        self.config = config if config is not None else ServiceConfig()
        self.engine = catalog if isinstance(catalog, Engine) else Engine(catalog)
        self.catalog = self.engine.catalog
        self.executor_backend = self.config.executor
        self.max_workers = self.config.max_workers
        self.free_memoized = self.config.free_memoized
        self.plan_cache = PlanCache(
            max_size=self.config.plan_cache_size, ttl=self.config.ttl
        )
        self.stats_cache = StatisticsCache(
            max_size=self.config.stats_cache_size, ttl=self.config.ttl
        )
        self.sessions = sessions or SessionManager(
            default_budget=self.config.default_budget
        )
        self.strategy_factory = strategy_factory or self._default_strategy_factory
        # A configured-but-unseeded instance whose settings fingerprint every
        # plan signature this service produces.
        self._strategy_prototype = self.strategy_factory(as_random_state(0))
        if self.executor_backend in ("thread", "process") and not isinstance(
            self._strategy_prototype, ExecutorAware
        ):
            raise TypeError(
                f"strategy {type(self._strategy_prototype).__name__} does not "
                "implement ExecutorAware (no executor_factory attribute), so "
                f"the {self.executor_backend!r} executor backend would be "
                "silently dropped on cold and refresh traffic; accept an "
                "executor_factory or use the 'serial' backend"
            )
        self._metrics_lock = threading.Lock()
        self._metrics: Dict[str, int] = {
            "queries": 0,
            "exact_queries": 0,
            "plan_hits": 0,
            "plan_misses": 0,
            "plan_refreshes": 0,
            "pipeline_runs": 0,
            "solver_calls": 0,
            "degraded_plans": 0,
            "rejected": 0,
            "flight_waits": 0,
            "fallbacks": 0,
            "trace_sink_errors": 0,
            "shed": 0,
            "coalesced": 0,
            "deadline_exceeded": 0,
            "degraded": 0,
            "plan_restored": 0,
            "pressure_shed": 0,
            "pressure_cache_clears": 0,
        }
        # Per-path latency histograms (always on — plain instruments, not
        # routed through the opt-in registry, so ``metrics_snapshot()`` can
        # report p50/p95/p99 without anyone calling ``enable_metrics``).
        self._latency_lock = threading.Lock()
        self._latency: Dict[str, Histogram] = {}
        # Per-query tracing is active only while a sink is installed.
        self._trace_sink: Optional[Callable[[Trace], None]] = None
        self._query_ids = itertools.count(1)
        # Striped single-flight registries: signature -> [lock, refcount],
        # sharded by hash(signature) so concurrent *distinct* cold signatures
        # never serialise on one global guard (the guards only protect the
        # registry dicts; each signature's flight lock is its own object).
        self._flight_locks: Tuple[Dict[Hashable, list], ...] = tuple(
            {} for _ in range(_FLIGHT_STRIPES)
        )
        self._flight_guards: Tuple[threading.Lock, ...] = tuple(
            threading.Lock() for _ in range(_FLIGHT_STRIPES)
        )
        # Async front-end: admission counters, the coalescing flight table
        # and the lazily created bounded worker pool.
        self._frontend_lock = threading.Lock()
        self._frontend_pending: Dict[str, int] = {}
        self._async_flights: Dict[Hashable, _Flight] = {}
        self._async_flights_lock = threading.Lock()
        self._frontend_executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        # Resilience: one breaker guards process-pool health for the whole
        # service; requests carry deadlines; close() drains in-flight work
        # under the condition below before tearing pools and exports down.
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            recovery_time_s=self.config.breaker_recovery_s,
            probe_quota=self.config.breaker_probes,
        )
        self._closed = False
        self._inflight = 0
        self._drained = threading.Condition(threading.Lock())
        # Durable warm restart: with a storage_dir configured, restore
        # persisted warm state (plans, statistics, group indexes, UDF memos)
        # for tables whose shard signature matches their durable checkpoint.
        # Restore is best-effort — corrupt or stale blobs are quarantined,
        # counted, and only cost warmth, never construction.
        self._storage: Optional[CatalogStore] = None
        self._storage_counts: Dict[str, int] = {}
        self._warm_saves = 0
        if self.config.storage_dir is not None:
            self._storage = CatalogStore(self.config.storage_dir)
            self._storage_counts = _persistence.restore_warm_state(
                self, self._storage
            )
        # Bounded-memory serving: when the catalog's durable tables were
        # opened lazily (CatalogStore.open(residency=...)), adopt their
        # ResidencyManager — a configured budget overrides the manager's,
        # and watermark crossings degrade in order: caches first (high),
        # then new async admissions (critical, via Overloaded).
        self._residency = self._discover_residency()
        self._pressure_level = "ok"
        if self._residency is not None:
            if self.config.memory_budget_bytes is not None:
                self._residency.set_budget(self.config.memory_budget_bytes)
            self._residency.add_pressure_callback(self._on_memory_pressure)

    # -- construction helpers -----------------------------------------------------
    def _default_strategy_factory(self, random_state: RandomState) -> IntelSample:
        return IntelSample(
            random_state=random_state,
            executor_factory=self._make_executor,
        )

    def _discover_residency(self):
        """The ResidencyManager behind this catalog's lazy tables, if any.

        Lazily opened tables of one catalog share one manager
        (:meth:`~repro.db.storage.CatalogStore.open` threads a single
        ``residency=`` through every table store), so the first hit is the
        catalog's manager.  Eagerly opened catalogs have none — the budget
        then has nothing to bound and the service behaves exactly as before.
        """
        for name in self.catalog.table_names():
            manager = getattr(self.catalog.table(name), "residency_manager", None)
            if manager is not None:
                return manager
        return None

    def _on_memory_pressure(self, level: str) -> None:
        """Edge-triggered residency watermark callback (degradation order).

        ``high`` (resident >= watermark * budget) sheds the plan/stats
        caches — the cheapest reclaimable state, and dropping them also
        releases cached column references that may be keeping evicted
        mappings alive.  ``critical`` (pins holding residency over budget)
        additionally sheds *new* async admissions in
        :meth:`_admit_frontend`; in-flight requests always run to
        completion.  Back at ``ok`` both degradations lift.
        """
        self._pressure_level = level
        if level in ("high", "critical"):
            self.clear_caches()
            self._count("pressure_cache_clears")

    def _note_degraded(self, reason: str) -> None:
        """Record that the current request runs degraded (once per request)."""
        if _DEGRADED.get() is None:
            _DEGRADED.set(reason)
            self._count("degraded")

    def _process_executor(
        self, random_state: RandomState, free_memoized: bool
    ) -> ExecutorBackend:
        """A process-backed executor — unless the circuit breaker says no.

        An open breaker (repeated pool faults) degrades the request to the
        in-process thread executor: bitwise-identical results, just not
        multi-core.  A half-open breaker admits this request as a probe —
        the executor reports the probe's outcome back through the shared
        breaker.
        """
        if not self.breaker.allow():
            self._note_degraded("breaker_open")
            return ParallelBatchExecutor(
                random_state=random_state,
                max_workers=self.max_workers,
                free_memoized=free_memoized,
            )
        return ProcessPoolBatchExecutor(
            random_state=random_state,
            max_workers=self.max_workers,
            free_memoized=free_memoized,
            breaker=self.breaker,
            retry_spans=self.config.retry_spans,
        )

    def _make_executor(self, random_state: RandomState) -> ExecutorBackend:
        if self.executor_backend == "serial":
            # The cold pipeline keeps the paper's charging semantics
            # (free_memoized=False); serving accounting applies on warm paths.
            return BatchExecutor(random_state=random_state)
        if self.executor_backend == "thread":
            return ParallelBatchExecutor(
                random_state=random_state, max_workers=self.max_workers
            )
        if self.executor_backend == "process":
            return self._process_executor(random_state, free_memoized=False)
        return PlanExecutor(random_state=random_state)

    def _warm_executor(self, random_state: RandomState) -> ExecutorBackend:
        if self.executor_backend == "serial":
            return BatchExecutor(
                random_state=random_state, free_memoized=self.free_memoized
            )
        if self.executor_backend == "thread":
            return ParallelBatchExecutor(
                random_state=random_state,
                max_workers=self.max_workers,
                free_memoized=self.free_memoized,
            )
        if self.executor_backend == "process":
            return self._process_executor(
                random_state, free_memoized=self.free_memoized
            )
        return PlanExecutor(random_state=random_state)

    def _cost_model(self) -> CostModel:
        return CostModel(
            retrieval_cost=self.engine.retrieval_cost,
            evaluation_cost=self.engine.evaluation_cost,
        )

    _obs_counters = _metrics.BoundCounterCache(
        lambda registry, metric: registry.counter(f"repro_serving_{metric}_total")
    )

    def _count(self, metric: str, amount: int = 1) -> None:
        with self._metrics_lock:
            self._metrics[metric] += amount
        registry = _metrics.get_registry()
        if registry.enabled:
            self._obs_counters.get(registry, metric).inc(amount)

    def latency_histogram(self, path: str) -> Histogram:
        """The (always-on) latency histogram for a request path.

        Paths: ``all`` (every request), ``exact``, ``strategy`` (named
        strategy bypass), ``hit``/``miss``/``refresh``/``restored``
        (plan-cache classification of approximate queries), ``coalesced``
        (async followers served from a leader's result) and ``error``.  Values are
        seconds; quantiles come out via :meth:`Histogram.quantile` /
        :meth:`metrics_snapshot`.
        """
        found = self._latency.get(path)
        if found is None:
            with self._latency_lock:
                found = self._latency.get(path)
                if found is None:
                    found = Histogram(
                        "repro_query_latency_seconds",
                        buckets=DEFAULT_LATENCY_BUCKETS,
                        labels=(("path", path),),
                    )
                    self._latency[path] = found
        return found

    @staticmethod
    def _latency_path(query: SelectQuery, result: QueryResult) -> str:
        if query.is_exact:
            return "exact"
        if query.strategy is not None:
            return "strategy"
        classified = result.metadata.get("plan_cache")
        if classified in ("hit", "miss", "refresh", "restored"):
            return classified
        return "strategy"

    @staticmethod
    def _flight_stripe(signature: Hashable) -> int:
        """Which guard stripe a signature's flight bookkeeping lives on."""
        return hash(signature) % _FLIGHT_STRIPES

    def _flight_lock(self, signature: Hashable) -> threading.Lock:
        """Join the single-flight for ``signature`` (refcounted)."""
        stripe = self._flight_stripe(signature)
        with self._flight_guards[stripe]:
            entry = self._flight_locks[stripe].get(signature)
            if entry is None:
                entry = [threading.Lock(), 0]
                self._flight_locks[stripe][signature] = entry
            entry[1] += 1
            return entry[0]

    def _release_flight(self, signature: Hashable, lock: threading.Lock) -> None:
        """Leave the single-flight; the last participant drops the registry entry."""
        stripe = self._flight_stripe(signature)
        with self._flight_guards[stripe]:
            entry = self._flight_locks[stripe].get(signature)
            if entry is not None and entry[0] is lock:
                entry[1] -= 1
                if entry[1] <= 0:
                    del self._flight_locks[stripe][signature]

    # -- submission ----------------------------------------------------------------
    def _resolve_deadline(
        self, timeout_s: Optional[float], deadline: Optional[Deadline]
    ) -> Optional[Deadline]:
        """This request's deadline: explicit object, timeout, or config default."""
        if deadline is not None:
            return deadline
        if timeout_s is not None:
            return Deadline.after(timeout_s)
        if self.config.default_timeout_s is not None:
            return Deadline.after(self.config.default_timeout_s)
        return None

    def _enter_request(self) -> None:
        with self._drained:
            if self._closed:
                raise ServiceClosed()
            self._inflight += 1

    def _exit_request(self) -> None:
        with self._drained:
            self._inflight -= 1
            if self._inflight == 0:
                self._drained.notify_all()

    def submit(
        self,
        query: SelectQuery,
        client_id: Optional[str] = None,
        seed: SeedLike = None,
        audit: bool = False,
        timeout_s: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> QueryResult:
        """Answer one query, reusing cached statistics and plans when possible.

        ``seed`` controls all request-local randomness, making a warm
        service deterministic per request.  ``client_id`` routes the request
        through the admission layer; a client whose budget ran out gets an
        :class:`~repro.serving.session.AdmissionError` and a query that
        would overrun mid-flight is stopped by the ledger's hard budget.
        With ``audit=True`` the result carries ground-truth precision/recall.

        ``timeout_s`` (or a pre-built ``deadline``; or, failing both,
        ``config.default_timeout_s``) bounds the request: past the deadline
        the next cooperative cancellation point raises the typed
        :class:`~repro.resilience.deadline.DeadlineExceeded` — counted on
        ``deadline_exceeded`` — and no further UDF work is charged.  After
        :meth:`close` every call raises
        :class:`~repro.serving.session.ServiceClosed`.

        Every request is timed into the per-path latency histograms (see
        :meth:`metrics_snapshot`); while a trace sink is installed
        (:meth:`set_trace_sink`) the request also produces a
        :class:`~repro.obs.trace.Trace` span tree, finished and handed to
        the sink whether the request succeeds or raises.
        """
        self._enter_request()
        degraded_token = _DEGRADED.set(None)
        reason: Optional[str] = None
        sink = self._trace_sink
        trace: Optional[Trace] = None
        if sink is not None:
            trace = Trace("query", query_id=next(self._query_ids))
            trace.root.annotate("table", query.table)
            trace.activate()
        started = time.perf_counter()
        try:
            with deadline_scope(self._resolve_deadline(timeout_s, deadline)):
                result = self._submit(query, client_id, seed, audit)
        except BaseException as exc:
            if isinstance(exc, DeadlineExceeded):
                self._count("deadline_exceeded")
            elapsed = time.perf_counter() - started
            self.latency_histogram("all").observe(elapsed)
            self.latency_histogram("error").observe(elapsed)
            raise
        finally:
            reason = _DEGRADED.get()
            _DEGRADED.reset(degraded_token)
            if trace is not None:
                if reason is not None:
                    # Root annotations reach the slow-query log, so degraded
                    # requests record why they ran in-process.
                    trace.root.annotate("degraded", reason)
                trace.finish()
                try:
                    sink(trace)
                except Exception:
                    # A broken sink must never fail queries; it is counted
                    # so dashboards can notice the drop.
                    self._count("trace_sink_errors")
            self._exit_request()
        if reason is not None:
            result.metadata["degraded"] = reason
        elapsed = time.perf_counter() - started
        self.latency_histogram("all").observe(elapsed)
        self.latency_histogram(self._latency_path(query, result)).observe(elapsed)
        return result

    # -- async front-end -------------------------------------------------------------
    async def submit_async(
        self,
        query: SelectQuery,
        client_id: Optional[str] = None,
        seed: SeedLike = None,
        audit: bool = False,
        timeout_s: Optional[float] = None,
    ) -> QueryResult:
        """Answer one query from an asyncio application without blocking it.

        Semantics are :meth:`submit` plus three front-end behaviours:

        * **admission** — each query class (``exact``/``strategy``/
          ``approximate``) has a pending-request limit
          (``config.class_limits``, default ``config.max_pending``); at the
          limit further arrivals are shed with a typed
          :class:`~repro.serving.session.Overloaded` and counted on the
          ``shed`` metric — never silently dropped.
        * **bounded execution** — admitted requests run on a worker pool of
          ``config.max_concurrency`` threads, so a burst cannot stampede
          the planner.
        * **coalescing** — concurrent cold misses for one plan signature
          merge: the first arrival leads and runs the full request, the
          rest await it.  A follower with the leader's seed and audit flag
          (both anonymous) shares the leader's result — bitwise identical
          row ids, zero extra UDF work, metadata ``coalesced: True``,
          counted on the ``coalesced`` metric.  Other followers (different
          seed, budgeted, or auditing) re-submit once the plan is warm,
          paying only warm-path execution.

        ``timeout_s`` bounds the whole wait, including time parked behind a
        flight leader: a follower whose deadline passes while the leader is
        still planning raises :class:`DeadlineExceeded` instead of waiting
        on, and a bitwise-compatible follower of a leader that *itself*
        timed out receives the leader's typed error rather than re-running.
        """
        if self._closed:
            raise ServiceClosed()
        query_class = self._query_class(query)
        self._admit_frontend(query_class)
        try:
            loop = asyncio.get_running_loop()
            pool = self._frontend_pool()
            signature = self._coalesce_signature(query)
            flight: Optional[_Flight] = None
            leader = False
            if signature is not None:
                flight, leader = self._join_flight(signature, seed, audit, client_id)
            if flight is None:
                return await loop.run_in_executor(
                    pool,
                    lambda: self.submit(
                        query, client_id, seed, audit, timeout_s=timeout_s
                    ),
                )
            if leader:
                try:
                    result = await loop.run_in_executor(
                        pool,
                        lambda: self.submit(
                            query, client_id, seed, audit, timeout_s=timeout_s
                        ),
                    )
                except BaseException as exc:
                    self._finish_flight(flight, None, exc)
                    raise
                self._finish_flight(flight, result, None)
                return result
            # Follower: wait for the leader's pass — but never past this
            # request's own deadline.  A failed leader is normally not
            # propagated (the follower runs its own request, attributing any
            # repeat failure to itself); the exception is a leader killed by
            # its deadline, whose typed error a bitwise-compatible follower
            # shares exactly as it would have shared the result.
            started = time.perf_counter()
            deadline = self._resolve_deadline(timeout_s, None)
            shared: Optional[QueryResult] = None
            shared_error: Optional[BaseException] = None
            try:
                if deadline is None:
                    shared = await asyncio.wrap_future(flight.future)
                else:
                    # Shielded: a follower timing out must not cancel the
                    # *shared* flight future out from under the leader (whose
                    # set_result would then raise) and the other followers.
                    shared = await asyncio.wait_for(
                        asyncio.shield(asyncio.wrap_future(flight.future)),
                        timeout=max(deadline.remaining(), 0.0),
                    )
            except asyncio.TimeoutError:
                self._count("deadline_exceeded")
                raise DeadlineExceeded(deadline.timeout_s, "flight-follower") from None
            except BaseException as exc:  # noqa: BLE001 - classified below
                shared_error = exc
            compatible = (
                client_id is None
                and flight.client_id is None
                and audit == flight.audit
                and seed == flight.seed
            )
            if (
                shared_error is not None
                and compatible
                and isinstance(shared_error, DeadlineExceeded)
            ):
                self._count("deadline_exceeded")
                raise shared_error
            if shared is not None and compatible:
                self._count("coalesced")
                elapsed = time.perf_counter() - started
                self.latency_histogram("all").observe(elapsed)
                self.latency_histogram("coalesced").observe(elapsed)
                return QueryResult(
                    row_ids=shared.row_ids,
                    ledger=shared.ledger,
                    quality=shared.quality,
                    metadata={**shared.metadata, "coalesced": True},
                )
            return await loop.run_in_executor(
                pool,
                lambda: self.submit(query, client_id, seed, audit, timeout_s=timeout_s),
            )
        finally:
            self._release_frontend(query_class)

    @staticmethod
    def _query_class(query: SelectQuery) -> str:
        """Admission class of a query: ``exact``, ``strategy`` or ``approximate``."""
        if query.is_exact:
            return "exact"
        if query.strategy is not None:
            return "strategy"
        return "approximate"

    def _admit_frontend(self, query_class: str) -> None:
        """Count a pending request in, or shed it with :class:`Overloaded`."""
        if self._pressure_level == "critical":
            # Memory pressure the evictor cannot relieve (pinned segments
            # hold residency over budget): the admission limit is
            # effectively zero until in-flight work unpins.
            with self._frontend_lock:
                pending = self._frontend_pending.get(query_class, 0)
            self._count("pressure_shed")
            self._count("shed")
            raise Overloaded(query_class, pending, 0)
        limit = self.config.class_limits.get(query_class, self.config.max_pending)
        with self._frontend_lock:
            pending = self._frontend_pending.get(query_class, 0)
            admitted = pending < limit
            if admitted:
                self._frontend_pending[query_class] = pending + 1
        if not admitted:
            self._count("shed")
            raise Overloaded(query_class, pending, limit)

    def _release_frontend(self, query_class: str) -> None:
        with self._frontend_lock:
            self._frontend_pending[query_class] = max(
                0, self._frontend_pending.get(query_class, 0) - 1
            )

    def _frontend_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        """The lazily created bounded pool async requests execute on."""
        pool = self._frontend_executor
        if pool is None:
            with self._frontend_lock:
                pool = self._frontend_executor
                if pool is None:
                    pool = concurrent.futures.ThreadPoolExecutor(
                        max_workers=self.config.max_concurrency,
                        thread_name_prefix="repro-serve",
                    )
                    self._frontend_executor = pool
        return pool

    def _coalesce_signature(self, query: SelectQuery) -> Optional[Hashable]:
        """The coalescing key for a request, or ``None`` when it must not merge.

        Only approximate, unnamed-strategy queries whose plan signature is
        not already live coalesce — warm requests are cheap and independent,
        and merging them would serialise the very traffic the plan cache
        exists to parallelise.
        """
        if (
            not self.config.coalesce
            or query.is_exact
            or query.strategy is not None
            or not self.plan_cache.enabled
        ):
            return None
        signature = plan_signature(query, self._cost_model(), self._strategy_prototype)
        _, state = self._lookup_entry(signature, query, record=False)
        return None if state == "live" else signature

    def _join_flight(
        self,
        signature: Hashable,
        seed: SeedLike,
        audit: bool,
        client_id: Optional[str],
    ) -> Tuple[_Flight, bool]:
        """Join (or open, becoming leader of) the flight for a signature."""
        with self._async_flights_lock:
            found = self._async_flights.get(signature)
            if found is not None:
                return found, False
            flight = _Flight(
                signature, seed, audit, client_id, concurrent.futures.Future()
            )
            self._async_flights[signature] = flight
            return flight, True

    def _finish_flight(
        self,
        flight: _Flight,
        result: Optional[QueryResult],
        error: Optional[BaseException],
    ) -> None:
        """Close a flight: unregister it, then wake the followers."""
        with self._async_flights_lock:
            if self._async_flights.get(flight.signature) is flight:
                del self._async_flights[flight.signature]
        if flight.future.cancelled():
            # Belt and braces: nothing to deliver into a cancelled future,
            # and set_result/set_exception would raise InvalidStateError.
            return
        if error is not None:
            flight.future.set_exception(error)
        else:
            flight.future.set_result(result)

    def _submit(
        self,
        query: SelectQuery,
        client_id: Optional[str],
        seed: SeedLike,
        audit: bool,
    ) -> QueryResult:
        """The untimed, untraced body of :meth:`submit`."""
        self._count("queries")
        session: Optional[ClientSession] = None
        reservation: Optional[float] = None
        if client_id is not None:
            session = self.sessions.session(client_id)
        budgeted = session is not None and session.budget is not None

        # Budgeted clients execute one request at a time: admission and the
        # budget reservation then always see settled state, so a concurrent
        # arrival queues behind its sibling instead of being rejected (or
        # jointly overspending).  Unbudgeted clients run fully in parallel.
        if budgeted:
            session.execution_lock.acquire()
        try:
            if session is not None:
                try:
                    self.sessions.admit(client_id)
                except Exception:
                    self._count("rejected")
                    raise
                reservation = session.reserve()

            ledger = self.engine.new_ledger()
            if reservation is not None:
                ledger.set_budget(reservation)

            try:
                if query.is_exact:
                    self._count("exact_queries")
                    result = self.engine.execute_exact(query, ledger)
                else:
                    result = self._submit_approximate(query, ledger, seed, session)
            finally:
                if session is not None:
                    session.settle(ledger.total_cost, reservation)
        finally:
            if budgeted:
                session.execution_lock.release()

        if audit:
            result.quality = self.engine.audit(query, result)
        if session is not None:
            result.metadata["session"] = session.snapshot()
        return result

    def _submit_approximate(
        self,
        query: SelectQuery,
        ledger: CostLedger,
        seed: SeedLike,
        session: Optional[ClientSession],
    ) -> QueryResult:
        if query.strategy is not None:
            # Named strategies bypass the caches: resolve through the engine
            # (raising UnsupportedQueryError for unknown names) and run as-is.
            strategy = self.engine.resolve_strategy(query.strategy, None)
            table = self.catalog.table(query.table)
            self._count("pipeline_runs")
            self._count("solver_calls")
            return strategy.run(table, query, ledger)

        with _span("plan-lookup"):
            signature = plan_signature(
                query, self._cost_model(), self._strategy_prototype
            )
            entry, state = self._lookup_entry(signature, query)
        if state == "live":
            self._count("plan_hits")
            return self._execute_cached(query, entry, ledger, seed, session, signature)

        if not self.plan_cache.enabled:
            self._count("plan_misses")
            return self._plan_and_execute(query, ledger, seed, signature)

        # Single-flight: concurrent cold (and refresh) requests for one
        # signature plan once.  The non-blocking first acquire separates
        # flight leaders from waiters, so contention on a cold signature is
        # countable (``flight_waits``) and visible as a span in traces.
        lock = self._flight_lock(signature)
        try:
            if not lock.acquire(blocking=False):
                self._count("flight_waits")
                with _span("flight-wait"):
                    self._acquire_with_deadline(lock)
            try:
                # Re-check without recounting: the pre-lock lookup already
                # recorded this request's cache outcome; a waiter whose plan
                # was computed by the flight leader records its hit here.
                entry, state = self._lookup_entry(signature, query, record=False)
                if state == "live":
                    self.plan_cache.note_hit()
                    self._count("plan_hits")
                    return self._execute_cached(
                        query, entry, ledger, seed, session, signature
                    )
                if state == "refresh":
                    self._count("plan_refreshes")
                    return self._refresh_and_execute(
                        query, entry, ledger, seed, signature
                    )
                self._count("plan_misses")
                return self._plan_and_execute(query, ledger, seed, signature)
            finally:
                lock.release()
        finally:
            # The last participant drops the registry entry, keeping the lock
            # dict bounded by in-flight signatures, not historical ones.
            self._release_flight(signature, lock)

    @staticmethod
    def _acquire_with_deadline(lock: threading.Lock) -> None:
        """Block on a flight lock, but never past the active deadline.

        A request parked behind a cold signature's flight leader must raise
        the typed ``DeadlineExceeded`` when its time runs out — not hang
        until the leader finishes.  The wait is chunked (50 ms) so injected
        test clocks are honoured too, not only real elapsed time.
        """
        deadline = current_deadline()
        if deadline is None:
            lock.acquire()
            return
        while True:
            deadline.check("flight-wait")
            wait = min(max(deadline.remaining(), 0.0), 0.05)
            if lock.acquire(timeout=wait):
                return

    def _lookup_entry(
        self, signature: Tuple, query: SelectQuery, record: bool = True
    ) -> Tuple[Optional[CachedPlan], str]:
        """Classify the cached plan for a signature: live, refreshable or dead.

        *Live* means the entry still refers to the catalog's current table
        object **at its current data generation** — re-registering a table
        under the same name invalidates by identity, and entries stamped
        with a different solver version are dead (a stale plan silently
        re-executing after a solver upgrade is the one failure mode this
        cache must never have).

        *Refresh* means the table object matches but its
        :attr:`~repro.db.table.Table.data_generation` moved on (rows were
        appended): row ids are append-only stable, so the entry's
        statistics are exact for its first ``table_rows`` rows and the
        service updates them through the delta path instead of re-planning
        cold.  Virtual-column plans are not refreshable — their derived
        working table does not grow with the base — and fall back to a cold
        miss.

        Hit/miss statistics are recorded only after the liveness checks, so
        a dead or refreshable entry counts as the miss it behaves as (the
        bench-regression CI gate watches the reported hit rate).
        """
        table = self.catalog.table(query.table)
        entry = self.plan_cache.get(signature, record=False)
        state = "miss"
        if (
            entry is not None
            and entry.solver_version == PLAN_CACHE_VERSION
            and entry.base_table is table
        ):
            if entry.data_generation == table.data_generation:
                state = "live"
            elif (
                not entry.used_virtual_column
                and entry.table_rows <= table.num_rows
            ):
                state = "refresh"
        if record:
            if state == "live":
                self.plan_cache.note_hit()
            else:
                self.plan_cache.note_miss()
        return (entry if state != "miss" else None), state

    # -- cold path ------------------------------------------------------------------
    def _plan_and_execute(
        self,
        query: SelectQuery,
        ledger: CostLedger,
        seed: SeedLike,
        signature: Tuple,
    ) -> QueryResult:
        """Full pipeline run, seeded with cached statistics where available."""
        table = self.catalog.table(query.table)
        udf = self._query_udf(query)
        constraints = QueryConstraints(alpha=query.alpha, beta=query.beta, rho=query.rho)
        strategy = self.strategy_factory(as_random_state(seed))

        cached_labeled = None
        cached_outcomes: Dict[str, object] = {}
        if self.stats_cache.enabled:
            cached_labeled = self.stats_cache.get_labeled(table, query.predicate)
            candidate_columns = tuple(
                column.name for column in table.schema.categorical_columns()
            )
            cached_outcomes = self.stats_cache.outcomes_for(
                table, query.predicate, candidate_columns
            )

        self._count("pipeline_runs")
        self._count("solver_calls")
        result = strategy.answer(
            table,
            udf,
            constraints,
            ledger,
            correlated_column=query.correlated_column,
            cached_labeled=cached_labeled,
            cached_outcomes=cached_outcomes or None,
        )

        report = result.metadata.get("report")
        if report is not None:
            if report.used_fallback:
                self._count("fallbacks")
            self._store(signature, table, query, report)
        result.metadata["plan_cache"] = "miss"
        result.metadata["stats_cache"] = {
            "labeled_hit": cached_labeled is not None,
            "outcome_hits": sorted(cached_outcomes),
        }
        return result

    # -- refresh path (data changed under a warm entry) -----------------------------
    def _reservoir_seed(self, query: SelectQuery) -> int:
        """Deterministic coin-stream seed for the labelled-sample reservoir.

        Keyed on the (table, predicate) statistics identity, so successive
        refreshes of one statistic continue a single position-addressable
        stream — topping up after many small appends is bitwise identical
        to topping up after one big append.
        """
        return stable_hash_seed(
            statistics_key(self.catalog.table(query.table).name, query.predicate)
        )

    def _refresh_and_execute(
        self,
        query: SelectQuery,
        entry: CachedPlan,
        ledger: CostLedger,
        seed: SeedLike,
        signature: Tuple,
    ) -> QueryResult:
        """Update a stale-generation entry through the delta path, then run.

        Instead of re-planning cold (full labelling + sampling, the 13x
        penalty the cold benchmarks measure), the refresh reuses everything
        the previous generation paid for:

        * the **correlated column is sticky** — column selection is skipped
          entirely (small deltas do not change which column correlates);
        * the cached labelled sample gets a reservoir **top-up** charging
          UDF evaluations only for newly admitted delta rows;
        * the cached per-column sample outcome counts toward the sampling
          allocation, so only the delta-driven shortfall is drawn fresh
          (group sizes self-heal through the outcome merge);
        * one solver call re-optimises the plan against the merged evidence.

        The refreshed statistics and plan replace the stale entries under
        their existing keys at the table's new generation.
        """
        table = self.catalog.table(query.table)
        udf = self._query_udf(query)
        constraints = QueryConstraints(alpha=query.alpha, beta=query.beta, rho=query.rho)
        strategy = self.strategy_factory(as_random_state(seed))
        if isinstance(strategy, ExecutorAware):
            # A refresh is warm-path traffic: serving accounting applies, so
            # the execution step never re-charges evaluations the UDF already
            # memoised — the ledger then reads delta-proportional, which the
            # update benchmark gates.
            strategy.executor_factory = self._warm_executor

        cached_labeled = None
        cached_outcomes: Dict[str, object] = {}
        if self.stats_cache.enabled:
            # The delta top-up is the refresh path's own UDF spend (the rest
            # happens inside the pipeline's spans), so it gets a ledger-diffed
            # span of its own.
            with _span("refresh", ledger=ledger):
                stale = self.stats_cache.stale_labeled(table, query.predicate)
                if stale is not None:
                    labeled, covered_rows = stale
                    if covered_rows < table.num_rows:
                        cached_labeled = top_up_labeled_sample(
                            table,
                            udf,
                            ledger,
                            labeled,
                            previous_rows=covered_rows,
                            fraction=getattr(
                                self._strategy_prototype,
                                "column_sample_fraction",
                                0.01,
                            ),
                            stream_seed=self._reservoir_seed(query),
                            # Fan the delta labelling across shards when the
                            # backend is parallel — same hook the cold
                            # pipeline's labelling uses (row selection is
                            # counter-based, so the fan never changes the
                            # sample).
                            bulk_evaluator=_probe_bulk_evaluator(
                                strategy.executor_factory
                                if isinstance(strategy, ExecutorAware)
                                else None,
                                udf,
                            ),
                        )
                    else:
                        cached_labeled = labeled
                stale_outcome = self.stats_cache.stale_outcome(
                    table, query.predicate, entry.column
                )
                if stale_outcome is not None:
                    cached_outcomes[entry.column] = stale_outcome[0]
        if not cached_outcomes and entry.sample_outcome is not None:
            # The stats cache may have evicted (or be disabled); the plan
            # entry itself still carries the paid-for outcome.
            cached_outcomes[entry.column] = entry.sample_outcome

        self._count("solver_calls")
        result = strategy.answer(
            table,
            udf,
            constraints,
            ledger,
            correlated_column=entry.column,
            cached_labeled=cached_labeled,
            cached_outcomes=cached_outcomes or None,
        )

        report = result.metadata.get("report")
        if report is not None:
            if report.used_fallback:
                self._count("fallbacks")
            self._store(signature, table, query, report)
        result.metadata["plan_cache"] = "refresh"
        result.metadata["stats_cache"] = {
            "labeled_hit": cached_labeled is not None,
            "outcome_hits": sorted(cached_outcomes),
        }
        return result

    def _store(self, signature: Tuple, table: Table, query: SelectQuery, report) -> None:
        """Persist the statistics and plan produced by a pipeline run."""
        working_table = getattr(report, "working_table", None)
        outcome = getattr(report, "sample_outcome", None)
        labeled = getattr(report, "labeled", None)
        if working_table is None or report.plan is None:
            return
        if self.stats_cache.enabled:
            if labeled is not None:
                self.stats_cache.put_labeled(table, query.predicate, labeled)
            # Virtual columns live on a derived table whose bucketing depends
            # on the training sample; their outcomes are only reusable through
            # the plan entry, not across signatures.
            if outcome is not None and not report.used_virtual_column:
                self.stats_cache.put_outcome(
                    table, query.predicate, report.correlated_column, outcome
                )
        expected_execution = report.plan.expected_cost(
            report.model, self._cost_model(), include_sampling=False
        )
        self.plan_cache.put(
            signature,
            CachedPlan(
                column=report.correlated_column,
                plan=report.plan,
                model=report.model,
                sample_outcome=outcome,
                working_table=working_table,
                base_table=table,
                expected_execution_cost=expected_execution,
                used_virtual_column=report.used_virtual_column,
                used_fallback=report.used_fallback,
                data_generation=table.data_generation,
                table_rows=table.num_rows,
            ),
        )

    # -- warm path ------------------------------------------------------------------
    def _execute_cached(
        self,
        query: SelectQuery,
        entry: CachedPlan,
        ledger: CostLedger,
        seed: SeedLike,
        session: Optional[ClientSession],
        signature: Tuple,
    ) -> QueryResult:
        """Execute a cached plan: no labelling, no sampling, no solver."""
        udf = self._query_udf(query)
        udf_counters_before = udf.counter_snapshot()
        index = self.stats_cache.get_index(entry.working_table, entry.column)

        # A restored entry (loaded from durable storage, not solved here)
        # reports its first hit as ``plan_cache: "restored"`` — the
        # warm-restart win stays observable — then rejoins steady-state
        # accounting as an ordinary hit.
        restored = entry.restored
        if restored:
            self.plan_cache.put(signature, _dc_replace(entry, restored=False))
            self._count("plan_restored")

        plan = entry.plan
        degraded = False
        allowance = ledger.budget
        if allowance is not None and entry.expected_execution_cost > allowance:
            # Budget-constrained degradation: maximise recall within this
            # request's granted allowance while keeping the precision bound.
            with _span("solve"):
                solution = solve_budgeted_recall(
                    entry.model,
                    precision_bound=query.alpha,
                    rho=query.rho,
                    budget=allowance,
                    cost_model=self._cost_model(),
                )
            plan = solution.plan
            degraded = True
            self._count("solver_calls")
            self._count("degraded_plans")
            if session is not None:
                session.degraded += 1

        with _span("execute"):
            executor = self._warm_executor(as_random_state(seed))
            execution = executor.execute(
                entry.working_table,
                index,
                udf,
                plan,
                ledger,
                sample_outcome=entry.sample_outcome,
            )
        return QueryResult(
            row_ids=execution.returned_row_ids,
            ledger=ledger,
            metadata={
                "strategy": "intel_sample",
                "plan_cache": "restored" if restored else "hit",
                "degraded_to_budget": degraded,
                "correlated_column": entry.column,
                "used_virtual_column": entry.used_virtual_column,
                "evaluations": ledger.evaluated_count,
                "retrievals": ledger.retrieved_count,
                "udf_cache": udf.counter_delta(udf_counters_before),
            },
        )

    # -- helpers -------------------------------------------------------------------
    def _query_udf(self, query: SelectQuery) -> UserDefinedFunction:
        predicates = query.udf_predicates
        if not predicates:
            raise ValueError(
                "approximate query has no UDF predicate to optimize; run it "
                "exactly (alpha=beta=1) or add a UdfPredicate"
            )
        if len(predicates) > 1:
            raise ValueError(
                "the serving pipeline handles a single UDF predicate; use "
                "repro.core.extensions.multi_predicate for conjunctions"
            )
        return predicates[0].udf

    # -- lifecycle -----------------------------------------------------------------
    def save_warm_state(self) -> Dict[str, int]:
        """Checkpoint the catalog and persist the service's warm state.

        Writes every table's segments/manifest/journal through the
        configured :class:`~repro.db.storage.CatalogStore`, then the warm
        blobs (plan-cache entries, statistics reservoirs, group-index
        codes, UDF memos) stamped with each table's current shard
        signature.  Storage faults (including injected ones) propagate —
        this is the explicit durability call; :meth:`close` wraps it
        best-effort.  Returns what was captured.
        """
        if self._storage is None:
            raise ValueError(
                "no storage configured; pass ServiceConfig(storage_dir=...)"
            )
        counts = _persistence.save_warm_state(self, self._storage)
        self._warm_saves += 1
        return counts

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain in-flight requests, then tear down deterministically.

        The moment close begins, new :meth:`submit`/:meth:`submit_async`
        calls raise the typed :class:`~repro.serving.session.ServiceClosed`;
        requests already executing drain to completion (bounded by
        ``timeout`` seconds, ``None`` = wait for all of them).  Teardown
        then shuts the async front-end pool down, discards the shared
        process pool (when this service used one) and releases every
        shared-memory export of this catalog's tables — after close,
        :func:`repro.db.shm.exported_segment_count` owes nothing to this
        service.  Idempotent: a second close is a cheap no-op re-running
        only the (already empty) teardown.  Also the context-manager exit.
        """
        with self._drained:
            already = self._closed
            self._closed = True
            if not already:
                expires = None if timeout is None else time.monotonic() + timeout
                while self._inflight > 0:
                    remaining = (
                        None if expires is None else expires - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        break
                    self._drained.wait(timeout=remaining)
            drained = self._inflight == 0
        if not already and self._storage is not None:
            # Best-effort durability on shutdown: a failing disk must not
            # turn close() into a crash — explicit save_warm_state() is the
            # call that propagates storage faults.
            try:
                self.save_warm_state()
            except Exception:
                pass
        pool = self._frontend_executor
        self._frontend_executor = None
        if pool is not None:
            # Undrained (timed-out) closes must not block forever on a
            # wedged request thread; drained closes join cleanly.
            pool.shutdown(wait=drained, cancel_futures=True)
        if self.executor_backend == "process":
            workers = (
                default_max_workers() if self.max_workers is None else self.max_workers
            )
            _discard_process_pool(workers)
        for name in self.catalog.table_names():
            release_exports(self.catalog.table(name))
        if self._residency is not None:
            # Nothing is in flight any more, so nothing should be pinned:
            # drop every mapping this service's tables hold.  The leak gate
            # (tests/leakcheck.py) asserts this leaves zero resident bytes.
            self._residency.evict_all()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> ServiceStats:
        """The unified observability surface: one typed snapshot of everything.

        Bundles the serving counters, both cache snapshots, per-client
        session accounting, per-path latency summaries, the async
        front-end's admission state and — when the global metrics registry
        is enabled — its full snapshot.  Field contract:
        :data:`repro.serving.config.SERVICE_STATS_SCHEMA` (the stats-side
        sibling of :meth:`repro.db.engine.Engine.metadata_schema`).  The
        older :meth:`metrics`, :meth:`latency_snapshot` and
        :meth:`metrics_snapshot` remain as thin aliases over the same data.
        """
        with self._metrics_lock:
            counters = dict(self._metrics)
        counters["retried_spans"] = self.breaker.retries_total
        with self._frontend_lock:
            pending = dict(self._frontend_pending)
        with self._async_flights_lock:
            open_flights = len(self._async_flights)
        resilience = self.breaker.snapshot()
        resilience["service_closed"] = self._closed
        storage: Dict[str, object] = {}
        if self._storage is not None:
            storage = dict(storage_counters())
            storage.update(self._storage_counts)
            storage["warm_state_saved"] = self._warm_saves
        if self._residency is not None:
            storage["residency"] = self._residency.snapshot()
        return ServiceStats(
            serving=counters,
            plan_cache=self.plan_cache.snapshot(),
            stats_cache=self.stats_cache.snapshot(),
            sessions=self.sessions.snapshot(),
            latency_ms=self.latency_snapshot(),
            frontend={
                "pending": pending,
                "max_pending": self.config.max_pending,
                "class_limits": dict(self.config.class_limits),
                "max_concurrency": self.config.max_concurrency,
                "coalesce": self.config.coalesce,
                "open_flights": open_flights,
            },
            registry=_metrics.get_registry().snapshot(),
            resilience=resilience,
            storage=storage,
        )

    def metrics(self) -> Dict[str, object]:
        """Serving metrics plus cache hit/miss statistics.

        Alias view kept for compatibility; :meth:`stats` is the unified
        (and typed) surface.
        """
        with self._metrics_lock:
            counters = dict(self._metrics)
        counters["retried_spans"] = self.breaker.retries_total
        return {
            **counters,
            "plan_cache": self.plan_cache.snapshot(),
            "stats_cache": self.stats_cache.snapshot(),
        }

    def latency_snapshot(self) -> Dict[str, Dict[str, Optional[float]]]:
        """Per-path latency summaries in **milliseconds**.

        Each path maps to ``{count, mean_ms, p50_ms, p95_ms, p99_ms,
        max_ms}``; quantiles are ``None`` for paths that served nothing.
        Always available — the latency histograms do not depend on the
        opt-in metrics registry.
        """
        with self._latency_lock:
            histograms = dict(self._latency)
        summary: Dict[str, Dict[str, Optional[float]]] = {}
        for path, hist in sorted(histograms.items()):
            scale = lambda v: None if v is None else v * 1000.0  # noqa: E731
            snap = hist.snapshot()
            summary[path] = {
                "count": snap["count"],
                "mean_ms": scale(hist.mean),
                "p50_ms": scale(snap["p50"]),
                "p95_ms": scale(snap["p95"]),
                "p99_ms": scale(snap["p99"]),
                "max_ms": scale(snap["max"]),
            }
        return summary

    def metrics_snapshot(self) -> Dict[str, object]:
        """Compatibility alias bundling :meth:`metrics`, latency and registry.

        Kept with its historical three-key shape (``serving`` /
        ``latency_ms`` / ``registry``); new code should prefer
        :meth:`stats`, which adds session and front-end state and returns a
        typed :class:`~repro.serving.config.ServiceStats`.
        """
        return {
            "serving": self.metrics(),
            "latency_ms": self.latency_snapshot(),
            "registry": _metrics.get_registry().snapshot(),
        }

    def set_trace_sink(self, sink: Optional[Callable[[Trace], None]]) -> None:
        """Install (or with ``None`` remove) the per-query trace sink.

        While a sink is installed every :meth:`submit` call builds a
        :class:`~repro.obs.trace.Trace` and hands the finished trace to the
        sink — see :class:`~repro.obs.export.CollectingTraceSink`,
        :class:`~repro.obs.export.JsonLinesTraceSink` and
        :class:`~repro.obs.export.SlowQueryLog`.  Sink exceptions are
        swallowed (counted as ``trace_sink_errors``), never surfaced to
        query callers.  With no sink installed tracing costs nothing.
        """
        self._trace_sink = sink

    def clear_caches(self) -> None:
        """Drop every cached plan and statistic (sessions are kept)."""
        self.plan_cache.clear()
        self.stats_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryService(tables={self.catalog.table_names()}, "
            f"executor={self.executor_backend!r}, plans={len(self.plan_cache)})"
        )
