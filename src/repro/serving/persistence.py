"""Warm-state persistence: what makes a restart *warm*, saved with the data.

Durable segments (:mod:`repro.db.storage`) make a restarted service
*correct*; this module makes it *fast*.  Alongside each table's checkpoint
it persists the state a long-running service accretes:

* **plan-cache entries** — solved :class:`~repro.serving.plan_cache.CachedPlan`
  values keyed by canonical plan signature, so the first repeated query
  after a restart replays the solved plan instead of re-running column
  selection, sampling and the convex solve,
* **statistics reservoirs** — labelled samples and merged sample outcomes
  from the :class:`~repro.serving.stats_cache.StatisticsCache`,
* **group-index codes** — the factorised ``(values, codes)`` parts of every
  built :class:`~repro.db.index.GroupIndex` (per shard and merged), restored
  without counting index builds,
* **UDF memo caches** — the paid-for ``row_id → bool`` evaluations, which is
  what lets a restored plan re-execute with **zero** fresh UDF calls.

Everything is stamped with the owning table's
:meth:`~repro.db.table.Table.shard_signature` and restored only on an exact
match — warm state is an optimisation, never an alternative source of
truth, so a blob that is stale, torn or checksum-failing is quarantined and
skipped (counted, surfaced in ``stats().storage``), and the service simply
starts cold for that table.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import replace as _dc_replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.db.errors import CorruptSegmentError
from repro.db.index import GroupIndex, MergedGroupIndex
from repro.db.sharding import ShardedTable
from repro.db.storage.segments import atomic_write_bytes
from repro.db.storage.store import CatalogStore, RecoveryReport, _count
from repro.db.table import Table

#: Warm-state blob magic (8 bytes, versioned).
WARM_MAGIC = b"RPWRM01\x00"

#: Basename of the per-table warm-state blob under ``<table>/warm/``.
WARM_STATE_FILE = "state.blob"

_CRC = struct.Struct("<I")


def _write_blob(path: str, payload: object) -> None:
    """Atomically write a CRC-wrapped pickle blob."""
    data = pickle.dumps(payload, protocol=4)
    atomic_write_bytes(path, WARM_MAGIC + _CRC.pack(zlib.crc32(data)) + data)


def _read_blob(path: str) -> Optional[object]:
    """Read a warm blob; ``None`` when absent, typed error when corrupt."""
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return None
    if len(raw) < len(WARM_MAGIC) + _CRC.size or raw[: len(WARM_MAGIC)] != WARM_MAGIC:
        raise CorruptSegmentError(path, "bad warm-state magic")
    (crc,) = _CRC.unpack_from(raw, len(WARM_MAGIC))
    data = raw[len(WARM_MAGIC) + _CRC.size :]
    if zlib.crc32(data) != crc:
        raise CorruptSegmentError(path, "warm-state checksum mismatch")
    try:
        return pickle.loads(data)
    except Exception as exc:
        raise CorruptSegmentError(path, f"unpicklable warm state: {exc}") from None


def _picklable(value: object) -> bool:
    try:
        pickle.dumps(value, protocol=4)
        return True
    except Exception:
        return False


# -- capture -----------------------------------------------------------------------
def _capture_plans(service, table: Table) -> List[Dict[str, Any]]:
    """Cached plans over ``table``, with table references stripped.

    Virtual-column plans are skipped: their working table is a derived copy
    whose bucketing depends on the training sample, so they cannot be
    rebound to the reopened base table.  Entries that fail a pickle probe
    (e.g. a plan closed over an unpicklable strategy) are skipped too —
    persistence must never make :meth:`save_warm_state` fail.
    """
    captured: List[Dict[str, Any]] = []
    for signature, entry in service.plan_cache._cache.items():
        if entry.base_table is not table or entry.working_table is not table:
            continue
        if entry.used_virtual_column:
            continue
        stripped = _dc_replace(entry, working_table=None, base_table=None, restored=True)
        if not _picklable((signature, stripped)):
            continue
        captured.append({"signature": signature, "entry": stripped})
    return captured


def _capture_stats(service, table: Table) -> List[Dict[str, Any]]:
    """Statistics-cache entries for ``table`` (labelled samples + outcomes).

    The cache keys on ``(id(table), tail)``; only the tail is persisted —
    restore re-keys against the reopened table object's identity.
    """
    captured: List[Dict[str, Any]] = []
    for cache_name, cache in (
        ("labeled", service.stats_cache.labeled_samples),
        ("outcome", service.stats_cache.sample_outcomes),
    ):
        for key, value in cache.items():
            stored_table, signature, rows, payload = value
            if stored_table is not table:
                continue
            if not _picklable(payload):
                continue
            captured.append(
                {
                    "cache": cache_name,
                    "key_tail": key[1],
                    "signature": signature,
                    "rows": rows,
                    "payload": payload,
                }
            )
    return captured


def _index_parts(index: GroupIndex) -> Dict[str, Any]:
    return {"values": list(index._values), "codes": np.asarray(index._codes)}


def _capture_indexes(table: Table) -> List[Dict[str, Any]]:
    """The factorised parts of every group index built on ``table``."""
    captured: List[Dict[str, Any]] = []
    for (allow_hidden, column), index in table._group_indexes.items():
        record: Dict[str, Any] = {
            "column": column,
            "allow_hidden": allow_hidden,
            "merged": _index_parts(index),
            "shards": None,
        }
        if isinstance(index, MergedGroupIndex):
            record["shards"] = [
                _index_parts(shard_index) for shard_index in index.shard_indexes
            ]
        if not _picklable(record):
            continue
        captured.append(record)
    return captured


def _capture_udf_memos(service) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Every registered UDF's memo cache as sorted (row_ids, values) arrays."""
    memos: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for udf in service.catalog.udfs:
        if not udf.memoize:
            continue
        ids, values = udf._memo_arrays()
        if ids.size:
            memos[udf.name] = (np.asarray(ids), np.asarray(values))
    return memos


def save_warm_state(service, store: CatalogStore) -> Dict[str, int]:
    """Checkpoint the catalog, then persist the service's warm state.

    The two are written together so every warm blob's signature stamp
    matches the durable generation it sits next to; a crash between the
    two leaves data durable and warm state stale — restore then skips the
    stale blob and starts cold, which is safe.
    """
    store.save(service.catalog)
    counts = {"plans": 0, "stats_entries": 0, "group_indexes": 0, "udf_memos": 0}
    memos = _capture_udf_memos(service)
    counts["udf_memos"] = len(memos)
    for name in service.catalog.table_names():
        table = service.catalog.table(name)
        plans = _capture_plans(service, table)
        stats = _capture_stats(service, table)
        indexes = _capture_indexes(table)
        table_store = store.table_store(name)
        os.makedirs(table_store.warm_dir, exist_ok=True)
        _write_blob(
            os.path.join(table_store.warm_dir, WARM_STATE_FILE),
            {
                "table": name,
                "signature": table.shard_signature(),
                "plans": plans,
                "stats": stats,
                "indexes": indexes,
                "udf_memos": memos,
            },
        )
        counts["plans"] += len(plans)
        counts["stats_entries"] += len(stats)
        counts["group_indexes"] += len(indexes)
    return counts


# -- restore -----------------------------------------------------------------------
def _restore_index(
    table: Table, column: str, allow_hidden: bool, record: Dict[str, Any]
) -> None:
    """Reinstall a persisted group index without counting an index build."""
    key = (allow_hidden, column)
    if key in table._group_indexes:
        return
    merged = record["merged"]
    if isinstance(table, ShardedTable):
        shard_parts = record.get("shards")
        if shard_parts is None or len(shard_parts) != len(table.shards):
            return
        shard_indexes: List[GroupIndex] = []
        for shard, parts in zip(table.shards, shard_parts):
            shard_index = GroupIndex.__new__(GroupIndex)
            shard_index.table = shard
            shard_index.column = column
            shard_index._install(
                list(parts["values"]), np.asarray(parts["codes"]), count_build=False
            )
            shard._group_indexes[key] = shard_index
            shard_indexes.append(shard_index)
        index: GroupIndex = MergedGroupIndex.__new__(MergedGroupIndex)
        index.table = table
        index.column = column
        index.shard_indexes = shard_indexes
        index._offsets = tuple(table.shard_offsets)
        index._install(
            list(merged["values"]), np.asarray(merged["codes"]), count_build=False
        )
    else:
        index = GroupIndex.__new__(GroupIndex)
        index.table = table
        index.column = column
        index._install(
            list(merged["values"]), np.asarray(merged["codes"]), count_build=False
        )
    table._group_indexes[key] = index


def _restore_udf_memos(service, memos: Dict[str, Tuple[np.ndarray, np.ndarray]]) -> int:
    restored = 0
    for name, (ids, values) in memos.items():
        if name not in service.catalog.udfs:
            continue
        udf = service.catalog.udf(name)
        if not udf.memoize:
            continue
        with udf._state_lock:
            udf._cache.update(
                zip(np.asarray(ids).tolist(), np.asarray(values).tolist())
            )
            udf._memo_snapshot = None
        restored += 1
    return restored


def restore_warm_state(service, store: CatalogStore) -> Dict[str, int]:
    """Load persisted warm state into a freshly constructed service.

    Per-table blobs are validated (magic + CRC), signature-gated against the
    *reopened* table, and restored independently: one corrupt or stale blob
    is quarantined/skipped and counted in ``restore_errors`` without
    touching any other table's warm state — a failed restore can only ever
    cost warmth, never correctness.
    """
    counts = {
        "restored_plans": 0,
        "restored_stats_entries": 0,
        "restored_group_indexes": 0,
        "restored_udf_memos": 0,
        "restore_errors": 0,
    }
    memos_restored = False
    for name in service.catalog.table_names():
        table_store = store.table_store(name)
        path = os.path.join(table_store.warm_dir, WARM_STATE_FILE)
        try:
            payload = _read_blob(path)
        except CorruptSegmentError:
            _count("checksum_failures")
            table_store._quarantine(path, RecoveryReport())
            counts["restore_errors"] += 1
            continue
        if payload is None:
            continue
        try:
            table = service.catalog.table(name)
            if payload["signature"] != table.shard_signature():
                # Stale warm state (data reopened at a different durable
                # generation): starting cold is the safe answer.
                counts["restore_errors"] += 1
                continue
            for record in payload["indexes"]:
                _restore_index(table, record["column"], record["allow_hidden"], record)
                counts["restored_group_indexes"] += 1
            for record in payload["stats"]:
                cache = (
                    service.stats_cache.labeled_samples
                    if record["cache"] == "labeled"
                    else service.stats_cache.sample_outcomes
                )
                if cache.enabled:
                    cache.put(
                        (id(table), record["key_tail"]),
                        (table, record["signature"], record["rows"], record["payload"]),
                    )
                    counts["restored_stats_entries"] += 1
            for record in payload["plans"]:
                entry = _dc_replace(
                    record["entry"], working_table=table, base_table=table
                )
                if service.plan_cache.enabled:
                    service.plan_cache.put(record["signature"], entry)
                    counts["restored_plans"] += 1
            if not memos_restored:
                counts["restored_udf_memos"] += _restore_udf_memos(
                    service, payload.get("udf_memos", {})
                )
                memos_restored = True
        except Exception:
            # Structurally unexpected payloads degrade to a cold start for
            # this table; never fail service construction over warmth.
            counts["restore_errors"] += 1
    return counts
