"""Vectorised plan execution (compatibility re-export).

:class:`BatchExecutor` started life here as the serving layer's private
backend.  It is now the *default* execution backend for the whole library
and lives in :mod:`repro.core.executor`, next to the paper-faithful
:class:`~repro.core.executor.PlanExecutor` it is differential-tested
against.  This module re-exports it so existing serving-layer imports keep
working.
"""

from repro.core.executor import BatchExecutor

__all__ = ["BatchExecutor"]
