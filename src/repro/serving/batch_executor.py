"""Vectorised plan execution for the serving layer.

:class:`BatchExecutor` implements the same
:class:`~repro.core.executor.ExecutorBackend` protocol as the paper-faithful
:class:`~repro.core.executor.PlanExecutor`, but replaces the tuple-at-a-time
retrieve/evaluate loop with one NumPy pass per group:

1. draw every retrieval coin of the group in a single ``random(n)`` call and
   mask down to the retrieved rows,
2. draw the conditional evaluation coins for the retrieved rows in a second
   vectorised call,
3. evaluate the selected rows through
   :meth:`~repro.db.udf.UserDefinedFunction.evaluate_rows` (which takes a
   vectorised fast path over :meth:`~repro.db.table.Table.column_array` for
   label-revealing UDFs and serves memoised rows from cache).

The backend is distributionally identical to ``PlanExecutor`` — the same
per-tuple Bernoulli semantics — and fully deterministic for a fixed seed,
but consumes the random stream in blocks, so a given seed produces a
different (equally valid) sample path than the serial executor.  For fully
deterministic plans (all probabilities 0/1) both backends return exactly the
same rows.

``free_memoized=True`` switches the ledger accounting to serving semantics:
rows whose UDF value is already memoised are not re-charged, mirroring a
production system that never pays twice for the same expensive predicate.
The default (``False``) keeps the paper's accounting, where every
execution-phase evaluation is charged.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.core.executor import ExecutionResult, GroupExecutionCounts
from repro.core.plan import ExecutionPlan
from repro.db.index import GroupIndex
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.sampling.sampler import SampleOutcome
from repro.stats.random import RandomState, SeedLike, as_random_state


class BatchExecutor:
    """Executes plans with one vectorised pass per group."""

    def __init__(self, random_state: SeedLike = None, free_memoized: bool = False):
        self.random_state: RandomState = as_random_state(random_state)
        self.free_memoized = free_memoized

    def execute(
        self,
        table: Table,
        index: GroupIndex,
        udf: UserDefinedFunction,
        plan: ExecutionPlan,
        ledger: CostLedger,
        sample_outcome: Optional[SampleOutcome] = None,
    ) -> ExecutionResult:
        """Run ``plan`` over every group of ``index`` (vectorised)."""
        returned: List[int] = []
        group_counts: Dict[Hashable, GroupExecutionCounts] = {}

        sampled_ids: Dict[Hashable, np.ndarray] = {}
        if sample_outcome is not None:
            for key, sample in sample_outcome.samples.items():
                if sample.sampled_row_ids:
                    sampled_ids[key] = np.asarray(sample.sampled_row_ids, dtype=np.intp)
                returned.extend(sample.positive_row_ids)

        rng = self.random_state.generator
        for key in index.values:
            decision = plan.decision(key)
            counts = GroupExecutionCounts()
            group_counts[key] = counts
            retrieve_probability = decision.retrieve_probability
            conditional_evaluate = decision.conditional_evaluate_probability
            if retrieve_probability <= 0.0:
                continue

            rows = index.row_id_array(key)
            already = sampled_ids.get(key)
            if already is not None:
                candidates = rows[~np.isin(rows, already)]
            else:
                candidates = rows
            if candidates.size == 0:
                continue

            # One coin per candidate tuple, drawn in a single block.
            if retrieve_probability >= 1.0:
                retrieved = candidates
            else:
                retrieved = candidates[rng.random(candidates.size) < retrieve_probability]
            if retrieved.size == 0:
                continue
            ledger.charge_retrieval(int(retrieved.size))

            if conditional_evaluate <= 0.0:
                counts.returned += int(retrieved.size)
                returned.extend(int(r) for r in retrieved)
                continue

            if conditional_evaluate >= 1.0:
                evaluate_mask = np.ones(retrieved.size, dtype=bool)
            else:
                evaluate_mask = rng.random(retrieved.size) < conditional_evaluate
            to_evaluate = retrieved[evaluate_mask]

            # Keep every retrieved-but-unevaluated row; evaluated rows are
            # kept only when the UDF passes.  ``keep_mask`` preserves the
            # group's row order in the output, matching the serial backend.
            keep_mask = ~evaluate_mask
            if to_evaluate.size:
                # Charge before evaluating (the serial backend's order), so a
                # hard budget stops the batch before any UDF work happens and
                # no un-paid-for values land in the memo cache.
                if self.free_memoized:
                    charge = sum(
                        1 for row_id in to_evaluate if not udf.is_memoized(int(row_id))
                    )
                else:
                    charge = int(to_evaluate.size)
                if charge:
                    ledger.charge_evaluation(charge)
                outcomes = udf.evaluate_rows(table, to_evaluate)
                positives = int(outcomes.sum())
                negatives = int(to_evaluate.size) - positives
                counts.evaluated_correct += positives
                counts.retrieved_correct += positives
                counts.evaluated_incorrect += negatives
                counts.retrieved_incorrect += negatives
                counts.returned += positives
                keep_mask = keep_mask.copy()
                keep_mask[np.flatnonzero(evaluate_mask)] = outcomes

            unevaluated = int(retrieved.size) - int(to_evaluate.size)
            counts.returned += unevaluated
            returned.extend(int(r) for r in retrieved[keep_mask])

        return ExecutionResult(
            returned_row_ids=returned,
            ledger=ledger,
            group_counts=group_counts,
        )
