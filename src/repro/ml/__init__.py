"""Machine-learning substrate.

The paper uses three ML components:

* a logistic regressor that turns labelled samples into per-tuple probability
  scores, feeding the virtual-column construction of Section 4.4 and the
  Figure 1(c) experiment,
* a semi-supervised classifier that implements the "Learning" baseline of
  Section 6.2, and
* a multiple-imputations procedure implementing the "Multiple" baseline.

scikit-learn is not available offline, so these are small, dependency-free
implementations on top of numpy; the interfaces mirror the sklearn style
(``fit`` / ``predict`` / ``predict_proba``).
"""

from repro.ml.bucketer import ScoreBucketer
from repro.ml.features import FeatureEncoder, standardize
from repro.ml.imputation import MultipleImputer
from repro.ml.logistic import LogisticRegression
from repro.ml.semi_supervised import SelfTrainingClassifier

__all__ = [
    "FeatureEncoder",
    "standardize",
    "LogisticRegression",
    "ScoreBucketer",
    "SelfTrainingClassifier",
    "MultipleImputer",
]
