"""Feature extraction from table rows.

The logistic-regression virtual column (paper Section 4.4) is trained on the
*available* columns of the table: numeric columns are standardized, and
categorical/nominal columns with fewer than a configurable number of distinct
values are one-hot encoded (the paper uses "< 50 different values" to avoid
overfitting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.table import Table


def standardize(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Column-standardize ``matrix``; returns ``(standardized, mean, std)``.

    Constant columns get a std of 1 so they become all-zero rather than NaN.
    """
    matrix = np.asarray(matrix, dtype=float)
    means = matrix.mean(axis=0) if matrix.size else np.zeros(matrix.shape[1])
    stds = matrix.std(axis=0) if matrix.size else np.ones(matrix.shape[1])
    stds = np.where(stds == 0.0, 1.0, stds)
    return (matrix - means) / stds, means, stds


@dataclass
class FeatureEncoder:
    """One-hot + standardization encoder over a table's visible columns.

    Parameters
    ----------
    max_categorical_cardinality:
        Categorical columns with more distinct values than this are skipped
        (mirrors the paper's "< 50 different values" rule).
    exclude_columns:
        Columns never to use as features (e.g. the correlated column when we
        want an independent predictor, or identifier columns).
    """

    max_categorical_cardinality: int = 50
    exclude_columns: Sequence[str] = field(default_factory=tuple)
    _numeric_columns: List[str] = field(default_factory=list, repr=False)
    _categorical_levels: Dict[str, List[Any]] = field(default_factory=dict, repr=False)
    _means: Optional[np.ndarray] = field(default=None, repr=False)
    _stds: Optional[np.ndarray] = field(default=None, repr=False)
    _fitted: bool = field(default=False, repr=False)

    def fit(self, table: Table, row_ids: Optional[Sequence[int]] = None) -> "FeatureEncoder":
        """Learn the encoding from (a subset of) a table."""
        excluded = set(self.exclude_columns)
        self._numeric_columns = [
            column.name
            for column in table.schema.numeric_columns()
            if column.name not in excluded
        ]
        self._categorical_levels = {}
        for column in table.schema.categorical_columns():
            if column.name in excluded:
                continue
            levels = table.distinct(column.name)
            if 1 < len(levels) <= self.max_categorical_cardinality:
                self._categorical_levels[column.name] = list(levels)

        raw = self._raw_matrix(table, row_ids)
        if raw.shape[1] == 0:
            raise ValueError(
                "no usable feature columns found; provide numeric or low-cardinality "
                "categorical columns"
            )
        _, self._means, self._stds = standardize(raw)
        self._fitted = True
        return self

    def transform(self, table: Table, row_ids: Optional[Sequence[int]] = None) -> np.ndarray:
        """Encode rows into a dense feature matrix (intercept not included)."""
        if not self._fitted:
            raise RuntimeError("FeatureEncoder must be fitted before transform")
        raw = self._raw_matrix(table, row_ids)
        stds = np.where(self._stds == 0.0, 1.0, self._stds)
        return (raw - self._means) / stds

    def fit_transform(
        self, table: Table, row_ids: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Fit on the rows and return their encoding."""
        self.fit(table, row_ids)
        return self.transform(table, row_ids)

    @property
    def feature_names(self) -> List[str]:
        """Names of the encoded feature dimensions."""
        names = list(self._numeric_columns)
        for column, levels in self._categorical_levels.items():
            names.extend(f"{column}={level!r}" for level in levels)
        return names

    @property
    def num_features(self) -> int:
        """Dimensionality of the encoded feature space."""
        return len(self._numeric_columns) + sum(
            len(levels) for levels in self._categorical_levels.values()
        )

    # -- internal -----------------------------------------------------------------
    def _raw_matrix(self, table: Table, row_ids: Optional[Sequence[int]]) -> np.ndarray:
        ids = list(row_ids) if row_ids is not None else list(table.row_ids)
        columns: List[np.ndarray] = []
        for name in self._numeric_columns:
            values = table.column_values(name)
            columns.append(np.asarray([float(values[i]) for i in ids], dtype=float))
        for name, levels in self._categorical_levels.items():
            values = table.column_values(name)
            level_index = {level: k for k, level in enumerate(levels)}
            one_hot = np.zeros((len(ids), len(levels)), dtype=float)
            for row_position, row_id in enumerate(ids):
                k = level_index.get(values[row_id])
                if k is not None:
                    one_hot[row_position, k] = 1.0
            columns.extend(one_hot.T)
        if not columns:
            return np.zeros((len(ids), 0))
        return np.column_stack(columns)
