"""Self-training semi-supervised classifier ("Learning" baseline substrate).

The paper's "Learning" baseline evaluates a small labelled set of tuples, runs
semi-supervised learning to infer the predicate for the rest, and returns the
union of evaluated-true and predicted-true tuples.  The classic self-training
loop implements that: train a supervised model on the labelled data, move the
most confidently-predicted unlabelled points into the labelled pool with their
pseudo-labels, and repeat.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ml.logistic import LogisticRegression
from repro.stats.random import SeedLike, as_random_state


class SelfTrainingClassifier:
    """Self-training wrapper around :class:`LogisticRegression`.

    Parameters
    ----------
    confidence_threshold:
        Unlabelled points whose predicted class probability exceeds this
        threshold get pseudo-labelled each round.
    max_rounds:
        Maximum number of self-training rounds.
    base_model_factory:
        Callable creating a fresh base model per round; defaults to a lightly
        regularised :class:`LogisticRegression`.
    """

    def __init__(
        self,
        confidence_threshold: float = 0.85,
        max_rounds: int = 5,
        base_model_factory=None,
        random_state: SeedLike = None,
    ):
        if not 0.5 <= confidence_threshold <= 1.0:
            raise ValueError(
                f"confidence_threshold must be in [0.5, 1], got {confidence_threshold}"
            )
        self.confidence_threshold = confidence_threshold
        self.max_rounds = max_rounds
        self._factory = base_model_factory or (
            lambda: LogisticRegression(l2_penalty=1e-3, max_iterations=300)
        )
        self.random_state = as_random_state(random_state)
        self.model: Optional[LogisticRegression] = None
        self.rounds_run_: int = 0

    def fit(
        self,
        labeled_features: np.ndarray,
        labels: Sequence[int],
        unlabeled_features: np.ndarray,
    ) -> "SelfTrainingClassifier":
        """Fit from a labelled pool plus an unlabelled pool."""
        x_labeled = np.asarray(labeled_features, dtype=float)
        y_labeled = np.asarray(labels, dtype=int).ravel()
        x_unlabeled = np.asarray(unlabeled_features, dtype=float)
        if x_labeled.shape[0] != y_labeled.shape[0]:
            raise ValueError("labeled_features and labels must align")

        pool_x = x_unlabeled.copy()
        train_x = x_labeled.copy()
        train_y = y_labeled.copy()
        self.rounds_run_ = 0

        for _ in range(self.max_rounds):
            model = self._factory()
            model.fit(train_x, train_y)
            self.model = model
            self.rounds_run_ += 1
            if pool_x.shape[0] == 0:
                break
            probabilities = model.predict_proba(pool_x)
            confident_positive = probabilities >= self.confidence_threshold
            confident_negative = probabilities <= 1.0 - self.confidence_threshold
            confident = confident_positive | confident_negative
            if not confident.any():
                break
            pseudo_labels = (probabilities[confident] >= 0.5).astype(int)
            train_x = np.vstack([train_x, pool_x[confident]])
            train_y = np.concatenate([train_y, pseudo_labels])
            pool_x = pool_x[~confident]

        if self.model is None:
            model = self._factory()
            model.fit(train_x, train_y)
            self.model = model
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Positive-class probabilities from the final model."""
        self._check_fitted()
        return self.model.predict_proba(np.asarray(features, dtype=float))

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """0/1 predictions from the final model."""
        return (self.predict_proba(features) >= threshold).astype(int)

    def _check_fitted(self) -> None:
        if self.model is None:
            raise RuntimeError("SelfTrainingClassifier must be fitted before prediction")
