"""Multiple imputations ("Multiple" baseline substrate).

The paper's "Multiple" baseline estimates class probabilities with a
semi-supervised model and then draws several *imputed* completions of the
unlabelled data from those probabilities.  A tuple is returned when it is
positive in a majority of the imputations; the spread across imputations also
gives a cheap estimate of how stable the completed result is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.ml.semi_supervised import SelfTrainingClassifier
from repro.stats.random import SeedLike, as_random_state


@dataclass(frozen=True)
class ImputationSummary:
    """Outcome of the imputation ensemble for the unlabelled pool."""

    inclusion_probability: np.ndarray
    majority_positive: np.ndarray
    num_imputations: int

    def positive_indices(self) -> List[int]:
        """Indices (within the unlabelled pool) voted positive by the majority."""
        return [int(i) for i in np.nonzero(self.majority_positive)[0]]


class MultipleImputer:
    """Draws multiple imputed labelings from estimated class probabilities."""

    def __init__(
        self,
        num_imputations: int = 5,
        classifier: Optional[SelfTrainingClassifier] = None,
        random_state: SeedLike = None,
    ):
        if num_imputations < 1:
            raise ValueError(f"num_imputations must be >= 1, got {num_imputations}")
        self.num_imputations = num_imputations
        self.classifier = classifier or SelfTrainingClassifier()
        self.random_state = as_random_state(random_state)

    def fit_impute(
        self,
        labeled_features: np.ndarray,
        labels: Sequence[int],
        unlabeled_features: np.ndarray,
    ) -> ImputationSummary:
        """Fit the underlying classifier and impute the unlabelled pool."""
        x_unlabeled = np.asarray(unlabeled_features, dtype=float)
        if x_unlabeled.shape[0] == 0:
            return ImputationSummary(
                inclusion_probability=np.zeros(0),
                majority_positive=np.zeros(0, dtype=bool),
                num_imputations=self.num_imputations,
            )
        self.classifier.fit(labeled_features, labels, x_unlabeled)
        probabilities = self.classifier.predict_proba(x_unlabeled)

        draws = np.zeros((self.num_imputations, x_unlabeled.shape[0]), dtype=bool)
        for index in range(self.num_imputations):
            draws[index] = self.random_state.random(x_unlabeled.shape[0]) < probabilities
        inclusion = draws.mean(axis=0)
        majority = inclusion >= 0.5
        return ImputationSummary(
            inclusion_probability=inclusion,
            majority_positive=majority,
            num_imputations=self.num_imputations,
        )
