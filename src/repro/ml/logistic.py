"""Logistic regression, implemented from scratch on numpy.

scikit-learn is not available in the offline environment, so this module
provides the small piece of it the paper needs: a binary logistic regressor
with L2 regularisation, trained by full-batch gradient descent with a simple
backtracking step size.  Its probability scores feed the virtual-column
bucketer (Section 4.4) and the semi-supervised baselines.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.stats.random import RandomState, SeedLike, as_random_state


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=float)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


class LogisticRegression:
    """Binary logistic regression with L2 regularisation.

    Parameters
    ----------
    l2_penalty:
        Strength of the L2 penalty on the weights (the intercept is not
        penalised).
    learning_rate:
        Initial gradient-descent step size; halved whenever a step fails to
        decrease the loss.
    max_iterations:
        Maximum number of full-batch updates.
    tolerance:
        Convergence threshold on the loss decrease.
    """

    def __init__(
        self,
        l2_penalty: float = 1e-3,
        learning_rate: float = 1.0,
        max_iterations: int = 500,
        tolerance: float = 1e-8,
        random_state: SeedLike = None,
    ):
        if l2_penalty < 0:
            raise ValueError(f"l2_penalty must be non-negative, got {l2_penalty}")
        self.l2_penalty = l2_penalty
        self.learning_rate = learning_rate
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.random_state: RandomState = as_random_state(random_state)
        self.weights: Optional[np.ndarray] = None
        self.intercept: float = 0.0
        self.converged: bool = False
        self.n_iterations_: int = 0

    # -- training -----------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: Sequence[int]) -> "LogisticRegression":
        """Fit on a dense feature matrix and 0/1 labels."""
        x = np.asarray(features, dtype=float)
        y = np.asarray(labels, dtype=float).ravel()
        if x.ndim != 2:
            raise ValueError(f"features must be 2-dimensional, got shape {x.shape}")
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"features have {x.shape[0]} rows but labels have {y.shape[0]}"
            )
        if x.shape[0] == 0:
            raise ValueError("cannot fit on zero examples")
        if not np.isin(y, (0.0, 1.0)).all():
            raise ValueError("labels must be 0/1")

        n_samples, n_features = x.shape
        weights = np.zeros(n_features)
        intercept = 0.0

        # Degenerate single-class training sets: predict the observed class
        # probability (smoothed) everywhere.
        if y.min() == y.max():
            self.weights = weights
            smoothed = (y.sum() + 1.0) / (n_samples + 2.0)
            self.intercept = float(np.log(smoothed / (1.0 - smoothed)))
            self.converged = True
            self.n_iterations_ = 0
            return self

        step = self.learning_rate
        previous_loss = self._loss(x, y, weights, intercept)
        for iteration in range(self.max_iterations):
            scores = x @ weights + intercept
            probabilities = _sigmoid(scores)
            error = probabilities - y
            gradient_w = x.T @ error / n_samples + self.l2_penalty * weights
            gradient_b = float(error.mean())

            # Backtracking: shrink the step until the loss decreases.
            improved = False
            for _ in range(30):
                candidate_w = weights - step * gradient_w
                candidate_b = intercept - step * gradient_b
                loss = self._loss(x, y, candidate_w, candidate_b)
                if loss <= previous_loss + 1e-15:
                    improved = True
                    break
                step /= 2.0
            if not improved:
                break
            weights, intercept = candidate_w, candidate_b
            self.n_iterations_ = iteration + 1
            if previous_loss - loss < self.tolerance:
                self.converged = True
                previous_loss = loss
                break
            previous_loss = loss
            # Gentle step growth so a conservative start does not stall training.
            step = min(step * 1.2, self.learning_rate * 10)

        self.weights = weights
        self.intercept = float(intercept)
        return self

    def _loss(
        self, x: np.ndarray, y: np.ndarray, weights: np.ndarray, intercept: float
    ) -> float:
        scores = x @ weights + intercept
        # log(1 + exp(-z*y_signed)) computed stably via logaddexp
        log_likelihood = np.logaddexp(0.0, scores) - y * scores
        penalty = 0.5 * self.l2_penalty * float(weights @ weights)
        return float(log_likelihood.mean()) + penalty

    # -- inference ------------------------------------------------------------------
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row."""
        self._check_fitted()
        x = np.asarray(features, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.weights.shape[0]:
            raise ValueError(
                f"features must have shape (n, {self.weights.shape[0]}), got {x.shape}"
            )
        return _sigmoid(x @ self.weights + self.intercept)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """0/1 predictions at a probability threshold."""
        return (self.predict_proba(features) >= threshold).astype(int)

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw linear scores before the sigmoid."""
        self._check_fitted()
        x = np.asarray(features, dtype=float)
        return x @ self.weights + self.intercept

    def accuracy(self, features: np.ndarray, labels: Sequence[int]) -> float:
        """Fraction of correct predictions."""
        predictions = self.predict(features)
        y = np.asarray(labels, dtype=int).ravel()
        return float((predictions == y).mean())

    def _check_fitted(self) -> None:
        if self.weights is None:
            raise RuntimeError("LogisticRegression must be fitted before prediction")
