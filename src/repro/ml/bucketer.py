"""Equal-frequency bucketing of probability scores.

Section 4.4 of the paper turns logistic-regression probability scores into a
*virtual correlated column*: tuples are split into (by default ten) buckets
with boundaries chosen so the buckets are equal-sized on the training scores.
The bucket id then plays the role of the categorical attribute ``A`` — the
paper deliberately does not trust the raw probability scores and instead
re-estimates each bucket's selectivity by sampling.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


class ScoreBucketer:
    """Assigns scores to equal-frequency buckets learned from reference scores."""

    def __init__(self, num_buckets: int = 10):
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_buckets = num_buckets
        self._boundaries: Optional[np.ndarray] = None

    def fit(self, scores: Sequence[float]) -> "ScoreBucketer":
        """Learn bucket boundaries as quantiles of ``scores``."""
        values = np.asarray(list(scores), dtype=float)
        if values.size == 0:
            raise ValueError("cannot fit bucketer on zero scores")
        quantiles = np.linspace(0.0, 1.0, self.num_buckets + 1)[1:-1]
        self._boundaries = np.quantile(values, quantiles) if quantiles.size else np.array([])
        return self

    def transform(self, scores: Sequence[float]) -> List[int]:
        """Map each score to its bucket id in ``[0, num_buckets)``."""
        if self._boundaries is None:
            raise RuntimeError("ScoreBucketer must be fitted before transform")
        values = np.asarray(list(scores), dtype=float)
        buckets = np.searchsorted(self._boundaries, values, side="right")
        return [int(b) for b in buckets]

    def fit_transform(self, scores: Sequence[float]) -> List[int]:
        """Fit boundaries on ``scores`` and bucket the same scores."""
        return self.fit(scores).transform(scores)

    @property
    def boundaries(self) -> List[float]:
        """The learned bucket boundaries (length ``num_buckets - 1``)."""
        if self._boundaries is None:
            raise RuntimeError("ScoreBucketer has not been fitted")
        return [float(b) for b in self._boundaries]

    def effective_num_buckets(self, scores: Sequence[float]) -> int:
        """Number of distinct buckets actually produced for ``scores``.

        Heavily skewed score distributions can collapse neighbouring quantile
        boundaries; callers that need real groups should check this.
        """
        return len(set(self.transform(scores)))
