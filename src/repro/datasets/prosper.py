"""Synthetic equivalent of the Prosper loan dataset.

Paper-published statistics reproduced by this spec (Tables 2 and 3):

* ~30,000 tuples, overall predicate selectivity ~0.45,
* 8 groups under the chosen correlated column (the Prosper *Grade*),
* group-size standard deviation ~1,500, group-selectivity standard deviation
  ~0.20, and a weak positive size–selectivity correlation (~0.2).

The predicate is "the loan was paid back on time".
"""

from __future__ import annotations

from repro.datasets.synthetic import (
    DatasetBundle,
    SyntheticDatasetSpec,
    generate_dataset,
    spec_from_sizes_and_selectivities,
)
from repro.stats.random import SeedLike

#: Prosper credit grades.
GRADE_VALUES = ("AA", "A", "B", "C", "D", "E", "HR", "NC")

#: Group sizes with modest dispersion (~30k total).
GRADE_SIZES = (6_000, 5_200, 4_600, 4_000, 3_400, 2_800, 2_200, 1_800)

#: Per-grade on-time repayment probability (weighted mean ~0.45, weakly
#: correlated with group size).
GRADE_SELECTIVITIES = (0.68, 0.24, 0.60, 0.36, 0.52, 0.16, 0.58, 0.28)


def prosper_spec() -> SyntheticDatasetSpec:
    """The calibrated spec for the Prosper-like dataset."""
    return spec_from_sizes_and_selectivities(
        name="prosper",
        correlated_column="grade",
        values=GRADE_VALUES,
        sizes=GRADE_SIZES,
        selectivities=GRADE_SELECTIVITIES,
        numeric_signal_strength=0.12,
        description=(
            "Synthetic stand-in for the Prosper loan data: predicate is "
            "'loan repaid on time', correlated column is the Prosper grade."
        ),
    )


def load_prosper(random_state: SeedLike = None, scale: float = 1.0) -> DatasetBundle:
    """Generate the Prosper-like dataset (optionally scaled down)."""
    spec = prosper_spec()
    if scale != 1.0:
        spec = spec.scaled(scale)
    return generate_dataset(spec, random_state=random_state)
