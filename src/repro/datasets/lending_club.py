"""Synthetic equivalent of the Lending Club (LC) dataset.

Paper-published statistics reproduced by this spec (Tables 2 and 3):

* ~53,000 tuples, overall predicate selectivity ~0.72,
* 7 groups under the chosen correlated column (the borrower *Grade*),
* group-size standard deviation ~5,200, group-selectivity standard deviation
  ~0.13–0.17, and a strongly positive size–selectivity correlation (~0.84).

The predicate is "the loan was fully paid" (versus charged off / late /
defaulted).
"""

from __future__ import annotations

from repro.datasets.synthetic import (
    DatasetBundle,
    SyntheticDatasetSpec,
    generate_dataset,
    spec_from_sizes_and_selectivities,
)
from repro.stats.random import SeedLike

#: Grade values ordered from best to worst borrower quality.
GRADE_VALUES = ("A", "B", "C", "D", "E", "F", "G")

#: Group sizes chosen to match the published size dispersion (~53k total).
GRADE_SIZES = (17_000, 13_000, 9_500, 6_500, 4_000, 2_200, 800)

#: Per-grade probability that the loan was fully paid (weighted mean ~0.72).
GRADE_SELECTIVITIES = (0.85, 0.78, 0.70, 0.60, 0.50, 0.42, 0.35)


def lending_club_spec() -> SyntheticDatasetSpec:
    """The calibrated spec for the LC-like dataset."""
    return spec_from_sizes_and_selectivities(
        name="lending_club",
        correlated_column="grade",
        values=GRADE_VALUES,
        sizes=GRADE_SIZES,
        selectivities=GRADE_SELECTIVITIES,
        numeric_signal_strength=0.10,
        description=(
            "Synthetic stand-in for the Lending Club loan data: predicate is "
            "'loan fully paid', correlated column is the borrower grade."
        ),
    )


def load_lending_club(
    random_state: SeedLike = None, scale: float = 1.0
) -> DatasetBundle:
    """Generate the LC-like dataset (optionally scaled down for fast runs)."""
    spec = lending_club_spec()
    if scale != 1.0:
        spec = spec.scaled(scale)
    return generate_dataset(spec, random_state=random_state)
