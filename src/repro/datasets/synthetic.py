"""Parametric synthetic dataset generator.

A dataset is described by a :class:`SyntheticDatasetSpec`: a list of groups
(value of the designated correlated column, group size, group selectivity)
plus knobs for auxiliary columns.  The generator produces a
:class:`~repro.db.table.Table` whose hidden label column realises each group's
selectivity *exactly* (the paper's selectivities are empirical fractions of
the real data, so exact counts are the faithful reproduction), and a
:class:`DatasetBundle` that carries the table together with the metadata the
experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.db.column import ColumnType
from repro.db.table import Table
from repro.db.udf import UserDefinedFunction
from repro.stats.random import SeedLike, as_random_state
from repro.stats.summaries import pearson_correlation


@dataclass(frozen=True)
class GroupSpec:
    """One group of the designated correlated column."""

    value: Hashable
    size: int
    selectivity: float

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"group size must be non-negative, got {self.size}")
        if not 0.0 <= self.selectivity <= 1.0:
            raise ValueError(
                f"group selectivity must be in [0, 1], got {self.selectivity}"
            )

    @property
    def positive_count(self) -> int:
        """Number of positive tuples this group contributes (rounded)."""
        return int(round(self.size * self.selectivity))


@dataclass(frozen=True)
class SyntheticDatasetSpec:
    """Full description of a synthetic dataset.

    Attributes
    ----------
    name:
        Dataset name ("lending_club", ...).
    correlated_column:
        Name of the designated correlated column (e.g. ``grade``).
    groups:
        Group definitions for the correlated column.
    label_column:
        Name of the hidden ground-truth column.
    noise_columns:
        Number of uncorrelated categorical columns to add.
    weak_predictor_flip_probability:
        The generator adds a "weak predictor" categorical column obtained from
        the correlated column by re-assigning each tuple to a random group
        with this probability; it gives column selection a plausible
        second-best choice.
    numeric_signal_strength:
        Separation (in standard deviations) between the numeric feature means
        of positive and negative tuples; drives logistic-regression quality.
    description:
        Human-readable provenance note.
    """

    name: str
    correlated_column: str
    groups: Sequence[GroupSpec]
    label_column: str = "is_good"
    noise_columns: int = 2
    weak_predictor_flip_probability: float = 0.35
    numeric_signal_strength: float = 1.0
    description: str = ""

    @property
    def total_size(self) -> int:
        """Total number of tuples."""
        return sum(group.size for group in self.groups)

    @property
    def overall_selectivity(self) -> float:
        """Size-weighted average selectivity."""
        total = self.total_size
        if total == 0:
            return 0.0
        return sum(group.positive_count for group in self.groups) / total

    @property
    def group_sizes(self) -> List[int]:
        """Sizes of all groups."""
        return [group.size for group in self.groups]

    @property
    def group_selectivities(self) -> List[float]:
        """Selectivities of all groups."""
        return [group.selectivity for group in self.groups]

    def size_selectivity_correlation(self) -> float:
        """Pearson correlation between group size and selectivity."""
        return pearson_correlation(self.group_sizes, self.group_selectivities)

    def scaled(self, scale: float) -> "SyntheticDatasetSpec":
        """A proportionally smaller/larger copy of the spec.

        Used by tests and benchmarks to keep run times reasonable while
        preserving group proportions and selectivities.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        scaled_groups = [
            replace(group, size=max(1, int(round(group.size * scale))))
            for group in self.groups
        ]
        return replace(self, groups=tuple(scaled_groups))


@dataclass
class DatasetBundle:
    """A generated dataset plus the metadata the experiments rely on."""

    name: str
    table: Table
    label_column: str
    correlated_column: str
    spec: SyntheticDatasetSpec
    description: str = ""

    @property
    def num_rows(self) -> int:
        """Number of tuples in the dataset."""
        return self.table.num_rows

    @property
    def overall_selectivity(self) -> float:
        """Fraction of tuples whose hidden label is positive."""
        labels = self.table.column_values(self.label_column, allow_hidden=True)
        if not labels:
            return 0.0
        return sum(1 for value in labels if value) / len(labels)

    def make_udf(
        self, name: Optional[str] = None, evaluation_cost: float = 3.0
    ) -> UserDefinedFunction:
        """Create the expensive UDF that reveals the hidden label."""
        return UserDefinedFunction.from_label_column(
            name=name or f"{self.name}_predicate",
            label_column=self.label_column,
            evaluation_cost=evaluation_cost,
            positive_value=True,
        )

    def ground_truth_row_ids(self) -> set:
        """Row ids of all positive tuples (for auditing results)."""
        labels = self.table.column_values(self.label_column, allow_hidden=True)
        return {row_id for row_id, value in enumerate(labels) if value}

    def candidate_columns(self) -> List[str]:
        """Visible categorical columns that could serve as the correlated column."""
        return [
            column.name
            for column in self.table.schema.categorical_columns()
            if column.name != self.label_column
        ]


def generate_dataset(
    spec: SyntheticDatasetSpec, random_state: SeedLike = None
) -> DatasetBundle:
    """Generate a :class:`DatasetBundle` realising ``spec`` exactly.

    Group sizes and per-group positive counts are deterministic; the ordering
    of rows, the auxiliary columns and the numeric features are randomised
    from ``random_state``.
    """
    rng = as_random_state(random_state)
    group_values: List[Hashable] = []
    labels: List[bool] = []
    for group in spec.groups:
        positives = group.positive_count
        group_labels = [True] * positives + [False] * (group.size - positives)
        rng.shuffle(group_labels)
        group_values.extend([group.value] * group.size)
        labels.extend(group_labels)

    # Shuffle tuples so that groups are interleaved like a real table.
    order = rng.permutation(len(group_values))
    group_values = [group_values[i] for i in order]
    labels = [bool(labels[i]) for i in order]
    n = len(labels)

    columns: Dict[str, List[Any]] = {}
    column_types: Dict[str, ColumnType] = {}
    hidden = [spec.label_column]

    columns["record_id"] = [f"{spec.name}-{i:07d}" for i in range(n)]
    column_types["record_id"] = ColumnType.TEXT

    columns[spec.correlated_column] = list(group_values)
    column_types[spec.correlated_column] = ColumnType.CATEGORICAL

    columns[spec.label_column] = list(labels)
    column_types[spec.label_column] = ColumnType.BOOLEAN

    # A weaker version of the correlated column: same value most of the time,
    # random group otherwise.  Gives column selection a second-best candidate.
    all_group_values = [group.value for group in spec.groups]
    weak_column_name = f"{spec.correlated_column}_band"
    flips = rng.random(n) < spec.weak_predictor_flip_probability
    weak_values = [
        rng.choice(all_group_values) if flipped else value
        for value, flipped in zip(group_values, flips)
    ]
    columns[weak_column_name] = weak_values
    column_types[weak_column_name] = ColumnType.CATEGORICAL

    # Uncorrelated categorical noise columns.
    for index in range(spec.noise_columns):
        name = f"noise_{index + 1}"
        cardinality = 4 + 2 * index
        values = rng.integers(0, cardinality, size=n)
        columns[name] = [f"v{int(v)}" for v in values]
        column_types[name] = ColumnType.CATEGORICAL

    # Numeric features whose means shift with the label (for logistic regression).
    label_array = np.asarray(labels, dtype=float)
    signal = spec.numeric_signal_strength
    income = 50_000 + 20_000 * signal * label_array + rng.normal(0.0, 15_000, size=n)
    columns["income"] = [float(v) for v in income]
    column_types["income"] = ColumnType.NUMERIC

    score = 600 + 60 * signal * label_array + rng.normal(0.0, 50, size=n)
    columns["score"] = [float(v) for v in score]
    column_types["score"] = ColumnType.NUMERIC

    amount = np.abs(rng.normal(12_000, 6_000, size=n))
    columns["amount"] = [float(v) for v in amount]
    column_types["amount"] = ColumnType.NUMERIC

    table = Table.from_columns(
        name=spec.name,
        columns=columns,
        column_types=column_types,
        hidden_columns=hidden,
    )
    return DatasetBundle(
        name=spec.name,
        table=table,
        label_column=spec.label_column,
        correlated_column=spec.correlated_column,
        spec=spec,
        description=spec.description,
    )


def spec_from_sizes_and_selectivities(
    name: str,
    correlated_column: str,
    values: Sequence[Hashable],
    sizes: Sequence[int],
    selectivities: Sequence[float],
    **kwargs: Any,
) -> SyntheticDatasetSpec:
    """Convenience constructor used by the per-dataset modules."""
    if not len(values) == len(sizes) == len(selectivities):
        raise ValueError(
            "values, sizes and selectivities must have identical lengths, got "
            f"{len(values)}, {len(sizes)}, {len(selectivities)}"
        )
    groups = tuple(
        GroupSpec(value=value, size=int(size), selectivity=float(selectivity))
        for value, size, selectivity in zip(values, sizes, selectivities)
    )
    return SyntheticDatasetSpec(
        name=name,
        correlated_column=correlated_column,
        groups=groups,
        **kwargs,
    )
