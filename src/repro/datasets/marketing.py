"""Synthetic equivalent of the Portuguese bank Marketing dataset.

Paper-published statistics reproduced by this spec (Tables 2 and 3):

* ~41,000 tuples, overall predicate selectivity ~0.11,
* 10 groups under the chosen correlated column (*Employment Variation Rate*),
* group-size standard deviation ~5,000, group-selectivity standard deviation
  ~0.20, and a strongly negative size–selectivity correlation (~-0.65):
  the campaign's biggest call batches happened in periods where almost nobody
  subscribed.

The predicate is "the client subscribed to the term deposit".
"""

from __future__ import annotations

from repro.datasets.synthetic import (
    DatasetBundle,
    SyntheticDatasetSpec,
    generate_dataset,
    spec_from_sizes_and_selectivities,
)
from repro.stats.random import SeedLike

#: Employment-variation-rate buckets (categorical economic context values).
EMP_VAR_VALUES = (
    "1.4",
    "1.1",
    "-0.1",
    "-0.2",
    "-1.1",
    "-1.7",
    "-1.8",
    "-2.9",
    "-3.0",
    "-3.4",
)

#: Group sizes dominated by the boom-period batches (~41k total).
EMP_VAR_SIZES = (16_000, 7_500, 6_000, 4_000, 2_500, 1_800, 1_200, 900, 600, 500)

#: Per-group subscription probability (weighted mean ~0.11, strongly negative
#: correlation with group size).
EMP_VAR_SELECTIVITIES = (0.05, 0.07, 0.10, 0.12, 0.15, 0.22, 0.30, 0.42, 0.55, 0.65)


def marketing_spec() -> SyntheticDatasetSpec:
    """The calibrated spec for the Marketing-like dataset."""
    return spec_from_sizes_and_selectivities(
        name="marketing",
        correlated_column="emp_variation_rate",
        values=EMP_VAR_VALUES,
        sizes=EMP_VAR_SIZES,
        selectivities=EMP_VAR_SELECTIVITIES,
        numeric_signal_strength=0.12,
        description=(
            "Synthetic stand-in for the bank tele-marketing data: predicate is "
            "'client subscribed to the term deposit', correlated column is the "
            "employment variation rate."
        ),
    )


def load_marketing(random_state: SeedLike = None, scale: float = 1.0) -> DatasetBundle:
    """Generate the Marketing-like dataset (optionally scaled down)."""
    spec = marketing_spec()
    if scale != 1.0:
        spec = spec.scaled(scale)
    return generate_dataset(spec, random_state=random_state)
