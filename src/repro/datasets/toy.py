"""The paper's Table 1 running example as a real table.

Twelve tuples, a correlated attribute ``A`` with three values, a masked
phone-number-style ``ID`` and a hidden UDF outcome ``f``.  Tuples 1–4, 6 and
12 are correct (1-indexed as in the paper).
"""

from __future__ import annotations

from repro.db.column import ColumnType
from repro.db.table import Table
from repro.db.udf import UserDefinedFunction

#: (A, ID, f) triples exactly as printed in Table 1 of the paper.
TABLE1_ROWS = (
    (1, "999-999-999", True),
    (1, "913-418-777", True),
    (1, "719-334-111", True),
    (1, "999-999-999", True),
    (2, "913-418-737", False),
    (2, "719-334-113", True),
    (2, "999-999-299", False),
    (3, "913-418-737", False),
    (3, "719-334-121", False),
    (3, "999-999-959", False),
    (3, "913-418-727", False),
    (3, "719-334-311", True),
)


def toy_credit_table() -> Table:
    """Build the Table 1 example with the UDF outcome as a hidden column."""
    return Table.from_columns(
        name="toy_credit",
        columns={
            "A": [row[0] for row in TABLE1_ROWS],
            "ID": [row[1] for row in TABLE1_ROWS],
            "f": [row[2] for row in TABLE1_ROWS],
        },
        column_types={
            "A": ColumnType.CATEGORICAL,
            "ID": ColumnType.TEXT,
            "f": ColumnType.BOOLEAN,
        },
        hidden_columns=("f",),
    )


def toy_credit_udf(evaluation_cost: float = 3.0) -> UserDefinedFunction:
    """The credit-check UDF over the toy table (reveals the hidden ``f``)."""
    return UserDefinedFunction.from_label_column(
        name="credit_check",
        label_column="f",
        evaluation_cost=evaluation_cost,
        positive_value=True,
    )
