"""Synthetic equivalent of the Census (Adult) dataset.

Paper-published statistics reproduced by this spec (Tables 2 and 3):

* ~45,000 tuples, overall predicate selectivity ~0.24,
* 7 groups under the chosen correlated column (*Marital Status*),
* group-size standard deviation ~8,000, group-selectivity standard deviation
  ~0.15, and a moderate positive size–selectivity correlation (~0.36).

The predicate is "annual income exceeds 50,000".
"""

from __future__ import annotations

from repro.datasets.synthetic import (
    DatasetBundle,
    SyntheticDatasetSpec,
    generate_dataset,
    spec_from_sizes_and_selectivities,
)
from repro.stats.random import SeedLike

#: Marital-status categories (Adult census coding, abbreviated).
MARITAL_VALUES = (
    "married_civ",
    "never_married",
    "divorced",
    "married_af",
    "separated",
    "widowed_working",
    "widowed",
)

#: Group sizes dominated by two large categories (~45k total).
MARITAL_SIZES = (21_000, 14_500, 4_000, 2_500, 1_500, 1_000, 500)

#: Per-group probability of income > 50k (weighted mean ~0.24).
MARITAL_SELECTIVITIES = (0.41, 0.045, 0.09, 0.35, 0.07, 0.28, 0.18)


def census_spec() -> SyntheticDatasetSpec:
    """The calibrated spec for the Census-like dataset."""
    return spec_from_sizes_and_selectivities(
        name="census",
        correlated_column="marital_status",
        values=MARITAL_VALUES,
        sizes=MARITAL_SIZES,
        selectivities=MARITAL_SELECTIVITIES,
        numeric_signal_strength=0.15,
        description=(
            "Synthetic stand-in for the Census Adult data: predicate is "
            "'income > 50k', correlated column is marital status."
        ),
    )


def load_census(random_state: SeedLike = None, scale: float = 1.0) -> DatasetBundle:
    """Generate the Census-like dataset (optionally scaled down)."""
    spec = census_spec()
    if scale != 1.0:
        spec = spec.scaled(scale)
    return generate_dataset(spec, random_state=random_state)
