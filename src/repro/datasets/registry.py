"""Dataset registry: load any of the paper's four datasets by name."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.census import census_spec, load_census
from repro.datasets.lending_club import lending_club_spec, load_lending_club
from repro.datasets.marketing import load_marketing, marketing_spec
from repro.datasets.prosper import load_prosper, prosper_spec
from repro.datasets.synthetic import DatasetBundle, SyntheticDatasetSpec
from repro.stats.random import SeedLike

_LOADERS: Dict[str, Callable[..., DatasetBundle]] = {
    "lending_club": load_lending_club,
    "prosper": load_prosper,
    "census": load_census,
    "marketing": load_marketing,
}

_SPECS: Dict[str, Callable[[], SyntheticDatasetSpec]] = {
    "lending_club": lending_club_spec,
    "prosper": prosper_spec,
    "census": census_spec,
    "marketing": marketing_spec,
}

#: Canonical dataset order used throughout the paper's figures.
DATASET_NAMES = ("lending_club", "prosper", "census", "marketing")


def dataset_names() -> List[str]:
    """Names of all registered datasets."""
    return list(DATASET_NAMES)


def dataset_spec(name: str) -> SyntheticDatasetSpec:
    """The calibrated spec for one dataset."""
    try:
        return _SPECS[name]()
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(_SPECS)}"
        ) from None


def load_dataset(
    name: str, random_state: SeedLike = None, scale: float = 1.0
) -> DatasetBundle:
    """Load one dataset by name (``scale`` shrinks it proportionally)."""
    try:
        loader = _LOADERS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(_LOADERS)}"
        ) from None
    return loader(random_state=random_state, scale=scale)


def load_all_datasets(
    random_state: SeedLike = None, scale: float = 1.0
) -> Dict[str, DatasetBundle]:
    """Load every dataset, keyed by name."""
    return {
        name: load_dataset(name, random_state=random_state, scale=scale)
        for name in DATASET_NAMES
    }
