"""Dataset substrate.

The paper evaluates on four real datasets (Lending Club, Prosper, Census,
Marketing) that are not redistributable and not available offline.  Following
the substitution policy in DESIGN.md, this package generates synthetic
equivalents calibrated to every statistic the paper publishes about them:

* number of tuples and overall predicate selectivity (Table 2),
* number of groups under the designated correlated column, the standard
  deviation of group sizes, the standard deviation of group selectivities and
  the Pearson correlation between size and selectivity (Table 3).

Each generator also adds secondary categorical columns (weakly correlated,
uncorrelated and near-duplicate predictors) and numeric feature columns so
that correlated-column selection (Section 4.4) and the logistic-regression
virtual column (Figure 1(c)) have realistic material to work with.
"""

from repro.datasets.registry import (
    DATASET_NAMES,
    dataset_names,
    load_dataset,
    load_all_datasets,
)
from repro.datasets.synthetic import (
    DatasetBundle,
    GroupSpec,
    SyntheticDatasetSpec,
    generate_dataset,
)
from repro.datasets.toy import toy_credit_table

__all__ = [
    "DatasetBundle",
    "GroupSpec",
    "SyntheticDatasetSpec",
    "generate_dataset",
    "DATASET_NAMES",
    "dataset_names",
    "load_dataset",
    "load_all_datasets",
    "toy_credit_table",
]
