"""repro — a reproduction of "Exploiting Correlations for Expensive Predicate Evaluation".

The library answers selection queries with expensive boolean UDF predicates
approximately: the user specifies precision/recall lower bounds and a
satisfaction probability, and the optimizer exploits the correlation between a
categorical attribute and the UDF outcome to skip most UDF calls.

Quickstart::

    from repro import (
        CostLedger, IntelSample, QueryConstraints, load_dataset,
    )

    dataset = load_dataset("lending_club", random_state=0, scale=0.2)
    udf = dataset.make_udf()
    strategy = IntelSample(random_state=0)
    ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
    result = strategy.answer(
        dataset.table, udf, QueryConstraints(alpha=0.8, beta=0.8, rho=0.8), ledger
    )
    print(len(result.row_ids), "tuples returned for", ledger.evaluated_count, "UDF calls")

Serving repeated workloads
--------------------------

The one-shot pipeline above recomputes selectivity estimates, the chosen
correlated column and the solved plan on every call.  For repeated traffic
against a shared catalog, :mod:`repro.serving` amortises that work behind a
thread-safe :class:`~repro.serving.QueryService`:

* a **statistics cache** memoises labelled samples and per-column sampling
  outcomes per ``(table, predicate)``, with TTL + LRU eviction and hit/miss
  accounting, so new constraint combinations reuse paid-for UDF evidence;
* a **plan cache** keyed on a canonical query signature (reordered
  predicates hash equal) lets repeated queries skip column selection and
  the convex-program solve entirely;
* **sessions** enforce per-client UDF-cost budgets through the ledger's
  hard budget, degrading cached plans with the budget-constrained solver
  when a client cannot afford the full plan.

::

    from repro import Catalog, Engine, QueryService, SelectQuery, UdfPredicate

    catalog = Catalog()
    catalog.register_table(dataset.table)
    catalog.register_udf(udf)
    service = QueryService(Engine(catalog))
    query = SelectQuery(dataset.table.name, UdfPredicate(udf),
                        alpha=0.8, beta=0.8, rho=0.8)
    cold = service.submit(query, seed=0)   # plans, samples, solves
    warm = service.submit(query, seed=1)   # cache hit: execution only
    print(service.metrics()["plan_cache"]["hit_rate"])

``examples/serving_workload.py`` replays a 1000-query trace and prints the
cache hit rates; ``benchmarks/test_serving_throughput.py`` measures the
cold-versus-warm throughput gap.

Execution backends & performance
--------------------------------

The whole query path is *array-native by default*:

* :class:`~repro.core.BatchExecutor` is the default execution backend for
  :class:`IntelSample`, :class:`OptimalOracle`,
  :class:`AdaptiveIntelSample` and the serving layer — one NumPy pass and
  one bulk UDF call per group.  The tuple-at-a-time
  :class:`~repro.core.PlanExecutor` remains the paper-faithful reference:
  both backends share one coin discipline (see
  :mod:`repro.core.executor`), so for a fixed seed they return *identical*
  row ids and ledger counts; differential property tests in
  ``tests/properties`` enforce this.  Pass
  ``IntelSample(executor_factory=lambda rng: PlanExecutor(random_state=rng))``
  to run on the reference backend (e.g. when auditing per-tuple charging
  order or budget-exhaustion behaviour mid-group).
* :class:`~repro.db.GroupIndex` factorises a column once into integer group
  codes plus read-only per-group row-id arrays, and
  :meth:`~repro.db.Table.group_index` caches one index per column on the
  table itself.  ``Engine``, the cold pipeline and ``QueryService`` all
  share these cached indexes — a warm (plan-cache hit) query reuses the
  exact index object the cold run built, and statistics such as
  column-selection label counts reduce to ``bincount`` over the codes.
* Sampling and labelling are batched: ``draw_labeled_sample`` and
  ``GroupSampler`` charge the ledger in bulk and evaluate through one
  ``UserDefinedFunction.evaluate_rows`` call (per-row UDF API calls on the
  cold path are pinned to zero by the benchmark gate).

Interpreting the benchmark numbers (``benchmarks/BENCH_serving.json`` and
``BENCH_coldpath.json``): *cold* rows model first-sight traffic — no
statistics/plan caches, UDF memo reset per query — so their
queries/sec measure the vectorised end-to-end pipeline (sample, solve,
execute); *warm* rows measure the amortised serving path where only plan
execution runs.  The wall-clock-independent counters (``udf_evaluations``,
``solver_calls``, ``group_index_builds``, ``udf_bulk_calls`` /
``udf_row_calls``) are gated at ±15% in CI by
``benchmarks/compare_bench.py`` so neither the statistical work nor the
batched structure of the cold path can silently regress.

Sharding & parallelism
~~~~~~~~~~~~~~~~~~~~~~

Past a few tens of thousands of rows a single core becomes the ceiling, so
the engine scales *out* instead:

* **Shard layout** — :class:`~repro.db.ShardedTable` partitions rows into
  contiguous shards (each a plain :class:`Table` over its row range; global
  row ids are the concatenation order).  Build one with
  ``ShardedTable.from_columns(..., num_shards=8)`` (chunked ingestion — the
  schema is inferred once and columns are C-level-sliced per shard, never
  looped per row), ``ShardedTable.from_table`` for an existing table, or
  ``Catalog.shard_table(name, num_shards)`` to reshard in place.  Group
  indexes are built per shard — lazily, and in parallel when the table was
  given ``max_workers`` — and merged into a
  :class:`~repro.db.MergedGroupIndex` whose codes, row arrays and label
  counts are **exact** concatenations; property tests pin the merged index
  (and shard-merged ``SampleOutcome.merge_shards`` /
  ``SelectivityModel.merge_shards`` statistics — all counts, so merging is
  exact) equal to the unsharded equivalents, which is why
  :class:`IntelSample`, :class:`AdaptiveIntelSample` and
  :class:`OptimalOracle` run unchanged on sharded inputs.
* **RNG substream discipline** — the sharded
  :class:`~repro.core.ParallelBatchExecutor` cannot consume one sequential
  random stream (that would couple every coin to all earlier coins and make
  results depend on the partition).  Instead each group gets two
  counter-based SplitMix64 substreams (retrieval and evaluation coins),
  addressed by the tuple's *position* in the group's candidate list; any
  worker can generate any slice of any stream independently.  Results are
  therefore bitwise identical for every shard layout and every
  ``max_workers`` — the scale benchmark pins sharded-vs-unsharded
  ``udf_evaluations``/``solver_calls`` at ±0 — though seeds are not
  comparable with the sequential ``BatchExecutor`` discipline.  Row
  *selection* for sampling/labelling stays on the strategy's sequential
  stream; only the (deterministic) bulk UDF evaluations fan across shards.
* **When parallel beats serial** — the thread fan-out wins when the
  per-span NumPy kernels (block RNG, ufunc comparisons, sorts in index
  builds, bulk label reads) dominate, i.e. large tables (≳100k rows/query)
  on multi-core hosts: those kernels release the GIL, so thread workers
  genuinely overlap.  Per-row *python-callable* UDFs hold the GIL, so the
  thread pool sits near (or below) 1x there — that regime belongs to the
  ``"process"`` backend below.  On small tables or single cores the python
  orchestration dominates and ``BatchExecutor`` (or ``max_workers=1``, the
  documented serial fallback) is the right default — which is why
  ``"serial"`` remains the library-wide default and the parallel backends
  are opt-in via
  ``QueryService(config=ServiceConfig(executor="thread", max_workers=...))``
  or ``IntelSample(executor_factory=lambda rng: ParallelBatchExecutor(rng))``.
  ``benchmarks/BENCH_scale.json`` tracks a 1M-row point: q/s for serial vs
  the thread and process pools on both the label-column and
  python-callable workloads, plus the exact work-counter parity, gated in
  CI.

Serving under load
~~~~~~~~~~~~~~~~~~

:mod:`repro.serving` scales past the GIL and past one caller at a time:

* **Process-pool execution** —
  ``ServiceConfig(executor="process", max_workers=W)`` (or a standalone
  :class:`~repro.core.ProcessPoolBatchExecutor`) fans span work across a
  spawn process pool.  Sealed shards export their columns once into
  ``multiprocessing.shared_memory`` blocks (:mod:`repro.db.shm`;
  ``release_exports()`` frees them); workers attach zero-copy NumPy views
  and ship back compact per-span outcome deltas, and the parent folds those
  deltas into the ledger *replaying serial charging order*, so results and
  counters are bitwise identical to serial — budget exhaustion included.
  UDFs travel as pickled :meth:`~repro.db.UserDefinedFunction.worker_spec`
  payloads; unpicklable UDFs, unshareable (object-dtype) columns and broken
  pools fall back to the thread path with identical results, counted on
  ``repro_executor_fallbacks_total``.  Strategies accept the injected
  backend through the explicit :class:`~repro.core.ExecutorAware` protocol.
* **Async front-end** — :meth:`QueryService.submit_async` serves concurrent
  callers on a bounded internal pool with per-class admission limits
  (``ServiceConfig(max_concurrency=..., max_pending=...,
  class_limits={"approximate": ...})``).  Over-limit requests are *shed*:
  they raise a typed :class:`~repro.serving.Overloaded` and increment the
  ``shed`` counter — never a silent drop, and the traffic benchmark gates
  the raise-vs-count delta at exactly zero.  Identical cold anonymous
  requests (same signature, same seed, no audit) *coalesce* onto the
  leader's in-flight execution: followers share the leader's bitwise result
  (``metadata["coalesced"]``) and charge zero extra UDF work.
* **One config, one stats surface** — :class:`~repro.serving.ServiceConfig`
  is the single constructor knob (the pre-1.3 loose kwargs still work for
  one release behind ``DeprecationWarning`` shims), executors are named
  ``"serial"`` / ``"thread"`` / ``"process"`` / ``"reference"``, and
  :meth:`QueryService.stats` returns one typed
  :class:`~repro.serving.ServiceStats` snapshot (schema in
  ``repro.serving.config.SERVICE_STATS_SCHEMA``, the stats-side sibling of
  :func:`~repro.db.metadata_schema`); ``metrics()`` /
  ``metrics_snapshot()`` / ``latency_snapshot()`` remain as exact-shape
  aliases.

``benchmarks/BENCH_traffic.json`` replays 1200 concurrent zipfian clients
through ``submit_async`` and commits the deterministic work counters and
the shedding audit, gated via ``compare_bench.py --profile traffic``;
``examples/serving_workload.py --async --clients 1000`` demonstrates the
same path interactively.

Update workloads
~~~~~~~~~~~~~~~~

Tables are append-only mutable: :meth:`Table.append_rows` /
:meth:`Table.append_columns` add rows at the end (existing row ids never
move) and every derived structure is **delta-maintained** — the work of
absorbing an append is proportional to the delta, not the table:

* **storage** — on a :class:`ShardedTable` appends flow into a *mutable
  tail shard* that is sealed and re-chunked once it exceeds
  ``tail_shard_rows``; sealed shards are never rewritten.  Cached column
  arrays extend by concatenation, and cached group indexes are replaced by
  :meth:`~repro.db.GroupIndex.extended_by` copies that factorise *only the
  appended rows* and merge them against the existing code table (property
  tests pin the extension equal to a from-scratch rebuild, for
  ``GroupIndex`` and ``MergedGroupIndex`` alike).  Each append bumps the
  table's monotonic ``data_generation``, folded into ``shard_signature()``.
* **statistics** — per-shard merge machinery
  (``SampleOutcome.merge_shards`` / ``SelectivityModel.merge_shards``)
  doubles as the delta path: a delta is just one more disjoint row range,
  so group sizes add and cached evidence stays exact for the rows it
  covered.  The cached labelled sample is topped up by a *reservoir*
  (:func:`~repro.core.column_selection.top_up_labeled_sample`) whose
  admission/eviction coins are counter-based SplitMix64 streams addressed
  by row position — many small appends produce bitwise the same sample as
  one big append — and UDF evaluations are charged only for newly admitted
  delta rows.
* **serving** — ``QueryService`` detects a generation bump on a warm plan
  entry and *refreshes* it in place instead of re-planning cold: the
  correlated column is sticky, the labelled sample is reservoir-topped-up,
  the cached sample outcome absorbs only the delta-driven sampling
  shortfall, and one solver call re-optimises the plan.  The refresh
  executes with serving accounting (memoised rows are free), so its ledger
  reads delta-proportional; ``metrics()["plan_refreshes"]`` and the
  ``refreshes`` counters on the statistics caches make the behaviour
  observable.  Appends are single-writer: quiesce queries against a table
  while appending (e.g. between batches, as
  ``examples/serving_workload.py --churn`` does).

``benchmarks/test_update_workload.py`` appends 1% to a warm 1M-row table
and records refresh-vs-cold-rebuild throughput and the delta-only UDF
evaluation counts in ``BENCH_update.json``, gated in CI via
``compare_bench.py --profile update``.

Observability
-------------

:mod:`repro.obs` makes the whole stack inspectable without changing what it
computes:

* **Metrics** — a process-global, lock-striped
  :class:`~repro.obs.MetricsRegistry` of labelled counters, gauges and
  histograms.  Disabled by default (the null registry makes every
  instrumentation site a single attribute check); switch it on with
  :func:`repro.obs.enable_metrics`.  While enabled, UDF row/bulk/memo
  traffic, group-index builds and extensions, cache hits/misses/refreshes,
  solver calls, executor runs, table appends, engine fallbacks and every
  serving counter mirror into one registry, exported via
  :func:`repro.obs.prometheus_text` or ``QueryService.metrics_snapshot()``.
  The work counters the benchmarks gate are *bitwise identical* with
  metrics on or off — the registry observes, it never participates.
* **Tracing** — per-query :class:`~repro.obs.Trace` trees.  Install a sink
  with ``QueryService.set_trace_sink(...)`` and every ``submit`` produces a
  span tree (plan-lookup → sampling → solve → execute → per-shard
  ``shard:<i>`` spans under :class:`ParallelBatchExecutor`) annotated with
  wall time and exact work deltas: the per-span ``udf_evals`` sum equals
  the query ledger's ``evaluated_count``, even across worker threads
  (propagation uses ``contextvars``).  Sinks:
  :class:`~repro.obs.CollectingTraceSink` (in memory),
  :class:`~repro.obs.JsonLinesTraceSink` (file/stream) and
  :class:`~repro.obs.SlowQueryLog` (threshold-filtered, slowest-first).
* **Latency** — ``QueryService`` always records per-path latency
  histograms (cheap fixed buckets; ``hit``/``miss``/``refresh``/``exact``/
  ``error``) with exact p50/p95/p99 over the recorded samples, surfaced by
  ``QueryService.latency_snapshot()`` and — as informational
  ``latency_p50_ms``/``latency_p99_ms`` keys, never gated — in
  ``benchmarks/BENCH_serving.json``.  ``examples/serving_workload.py
  --metrics`` prints the registry snapshot and the slowest trace tree after
  a run; ``benchmarks/test_obs_overhead.py`` pins the enabled-path overhead
  on the warm serving path.

Resilience & degradation
------------------------

:mod:`repro.resilience` bounds every request in time and keeps the service
answering — degraded, never wedged — when the process pool misbehaves:

* **Deadlines** — ``ServiceConfig(default_timeout_s=...)`` (or a per-call
  ``submit(..., timeout_s=...)`` override) arms a per-request
  :class:`~repro.resilience.Deadline`, propagated through ``contextvars``
  to every executor thread and checked cooperatively at span, batch and
  solver boundaries.  Expiry raises a typed
  :class:`~repro.resilience.DeadlineExceeded` carrying the budget and the
  stage that tripped — and charges *nothing* past the expiry point: the
  deadline audit in ``benchmarks/test_traffic.py`` gates the
  raised-versus-counted delta at exactly zero.  Coalesced followers
  inherit the leader's typed error; a follower parked behind a slow
  leader honours its *own* deadline while waiting.  Standalone use:
  ``with deadline_scope(Deadline.after(0.5)): ...``.
* **Circuit breaker & retry** — a transient pool fault (worker crash,
  corrupt span payload, lost shared-memory segment) retries the span
  against a respawned pool, replaying charges exactly (the fold happens
  once, in serial order, so a retried span double-charges nothing —
  ``stats().resilience["retried_spans"]`` counts them).  Repeated faults
  trip a :class:`~repro.resilience.CircuitBreaker`
  (``breaker_threshold``/``breaker_recovery_s``): while OPEN the service
  degrades to the thread executor — identical answers, only slower —
  marking results with ``metadata["degraded"]`` and counting
  ``stats().serving["degraded"]``; after the recovery window a bounded
  number of HALF_OPEN probes decides re-close versus re-open, with every
  transition on ``repro_breaker_transitions_total``.
* **Deterministic fault injection** — :class:`~repro.resilience.FaultPlan`
  fires crash/hang/garbage/error/sleep faults at named sites
  (``worker``, ``shm_export``, ``shm_attach``, ``udf_eval``) addressed by
  counter-based SplitMix64 coins, so a failing chaos run replays
  bitwise from its seed.  ``tests/resilience`` (the CI ``chaos`` step)
  drives every scenario differentially against the serial baseline: each
  yields the bitwise-serial answer or a typed error inside the deadline,
  with exact ledger/counter parity and zero leaked shared-memory
  segments.
* **Graceful shutdown** — :meth:`QueryService.close` (also
  ``with QueryService(...) as service:``) stops intake with a typed
  :class:`~repro.serving.ServiceClosed`, drains in-flight requests
  (bounded by ``close(timeout=...)``), then tears down executors and
  releases every shared-memory export; ``close`` is idempotent and
  ``stats().resilience["service_closed"]`` records it.

Durability & recovery
---------------------

:mod:`repro.db.storage` makes a catalog survive a crash and makes the
restart *warm*:

* **Checksummed columnar segments** — sealed and tail shards persist one
  column per segment file (magic + JSON header + raw fixed-width payload)
  with a per-block CRC32 table; reopening validates every block and maps
  fixed-width columns back as read-only ``np.memmap`` arrays, so opening a
  1M-row table touches headers and checksums, not python lists.
* **Atomic manifest commit** — every write is temp-file → fsync → rename,
  and the versioned, CRC-enveloped ``MANIFEST.json`` (schema, layout,
  ``data_generation``, per-segment checksums) is written *last*: the
  manifest on disk always names a complete generation, so a crash
  mid-checkpoint leaves the previous generation fully intact.
* **Tail-append journal** — between checkpoints,
  :meth:`~repro.db.TableStore.append` journals each delta (length-prefixed,
  CRC'd, fsynced, stamped with the generation it produces) *before*
  applying it; :meth:`~repro.db.TableStore.open` replays the valid record
  prefix past the manifest generation through the ordinary append path,
  reproducing tail growth and sealing bitwise.
* **Typed quarantine & rebuild** — torn ``.tmp`` files are swept; corrupt
  artifacts raise :class:`~repro.db.CorruptSegmentError` /
  :class:`~repro.db.ManifestVersionError`, are moved to ``quarantine/``
  (never deleted) and degrade gracefully to a rebuild-from-source callable
  when one is supplied — every outcome counted in
  :func:`repro.db.storage.storage_counters` and surfaced via
  ``QueryService.stats().storage``.
* **Warm restart** — ``ServiceConfig(storage_dir=...)`` persists serving
  warmth next to the data: plan-cache entries, statistics reservoirs,
  group-index codes and UDF memo caches, each stamped with the owning
  table's ``shard_signature()`` and restored only on an exact match.  A
  restarted service answers its first repeated query as a warm hit with
  **zero** UDF evaluations, reporting ``plan_cache: "restored"`` once.
  The four storage fault sites (``manifest_write``, ``segment_write``,
  ``journal_append``, ``segment_read``) extend the chaos suite: every
  injected torn write and bit flip either reopens bitwise-identical to the
  last durable generation or fails typed and rebuilds — never silently
  corrupt.  ``benchmarks/test_restart.py`` commits the cold-versus-warm
  restart counters to ``BENCH_restart.json``, gated via
  ``compare_bench.py --profile restart``.

Bounded-memory serving
----------------------

A durable catalog can be *larger than memory*.  Passing
``CatalogStore.open(residency=ResidencyManager(budget_bytes=N))`` (and
``ServiceConfig(memory_budget_bytes=N)`` on the service) opens every table
**lazily** and serves it out-of-core:

* **Budget model** — :class:`~repro.db.residency.ResidencyManager` tracks
  every mapped column segment at its actual ``nbytes`` against one byte
  budget.  :meth:`TableStore.open` validates only segment *headers* (magic
  + header CRC) up front; a segment's payload is mapped — and its block
  CRCs verified, once — on first touch.  When residency exceeds the
  budget, clean mappings are evicted least-recently-used.  Eviction drops
  the *manager's* reference only: arrays a caller already holds stay
  valid, and gathers copy out of the map, so eviction order is
  **bitwise-invisible** to results — the out-of-core benchmark gates work
  counters and row ids against the unbounded run at exactly ±0.
* **Pin/evict semantics** — in-flight spans pin the segments they read;
  pinned segments are never evicted, so peak residency is bounded by
  ``budget + one pinned shard's columns``.  Execution is shard-at-a-time:
  spans release their pins (and the evictor reclaims) between shards, and
  cold sampling visits shards in *residency order* — resident shards
  first, then faulting absent ones in one at a time.
* **Watermark degradation** — crossing ``watermark * budget`` fires
  pressure callbacks in a fixed order: first the service sheds its
  plan/statistics **caches**; if pins hold residency over budget
  (``critical``), new async admissions are **shed** with the typed
  :class:`~repro.serving.Overloaded` (``pressure_shed`` counter); and a
  table whose segment maps *keep failing* trips a per-table circuit
  **breaker** that degrades it to rebuilt-in-memory — answering queries
  always outranks staying lazy.  ``stats().storage["residency"]`` and the
  ``repro_residency_*`` registry metrics (resident-bytes gauge,
  eviction/fault counters, map-latency histogram) expose all of it.
* **Direct attach** — the process executor ships durable segments to
  workers by ``(path, offset, dtype)`` and each worker ``np.memmap``-s the
  segment file itself (committed segment files are immutable at a path),
  skipping the ``shared_memory`` re-export copy entirely; the shm path
  remains for non-durable in-memory tables.  The ``segment_map`` /
  ``segment_evict`` fault sites extend the chaos suite: every injected
  map/evict fault either recovers bitwise or fails typed
  (:class:`~repro.db.SegmentMapError`) with zero leaked mappings, and
  ``tests/leakcheck.py`` asserts zero resident bytes after every
  ``close()``.

``examples/serving_workload.py --memory-budget BYTES`` demonstrates a
table ~4x the budget answering bitwise-identically to the unbounded run;
``benchmarks/test_outofcore.py`` commits the parity and eviction counters
to ``BENCH_outofcore.json``, gated via ``compare_bench.py --profile
outofcore``.

See DESIGN.md for the module map and EXPERIMENTS.md for the paper-versus-
measured comparison of every table and figure.
"""

from repro.baselines import LearningBaseline, MultipleImputationBaseline, NaiveBaseline
from repro.core import (
    AdaptiveIntelSample,
    CostModel,
    ExecutionPlan,
    ExecutorAware,
    GroupDecision,
    GroupStatistics,
    IntelSample,
    OptimalOracle,
    ParallelBatchExecutor,
    PlanExecutor,
    ProcessPoolBatchExecutor,
    QueryConstraints,
    SelectivityModel,
    solve_bigreedy,
    solve_estimated_selectivity,
    solve_perfect_information,
    solve_perfect_selectivity_lp,
    solve_with_samples,
)
from repro.datasets import DatasetBundle, generate_dataset, load_all_datasets, load_dataset
from repro.db import (
    Catalog,
    CatalogStore,
    CorruptSegmentError,
    CostLedger,
    Engine,
    GroupIndex,
    ManifestVersionError,
    MergedGroupIndex,
    QueryResult,
    RecoveryReport,
    SelectQuery,
    ShardedTable,
    StorageError,
    Table,
    TableStore,
    UdfPredicate,
    UserDefinedFunction,
    metadata_schema,
)
from repro.obs import (
    CollectingTraceSink,
    JsonLinesTraceSink,
    MetricsRegistry,
    SlowQueryLog,
    Trace,
    disable_metrics,
    enable_metrics,
    prometheus_text,
)
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultRule,
    InjectedFault,
    deadline_scope,
    fault_scope,
)
from repro.sampling import ConstantScheme, FixedFractionScheme, TwoThirdPowerScheme
from repro.serving import (
    AdmissionError,
    BatchExecutor,
    Overloaded,
    PlanCache,
    QueryService,
    ServiceClosed,
    ServiceConfig,
    ServiceStats,
    SessionManager,
    StatisticsCache,
)

__version__ = "1.5.0"

__all__ = [
    "__version__",
    # core
    "QueryConstraints",
    "CostModel",
    "GroupStatistics",
    "SelectivityModel",
    "ExecutionPlan",
    "GroupDecision",
    "PlanExecutor",
    "ParallelBatchExecutor",
    "ProcessPoolBatchExecutor",
    "ExecutorAware",
    "IntelSample",
    "AdaptiveIntelSample",
    "OptimalOracle",
    "solve_bigreedy",
    "solve_perfect_selectivity_lp",
    "solve_perfect_information",
    "solve_estimated_selectivity",
    "solve_with_samples",
    # db
    "Catalog",
    "Engine",
    "Table",
    "ShardedTable",
    "TableStore",
    "CatalogStore",
    "RecoveryReport",
    "StorageError",
    "CorruptSegmentError",
    "ManifestVersionError",
    "GroupIndex",
    "MergedGroupIndex",
    "SelectQuery",
    "QueryResult",
    "metadata_schema",
    "UserDefinedFunction",
    "UdfPredicate",
    "CostLedger",
    # datasets
    "DatasetBundle",
    "generate_dataset",
    "load_dataset",
    "load_all_datasets",
    # sampling schemes
    "ConstantScheme",
    "TwoThirdPowerScheme",
    "FixedFractionScheme",
    # baselines
    "NaiveBaseline",
    "LearningBaseline",
    "MultipleImputationBaseline",
    # serving
    "QueryService",
    "ServiceConfig",
    "ServiceStats",
    "BatchExecutor",
    "PlanCache",
    "StatisticsCache",
    "SessionManager",
    "AdmissionError",
    "Overloaded",
    "ServiceClosed",
    # resilience
    "Deadline",
    "DeadlineExceeded",
    "deadline_scope",
    "CircuitBreaker",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "fault_scope",
    # observability
    "MetricsRegistry",
    "enable_metrics",
    "disable_metrics",
    "prometheus_text",
    "Trace",
    "CollectingTraceSink",
    "JsonLinesTraceSink",
    "SlowQueryLog",
]
