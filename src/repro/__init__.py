"""repro — a reproduction of "Exploiting Correlations for Expensive Predicate Evaluation".

The library answers selection queries with expensive boolean UDF predicates
approximately: the user specifies precision/recall lower bounds and a
satisfaction probability, and the optimizer exploits the correlation between a
categorical attribute and the UDF outcome to skip most UDF calls.

Quickstart::

    from repro import (
        CostLedger, IntelSample, QueryConstraints, load_dataset,
    )

    dataset = load_dataset("lending_club", random_state=0, scale=0.2)
    udf = dataset.make_udf()
    strategy = IntelSample(random_state=0)
    ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
    result = strategy.answer(
        dataset.table, udf, QueryConstraints(alpha=0.8, beta=0.8, rho=0.8), ledger
    )
    print(len(result.row_ids), "tuples returned for", ledger.evaluated_count, "UDF calls")

See DESIGN.md for the module map and EXPERIMENTS.md for the paper-versus-
measured comparison of every table and figure.
"""

from repro.baselines import LearningBaseline, MultipleImputationBaseline, NaiveBaseline
from repro.core import (
    AdaptiveIntelSample,
    CostModel,
    ExecutionPlan,
    GroupDecision,
    GroupStatistics,
    IntelSample,
    OptimalOracle,
    PlanExecutor,
    QueryConstraints,
    SelectivityModel,
    solve_bigreedy,
    solve_estimated_selectivity,
    solve_perfect_information,
    solve_perfect_selectivity_lp,
    solve_with_samples,
)
from repro.datasets import DatasetBundle, generate_dataset, load_all_datasets, load_dataset
from repro.db import (
    Catalog,
    CostLedger,
    Engine,
    GroupIndex,
    QueryResult,
    SelectQuery,
    Table,
    UdfPredicate,
    UserDefinedFunction,
)
from repro.sampling import ConstantScheme, FixedFractionScheme, TwoThirdPowerScheme

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "QueryConstraints",
    "CostModel",
    "GroupStatistics",
    "SelectivityModel",
    "ExecutionPlan",
    "GroupDecision",
    "PlanExecutor",
    "IntelSample",
    "AdaptiveIntelSample",
    "OptimalOracle",
    "solve_bigreedy",
    "solve_perfect_selectivity_lp",
    "solve_perfect_information",
    "solve_estimated_selectivity",
    "solve_with_samples",
    # db
    "Catalog",
    "Engine",
    "Table",
    "GroupIndex",
    "SelectQuery",
    "QueryResult",
    "UserDefinedFunction",
    "UdfPredicate",
    "CostLedger",
    # datasets
    "DatasetBundle",
    "generate_dataset",
    "load_dataset",
    "load_all_datasets",
    # sampling schemes
    "ConstantScheme",
    "TwoThirdPowerScheme",
    "FixedFractionScheme",
    # baselines
    "NaiveBaseline",
    "LearningBaseline",
    "MultipleImputationBaseline",
]
