"""Adaptive choice of the sampling parameter ``num`` (paper Section 4.3).

The paper's recipe: start with a small ``num`` (a small multiple of the
precision threshold ``alpha``), repeatedly increase it, re-solve the convex
optimization problem after each increase, and keep an estimate of the total
cost of the resulting plan.  Cost first falls (better estimates allow cheaper
plans) and later rises (the sampling itself dominates); stop when it starts
rising and use the best plan seen.

The search is expressed generically: the caller supplies a callable that maps
a candidate ``num`` to the *predicted total cost* of running the query with
that much sampling.  The Intel-Sample pipeline provides that callable by
actually sampling incrementally and solving Convex Program 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence


@dataclass(frozen=True)
class AdaptiveSamplingResult:
    """Outcome of the adaptive ``num`` search."""

    best_num: float
    best_cost: float
    evaluated_nums: List[float]
    evaluated_costs: List[float]

    @property
    def num_rounds(self) -> int:
        """How many candidate values were evaluated."""
        return len(self.evaluated_nums)


def default_num_schedule(alpha: float, max_multiple: float = 8.0, step: float = 1.0) -> List[float]:
    """The paper-inspired schedule ``num = z * alpha`` for increasing ``z``.

    The paper observes ``2 <= z <= 5`` usually works; the schedule starts
    below that and runs a bit past it so the rise in cost is observable.
    """
    if alpha <= 0:
        alpha = 0.1
    zs: List[float] = []
    z = 1.0
    while z <= max_multiple + 1e-9:
        zs.append(z)
        z += step
    return [z * alpha for z in zs]


def choose_num_adaptively(
    cost_for_num: Callable[[float], float],
    num_schedule: Sequence[float],
    patience: int = 1,
) -> AdaptiveSamplingResult:
    """Walk ``num_schedule`` until the predicted cost starts rising.

    Parameters
    ----------
    cost_for_num:
        Maps a candidate ``num`` to the predicted total query cost.
    num_schedule:
        Increasing candidate values; evaluation stops early once the cost has
        risen for ``patience`` consecutive candidates.
    patience:
        Number of consecutive cost increases tolerated before stopping.
    """
    schedule = list(num_schedule)
    if not schedule:
        raise ValueError("num_schedule must contain at least one candidate")
    if any(b <= a for a, b in zip(schedule, schedule[1:])):
        raise ValueError("num_schedule must be strictly increasing")

    evaluated_nums: List[float] = []
    evaluated_costs: List[float] = []
    best_num: Optional[float] = None
    best_cost = float("inf")
    consecutive_rises = 0

    for candidate in schedule:
        cost = float(cost_for_num(candidate))
        evaluated_nums.append(candidate)
        evaluated_costs.append(cost)
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_num = candidate
            consecutive_rises = 0
        else:
            consecutive_rises += 1
            if consecutive_rises > patience:
                break

    return AdaptiveSamplingResult(
        best_num=float(best_num),
        best_cost=best_cost,
        evaluated_nums=evaluated_nums,
        evaluated_costs=evaluated_costs,
    )
