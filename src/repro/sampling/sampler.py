"""Stratified group sampler with cost accounting.

The sampler draws the allocated number of tuples from each group, retrieves
and evaluates them (charging ``o_r + o_e`` each to the ledger), and records
per-group outcomes.  Two facts from Section 4.2 matter downstream:

* sampled tuples that evaluated to true can be returned as part of the query
  result without re-evaluation, and
* sampled tuples are *sunk cost*: the optimizer's decision variables apply to
  the remaining ``t_a - F_a`` tuples only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence

import numpy as np

from repro.db.index import GroupIndex
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.resilience.deadline import check_deadline
from repro.stats.beta import BetaPosterior
from repro.stats.random import RandomState, SeedLike, as_random_state


@dataclass
class GroupSample:
    """Sampling outcome for one group.

    Attributes
    ----------
    group_key:
        The group's ``A`` value.
    sampled_row_ids:
        Row ids that were sampled (retrieved + evaluated).
    positive_row_ids:
        The subset of sampled rows that satisfied the predicate.
    group_size:
        Total number of tuples in the group (``t_a``).
    """

    group_key: Hashable
    sampled_row_ids: List[int] = field(default_factory=list)
    positive_row_ids: List[int] = field(default_factory=list)
    group_size: int = 0

    @property
    def sample_size(self) -> int:
        """``F_a`` — number of evaluated tuples."""
        return len(self.sampled_row_ids)

    @property
    def positives(self) -> int:
        """``F_a^+`` — sampled tuples satisfying the predicate."""
        return len(self.positive_row_ids)

    @property
    def negatives(self) -> int:
        """``F_a^-`` — sampled tuples failing the predicate."""
        return self.sample_size - self.positives

    @property
    def posterior(self) -> BetaPosterior:
        """The Beta posterior over this group's selectivity."""
        return BetaPosterior(positives=self.positives, negatives=self.negatives)

    @property
    def remaining_size(self) -> int:
        """Number of not-yet-evaluated tuples (``t_a - F_a``)."""
        return self.group_size - self.sample_size


@dataclass
class SampleOutcome:
    """Sampling outcome across all groups."""

    samples: Dict[Hashable, GroupSample]

    @property
    def total_sampled(self) -> int:
        """Total number of evaluated tuples across groups."""
        return sum(sample.sample_size for sample in self.samples.values())

    @property
    def total_positives(self) -> int:
        """Total number of sampled tuples satisfying the predicate."""
        return sum(sample.positives for sample in self.samples.values())

    def posterior(self, group_key: Hashable) -> BetaPosterior:
        """Posterior for one group (uninformed when the group was never sampled)."""
        sample = self.samples.get(group_key)
        if sample is None:
            return BetaPosterior.uninformed()
        return sample.posterior

    def positive_row_ids(self) -> List[int]:
        """All sampled rows that satisfied the predicate (free query output)."""
        rows: List[int] = []
        for sample in self.samples.values():
            rows.extend(sample.positive_row_ids)
        return rows

    def sampled_row_ids(self) -> List[int]:
        """All sampled rows."""
        rows: List[int] = []
        for sample in self.samples.values():
            rows.extend(sample.sampled_row_ids)
        return rows

    def merge(self, other: "SampleOutcome") -> "SampleOutcome":
        """Combine two outcomes (used by adaptive sampling rounds)."""
        merged: Dict[Hashable, GroupSample] = {}
        for key in set(self.samples) | set(other.samples):
            left = self.samples.get(key)
            right = other.samples.get(key)
            if left is None:
                merged[key] = right
                continue
            if right is None:
                merged[key] = left
                continue
            merged[key] = GroupSample(
                group_key=key,
                sampled_row_ids=left.sampled_row_ids + right.sampled_row_ids,
                positive_row_ids=left.positive_row_ids + right.positive_row_ids,
                group_size=max(left.group_size, right.group_size),
            )
        return SampleOutcome(samples=merged)

    @classmethod
    def merge_shards(
        cls, outcomes: Sequence["SampleOutcome"], key_order: Optional[Sequence[Hashable]] = None
    ) -> "SampleOutcome":
        """Exact merge of per-shard outcomes into the whole-table outcome.

        Unlike :meth:`merge` (adaptive rounds over *one* table, where group
        sizes coincide and the max is taken), shard outcomes describe
        disjoint row ranges of one logical table: group sizes **add**, and
        sampled/positive row-id lists (already in global row-id space)
        concatenate in shard order.  Every statistic is a count, so the merge
        is exact — the property tests pin it equal to sampling the unsharded
        table with the same draws.  ``key_order`` optionally fixes the group
        order of the result (e.g. a merged index's first-appearance order).
        """
        merged: Dict[Hashable, GroupSample] = {}
        if key_order is not None:
            for key in key_order:
                merged[key] = GroupSample(group_key=key)
        for outcome in outcomes:
            for key, sample in outcome.samples.items():
                into = merged.get(key)
                if into is None:
                    into = GroupSample(group_key=key)
                    merged[key] = into
                into.sampled_row_ids.extend(sample.sampled_row_ids)
                into.positive_row_ids.extend(sample.positive_row_ids)
                into.group_size += sample.group_size
        return cls(samples=merged)


class GroupSampler:
    """Draws and evaluates stratified samples over a group index."""

    def __init__(self, random_state: SeedLike = None):
        self.random_state: RandomState = as_random_state(random_state)

    def sample(
        self,
        table: Table,
        index: GroupIndex,
        udf: UserDefinedFunction,
        allocation: Mapping[Hashable, int],
        ledger: CostLedger,
        already_sampled: Optional[SampleOutcome] = None,
        bulk_evaluator: Optional[Callable[[Table, np.ndarray], np.ndarray]] = None,
    ) -> SampleOutcome:
        """Sample according to ``allocation``, charging ``ledger``.

        ``already_sampled`` lets adaptive callers top up an earlier outcome
        without re-evaluating rows they already paid for; the returned outcome
        contains only the *new* rows (merge with the old outcome if needed).

        The per-group draws happen first (one vectorised ``choice`` per
        group, in index order, so the random stream matches the historical
        per-group sampler); the chosen rows are then retrieved, charged and
        evaluated in a single batched UDF call across all groups.

        ``bulk_evaluator`` optionally replaces ``udf.evaluate_rows`` for that
        batched call — the parallel executor passes its shard fan-out here.
        Row *selection* stays on this sampler's sequential stream either way,
        so the drawn sample (and therefore every downstream statistic) is
        identical whether or not the evaluation is fanned.
        """
        check_deadline("sampling")
        samples: Dict[Hashable, GroupSample] = {}
        chosen_per_group: List[np.ndarray] = []
        for group_key, row_ids in index.items():
            requested = int(allocation.get(group_key, 0))
            if already_sampled is not None and group_key in already_sampled.samples:
                previously = already_sampled.samples[group_key].sampled_row_ids
                available = (
                    row_ids[~np.isin(row_ids, previously)] if previously else row_ids
                )
            else:
                available = row_ids
            count = max(0, min(requested, int(len(available))))
            samples[group_key] = GroupSample(
                group_key=group_key, group_size=int(len(row_ids))
            )
            if count > 0:
                chosen_positions = np.atleast_1d(
                    self.random_state.choice(len(available), size=count, replace=False)
                )
                chosen = np.asarray(available, dtype=np.intp)[chosen_positions]
            else:
                chosen = np.empty(0, dtype=np.intp)
            chosen_per_group.append(chosen)

        all_chosen = (
            np.concatenate(chosen_per_group) if chosen_per_group else np.empty(0, dtype=np.intp)
        )
        if all_chosen.size:
            # Bulk charge before the bulk evaluation (same totals as the
            # historical per-row loop; a hard budget now stops the whole
            # batch before any UDF work instead of mid-stratum).  The
            # deadline check sits in the same place for the same reason: an
            # expired request must not pay for the batch it will not use.
            check_deadline("sampling-charge")
            ledger.charge_retrieval(int(all_chosen.size))
            ledger.charge_evaluation(int(all_chosen.size))
            evaluate = bulk_evaluator if bulk_evaluator is not None else udf.evaluate_rows
            outcomes = evaluate(table, all_chosen)
        else:
            outcomes = np.empty(0, dtype=bool)

        offset = 0
        for sample, chosen in zip(samples.values(), chosen_per_group):
            if not chosen.size:
                continue
            group_outcomes = outcomes[offset : offset + chosen.size]
            offset += chosen.size
            sample.sampled_row_ids.extend(chosen.tolist())
            sample.positive_row_ids.extend(chosen[group_outcomes].tolist())
        return SampleOutcome(samples=samples)
