"""Sampling substrate: how many tuples to evaluate per group, and doing so.

Section 4 of the paper estimates group selectivities by evaluating a sample of
tuples per group.  This package provides

* :mod:`repro.sampling.schemes` — the ``Constant(c)`` and
  ``Two-Third-Power(num)`` allocation rules compared in Experiment 2, plus a
  fixed-fraction scheme used by Experiment 1 (5% of the data),
* :mod:`repro.sampling.sampler` — the stratified sampler that actually draws
  and evaluates tuples while charging the cost ledger, and
* :mod:`repro.sampling.adaptive` — the adaptive ``num`` search of Section 4.3.
"""

from repro.sampling.adaptive import AdaptiveSamplingResult, choose_num_adaptively
from repro.sampling.sampler import GroupSample, GroupSampler, SampleOutcome
from repro.sampling.schemes import (
    ConstantScheme,
    FixedFractionScheme,
    SamplingScheme,
    TwoThirdPowerScheme,
)

__all__ = [
    "SamplingScheme",
    "ConstantScheme",
    "TwoThirdPowerScheme",
    "FixedFractionScheme",
    "GroupSampler",
    "GroupSample",
    "SampleOutcome",
    "AdaptiveSamplingResult",
    "choose_num_adaptively",
]
