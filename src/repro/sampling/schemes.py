"""Per-group sample-size allocation schemes (paper Sections 4.3 and 6.3).

A sampling scheme answers "how many tuples should be evaluated from each
group before we trust the selectivity estimates?".  The paper compares:

* ``Constant(c)`` — ``c`` tuples from every group regardless of size, and
* ``Two-Third-Power(num)`` — ``num * t_a * n^(-1/3)`` tuples from a group of
  size ``t_a`` in a table of ``n`` tuples, derived from the local optimality
  argument in Appendix 10.6.

``FixedFraction(fraction)`` (a constant fraction of every group, 5% in the
paper's Experiment 1) is included because the headline comparison uses it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, Mapping


class SamplingScheme(ABC):
    """Maps group sizes to per-group sample counts."""

    @abstractmethod
    def sample_size(self, group_size: int, total_size: int) -> int:
        """Number of tuples to sample from one group."""

    def allocate(self, group_sizes: Mapping[Hashable, int]) -> Dict[Hashable, int]:
        """Allocate sample counts for every group.

        Counts are clipped to the group size, and every non-empty group gets
        at least one sample so that a selectivity estimate exists for it.
        """
        total = sum(group_sizes.values())
        allocation: Dict[Hashable, int] = {}
        for group_key, size in group_sizes.items():
            if size <= 0:
                allocation[group_key] = 0
                continue
            count = self.sample_size(size, total)
            count = max(1, min(size, count))
            allocation[group_key] = count
        return allocation

    def total_allocation(self, group_sizes: Mapping[Hashable, int]) -> int:
        """Total number of sampled tuples across groups."""
        return sum(self.allocate(group_sizes).values())


class ConstantScheme(SamplingScheme):
    """Sample a constant number of tuples from every group."""

    def __init__(self, tuples_per_group: int):
        if tuples_per_group < 0:
            raise ValueError(
                f"tuples_per_group must be non-negative, got {tuples_per_group}"
            )
        self.tuples_per_group = tuples_per_group

    def sample_size(self, group_size: int, total_size: int) -> int:
        return self.tuples_per_group

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantScheme(c={self.tuples_per_group})"


class TwoThirdPowerScheme(SamplingScheme):
    """The paper's rule of thumb ``F_a = num * t_a * n^(-1/3)``.

    The name follows the paper's Figure 3(b): the *total* sample size grows as
    ``n^(2/3)`` when group proportions are fixed.
    """

    def __init__(self, num: float):
        if num < 0:
            raise ValueError(f"num must be non-negative, got {num}")
        self.num = num

    def sample_size(self, group_size: int, total_size: int) -> int:
        if total_size <= 0:
            return 0
        raw = self.num * group_size * total_size ** (-1.0 / 3.0)
        return int(round(raw))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TwoThirdPowerScheme(num={self.num})"


class FixedFractionScheme(SamplingScheme):
    """Sample a fixed fraction of every group (5% in the paper's Experiment 1)."""

    def __init__(self, fraction: float):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self.fraction = fraction

    def sample_size(self, group_size: int, total_size: int) -> int:
        return int(round(self.fraction * group_size))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedFractionScheme(fraction={self.fraction})"
