"""Linear-programming wrapper.

A light abstraction over :func:`scipy.optimize.linprog` so that the core
optimizers can state problems in "maximize/minimize subject to >= constraints"
form without worrying about scipy's sign conventions, and so that solver
failures surface as typed exceptions with diagnostic context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog


class InfeasibleProblemError(RuntimeError):
    """The LP (or convex program) has no feasible point."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


@dataclass
class LinearProgram:
    """``minimize c @ x`` subject to ``A_ge @ x >= b_ge`` and bounds.

    Attributes
    ----------
    objective:
        Cost vector ``c``.
    constraints_ge:
        List of ``(row, bound)`` pairs encoding ``row @ x >= bound``.
    constraints_eq:
        List of ``(row, value)`` pairs encoding ``row @ x == value``.
    bounds:
        Per-variable ``(low, high)`` bounds; defaults to ``[0, 1]``.
    """

    objective: Sequence[float]
    constraints_ge: List[Tuple[Sequence[float], float]] = field(default_factory=list)
    constraints_eq: List[Tuple[Sequence[float], float]] = field(default_factory=list)
    bounds: Optional[List[Tuple[float, float]]] = None

    @property
    def num_variables(self) -> int:
        """Number of decision variables."""
        return len(self.objective)

    def add_ge(self, row: Sequence[float], bound: float) -> None:
        """Append a ``row @ x >= bound`` constraint."""
        if len(row) != self.num_variables:
            raise ValueError(
                f"constraint has {len(row)} coefficients for {self.num_variables} variables"
            )
        self.constraints_ge.append((list(row), float(bound)))

    def add_eq(self, row: Sequence[float], value: float) -> None:
        """Append a ``row @ x == value`` constraint."""
        if len(row) != self.num_variables:
            raise ValueError(
                f"constraint has {len(row)} coefficients for {self.num_variables} variables"
            )
        self.constraints_eq.append((list(row), float(value)))


@dataclass(frozen=True)
class LinearSolution:
    """Solution of a :class:`LinearProgram`."""

    values: np.ndarray
    objective_value: float
    status: str

    def __iter__(self):
        return iter(self.values)


def solve_linear_program(program: LinearProgram) -> LinearSolution:
    """Solve ``program`` with scipy's HiGHS backend.

    Raises
    ------
    InfeasibleProblemError
        If no feasible point exists (or the solver reports failure).
    """
    c = np.asarray(program.objective, dtype=float)
    a_ub = None
    b_ub = None
    if program.constraints_ge:
        # scipy wants A_ub @ x <= b_ub, so negate the >= constraints.
        a_ub = -np.asarray([row for row, _ in program.constraints_ge], dtype=float)
        b_ub = -np.asarray([bound for _, bound in program.constraints_ge], dtype=float)
    a_eq = None
    b_eq = None
    if program.constraints_eq:
        a_eq = np.asarray([row for row, _ in program.constraints_eq], dtype=float)
        b_eq = np.asarray([value for _, value in program.constraints_eq], dtype=float)
    bounds = program.bounds or [(0.0, 1.0)] * program.num_variables

    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise InfeasibleProblemError(
            f"linear program could not be solved: {result.message}",
            status=result.status,
        )
    return LinearSolution(
        values=np.asarray(result.x, dtype=float),
        objective_value=float(result.fun),
        status="optimal",
    )
