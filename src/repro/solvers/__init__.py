"""Optimization substrate.

The paper needs three kinds of optimization machinery:

* a linear-program solver for the perfect-selectivity formulation
  (Section 3.2) — :mod:`repro.solvers.linear` wraps :func:`scipy.optimize.linprog`,
* a convex solver for the estimated-selectivity formulations (Sections 3.3
  and 4.2) — :mod:`repro.solvers.convex` wraps SLSQP with feasibility
  fall-backs, and
* exact integer machinery for the (NP-hard) perfect-information problem on
  small instances — :mod:`repro.solvers.knapsack` and
  :mod:`repro.solvers.branch_bound`.
"""

from repro.solvers.branch_bound import BranchAndBoundSolver, IntegerProgram
from repro.solvers.convex import ConvexProblem, ConvexSolution, ConvexSolver
from repro.solvers.knapsack import (
    KnapsackItem,
    min_knapsack_dp,
    min_knapsack_greedy,
)
from repro.solvers.linear import LinearProgram, LinearSolution, solve_linear_program

__all__ = [
    "LinearProgram",
    "LinearSolution",
    "solve_linear_program",
    "ConvexProblem",
    "ConvexSolution",
    "ConvexSolver",
    "KnapsackItem",
    "min_knapsack_dp",
    "min_knapsack_greedy",
    "IntegerProgram",
    "BranchAndBoundSolver",
]
