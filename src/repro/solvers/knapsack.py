"""Minimum-knapsack machinery.

Theorem 3.2 of the paper proves the perfect-information problem NP-hard by a
reduction from *minimum knapsack*: choose a subset ``S'`` with total value at
least ``V`` while minimizing total weight.  This module provides

* an exact dynamic program (pseudo-polynomial in the value target) used both
  by the perfect-information solver on small instances and by tests that
  exercise the reduction, and
* the classical greedy 2-approximation used as a fast fallback.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class KnapsackItem:
    """An item with a weight (cost to pick) and a value (contribution)."""

    identifier: object
    weight: float
    value: float

    def __post_init__(self) -> None:
        if self.weight < 0 or self.value < 0:
            raise ValueError("weights and values must be non-negative")


def min_knapsack_dp(
    items: Sequence[KnapsackItem], value_target: float, scale: int = 1
) -> Tuple[List[KnapsackItem], float]:
    """Exact minimum-knapsack: cheapest subset with total value >= target.

    Values are discretised by ``scale`` (values are multiplied by ``scale``
    and rounded); pass a larger scale for fractional values needing precision.

    Returns ``(chosen_items, total_weight)``.  Raises ``ValueError`` when the
    target is unreachable even with every item selected.
    """
    if value_target <= 0:
        return [], 0.0
    total_value = sum(item.value for item in items)
    if total_value < value_target - 1e-12:
        raise ValueError(
            f"value target {value_target} unreachable; total available value is {total_value}"
        )

    scaled_values = [int(round(item.value * scale)) for item in items]
    scaled_target = int(math.ceil(value_target * scale - 1e-9))
    scaled_target = max(scaled_target, 0)

    # dp[v] = minimal weight achieving scaled value exactly >= v (capped at target)
    infinity = float("inf")
    dp: List[float] = [infinity] * (scaled_target + 1)
    choice: List[dict] = [dict() for _ in range(scaled_target + 1)]
    dp[0] = 0.0

    for index, item in enumerate(items):
        item_value = scaled_values[index]
        new_dp = dp[:]
        new_choice = [dict(c) for c in choice]
        for achieved in range(scaled_target + 1):
            if dp[achieved] == infinity:
                continue
            target_after = min(scaled_target, achieved + item_value)
            candidate_weight = dp[achieved] + item.weight
            if candidate_weight < new_dp[target_after] - 1e-15:
                new_dp[target_after] = candidate_weight
                picked = dict(choice[achieved])
                picked[index] = True
                new_choice[target_after] = picked
        dp = new_dp
        choice = new_choice

    if dp[scaled_target] == infinity:
        raise ValueError("minimum knapsack target unreachable after discretisation")
    chosen_indices = sorted(choice[scaled_target].keys())
    chosen = [items[i] for i in chosen_indices]
    return chosen, dp[scaled_target]


def min_knapsack_greedy(
    items: Sequence[KnapsackItem], value_target: float
) -> Tuple[List[KnapsackItem], float]:
    """Greedy minimum-knapsack: pick items by value/weight ratio until covered.

    Not optimal in general but fast; used as a warm start and in property
    tests as an upper bound on the optimal weight.
    """
    if value_target <= 0:
        return [], 0.0
    total_value = sum(item.value for item in items)
    if total_value < value_target - 1e-12:
        raise ValueError(
            f"value target {value_target} unreachable; total available value is {total_value}"
        )

    def ratio(item: KnapsackItem) -> float:
        if item.weight == 0:
            return float("inf")
        return item.value / item.weight

    chosen: List[KnapsackItem] = []
    accumulated = 0.0
    for item in sorted(items, key=ratio, reverse=True):
        if accumulated >= value_target - 1e-12:
            break
        if item.value <= 0:
            continue
        chosen.append(item)
        accumulated += item.value
    weight = sum(item.weight for item in chosen)
    return chosen, weight
