"""Convex-programming wrapper.

The estimated-selectivity programs of Sections 3.3 and 4.2 minimize a linear
cost subject to constraints of the form::

    linear(x)  -  e_rho * sqrt(convex quadratic(x))  >=  0

The left-hand side is concave, so the feasible set is convex and any local
solver finds the global optimum.  This module wraps :func:`scipy.optimize.minimize`
(SLSQP) with:

* multiple deterministic starting points (all-evaluate, all-retrieve,
  mid-point, plus caller-provided warm starts such as the BiGreedy solution),
* explicit feasibility checking of every candidate, and
* a typed error when no feasible point is found.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.optimize import minimize

from repro.solvers.linear import InfeasibleProblemError

ConstraintFn = Callable[[np.ndarray], float]
ConstraintJac = Callable[[np.ndarray], np.ndarray]
#: A constraint is a bare callable (numerically differentiated by SLSQP) or
#: a ``(fun, jac)`` pair with an analytic gradient — the analytic form turns
#: every jacobian evaluation from ``2k+1`` function calls into one.
Constraint = Union[ConstraintFn, Tuple[ConstraintFn, ConstraintJac]]


def _constraint_fn(constraint: Constraint) -> ConstraintFn:
    return constraint[0] if isinstance(constraint, tuple) else constraint


@dataclass
class ConvexProblem:
    """``minimize objective @ x`` subject to ``g_i(x) >= 0`` and box bounds.

    Attributes
    ----------
    objective:
        Linear cost vector.
    inequality_constraints:
        Callables ``g_i`` that must satisfy ``g_i(x) >= 0`` at a feasible
        point, optionally as ``(g_i, grad_g_i)`` pairs carrying an analytic
        jacobian.  Each must be concave for the solution to be globally
        optimal, which is the case for all programs in the paper.
    linear_inequalities:
        ``(row, bound)`` pairs meaning ``row @ x >= bound`` (used for the
        ``R_a >= E_a`` coupling constraints).
    bounds:
        Per-variable ``(low, high)``; defaults to ``[0, 1]``.
    """

    objective: Sequence[float]
    inequality_constraints: List[Constraint] = field(default_factory=list)
    linear_inequalities: List[Tuple[Sequence[float], float]] = field(default_factory=list)
    bounds: Optional[List[Tuple[float, float]]] = None

    @property
    def num_variables(self) -> int:
        """Number of decision variables."""
        return len(self.objective)

    def cost(self, x: np.ndarray) -> float:
        """Objective value at ``x``."""
        return float(np.dot(np.asarray(self.objective, dtype=float), x))

    def violation(self, x: np.ndarray, tolerance: float = 1e-7) -> float:
        """Maximum constraint violation at ``x`` (0 when feasible)."""
        worst = 0.0
        for constraint in self.inequality_constraints:
            worst = max(worst, -float(_constraint_fn(constraint)(x)))
        for row, bound in self.linear_inequalities:
            worst = max(worst, bound - float(np.dot(row, x)))
        bounds = self.bounds or [(0.0, 1.0)] * self.num_variables
        for value, (low, high) in zip(x, bounds):
            worst = max(worst, low - value, value - high)
        return max(0.0, worst - tolerance if worst > tolerance else worst)

    def is_feasible(self, x: np.ndarray, tolerance: float = 1e-6) -> bool:
        """Whether ``x`` satisfies every constraint within ``tolerance``."""
        return self.violation(x) <= tolerance


@dataclass(frozen=True)
class ConvexSolution:
    """Solution of a :class:`ConvexProblem`."""

    values: np.ndarray
    objective_value: float
    feasible: bool
    status: str

    def __iter__(self):
        return iter(self.values)


class ConvexSolver:
    """SLSQP-based solver with warm starts and feasibility verification."""

    def __init__(
        self,
        max_iterations: int = 300,
        tolerance: float = 1e-9,
        feasibility_tolerance: float = 1e-5,
    ):
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.feasibility_tolerance = feasibility_tolerance

    def solve(
        self,
        problem: ConvexProblem,
        warm_starts: Optional[Sequence[Sequence[float]]] = None,
    ) -> ConvexSolution:
        """Solve ``problem``, trying several starting points.

        Returns the best feasible candidate found.  Raises
        :class:`InfeasibleProblemError` when every attempt fails the
        feasibility check.
        """
        n = problem.num_variables
        bounds = problem.bounds or [(0.0, 1.0)] * n
        starts: List[np.ndarray] = []
        if warm_starts:
            starts.extend(np.clip(np.asarray(s, dtype=float), 0.0, 1.0) for s in warm_starts)
        highs = np.asarray([b[1] for b in bounds], dtype=float)
        lows = np.asarray([b[0] for b in bounds], dtype=float)
        starts.append(highs.copy())                  # all retrieve + evaluate
        starts.append((lows + highs) / 2.0)          # mid point
        starts.append(lows + 0.9 * (highs - lows))   # near the top

        objective_vector = np.asarray(problem.objective, dtype=float)

        def objective(x: np.ndarray) -> float:
            return float(np.dot(objective_vector, x))

        def objective_grad(x: np.ndarray) -> np.ndarray:
            return objective_vector

        scipy_constraints = []
        for constraint in problem.inequality_constraints:
            if isinstance(constraint, tuple):
                fun, jac = constraint
                scipy_constraints.append({"type": "ineq", "fun": fun, "jac": jac})
            else:
                scipy_constraints.append({"type": "ineq", "fun": constraint})
        if problem.linear_inequalities:
            # One vector-valued constraint for every linear row: SLSQP calls
            # a single callback with an exact jacobian instead of one python
            # closure (numerically differentiated) per coupling row.
            matrix = np.asarray(
                [row for row, _ in problem.linear_inequalities], dtype=float
            )
            offsets = np.asarray(
                [bound for _, bound in problem.linear_inequalities], dtype=float
            )
            scipy_constraints.append(
                {
                    "type": "ineq",
                    "fun": (lambda x, m=matrix, b=offsets: m @ x - b),
                    "jac": (lambda x, m=matrix: m),
                }
            )

        best: Optional[ConvexSolution] = None
        for start in starts:
            result = minimize(
                objective,
                start,
                jac=objective_grad,
                bounds=bounds,
                constraints=scipy_constraints,
                method="SLSQP",
                options={"maxiter": self.max_iterations, "ftol": self.tolerance},
            )
            candidate = np.clip(np.asarray(result.x, dtype=float), lows, highs)
            feasible = problem.is_feasible(candidate, self.feasibility_tolerance)
            if not feasible:
                continue
            cost = problem.cost(candidate)
            if best is None or cost < best.objective_value:
                best = ConvexSolution(
                    values=candidate,
                    objective_value=cost,
                    feasible=True,
                    status="optimal" if result.success else "feasible",
                )
            if result.success:
                # The program is convex (linear objective over a convex
                # feasible set), so any converged feasible solve is already
                # the global optimum — the remaining starts exist only to
                # rescue a failed solve, not to improve a successful one.
                break
        if best is not None:
            return best

        # Final fall-back: check whether the starting points themselves are
        # feasible (e.g. the all-evaluate plan); use the cheapest feasible one.
        feasible_starts = [
            s for s in starts if problem.is_feasible(s, self.feasibility_tolerance)
        ]
        if feasible_starts:
            cheapest = min(feasible_starts, key=problem.cost)
            return ConvexSolution(
                values=np.asarray(cheapest, dtype=float),
                objective_value=problem.cost(cheapest),
                feasible=True,
                status="fallback",
            )
        raise InfeasibleProblemError(
            "convex program has no feasible point among solver attempts"
        )
