"""A small branch-and-bound solver for 0/1 integer programs.

The perfect-information problem (paper Section 3.1) is an integer linear
program over the boolean decision variables ``R_a`` and ``E_a``.  It is
NP-hard in the number of groups, but the number of groups in practice is tiny
(7–10 in the paper's datasets), so an exact branch-and-bound with LP
relaxation bounds is perfectly adequate and lets us report true optima as a
baseline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.solvers.linear import (
    InfeasibleProblemError,
    LinearProgram,
    solve_linear_program,
)


@dataclass
class IntegerProgram:
    """``minimize c @ x`` with ``x`` binary, ``A_ge @ x >= b_ge``.

    Implication constraints ``x_i >= x_j`` (used for ``R_a >= E_a``) are
    expressed as ordinary >= rows by the caller.
    """

    objective: Sequence[float]
    constraints_ge: List[Tuple[Sequence[float], float]] = field(default_factory=list)

    @property
    def num_variables(self) -> int:
        """Number of binary decision variables."""
        return len(self.objective)

    def is_feasible(self, x: Sequence[float], tolerance: float = 1e-9) -> bool:
        """Check all >= constraints at a 0/1 point."""
        vector = np.asarray(x, dtype=float)
        for row, bound in self.constraints_ge:
            if float(np.dot(row, vector)) < bound - tolerance:
                return False
        return True

    def cost(self, x: Sequence[float]) -> float:
        """Objective value at a point."""
        return float(np.dot(self.objective, np.asarray(x, dtype=float)))


@dataclass(frozen=True)
class IntegerSolution:
    """Solution of an :class:`IntegerProgram`."""

    values: np.ndarray
    objective_value: float
    nodes_explored: int
    optimal: bool


class BranchAndBoundSolver:
    """Depth-first branch and bound with LP-relaxation lower bounds."""

    def __init__(self, max_nodes: int = 200_000, brute_force_threshold: int = 16):
        self.max_nodes = max_nodes
        self.brute_force_threshold = brute_force_threshold

    def solve(self, program: IntegerProgram) -> IntegerSolution:
        """Solve ``program`` exactly (brute force for tiny instances)."""
        n = program.num_variables
        if n <= self.brute_force_threshold:
            return self._brute_force(program)
        return self._branch_and_bound(program)

    # -- exact enumeration ------------------------------------------------------
    def _brute_force(self, program: IntegerProgram) -> IntegerSolution:
        best_vector: Optional[np.ndarray] = None
        best_cost = float("inf")
        explored = 0
        for assignment in itertools.product((0.0, 1.0), repeat=program.num_variables):
            explored += 1
            if not program.is_feasible(assignment):
                continue
            cost = program.cost(assignment)
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_vector = np.asarray(assignment, dtype=float)
        if best_vector is None:
            raise InfeasibleProblemError("integer program has no feasible 0/1 point")
        return IntegerSolution(
            values=best_vector,
            objective_value=best_cost,
            nodes_explored=explored,
            optimal=True,
        )

    # -- branch and bound --------------------------------------------------------
    def _branch_and_bound(self, program: IntegerProgram) -> IntegerSolution:
        n = program.num_variables
        best_vector: Optional[np.ndarray] = None
        best_cost = float("inf")
        explored = 0
        # Each node fixes a prefix of variables: (fixed_values list)
        stack: List[List[float]] = [[]]

        while stack:
            if explored >= self.max_nodes:
                break
            fixed = stack.pop()
            explored += 1
            relaxation = self._relaxation(program, fixed)
            if relaxation is None:
                continue  # infeasible branch
            lower_bound, fractional = relaxation
            if lower_bound >= best_cost - 1e-12:
                continue  # cannot improve
            if len(fixed) == n:
                candidate = np.asarray(fixed, dtype=float)
                if program.is_feasible(candidate):
                    cost = program.cost(candidate)
                    if cost < best_cost - 1e-12:
                        best_cost = cost
                        best_vector = candidate
                continue
            # Round the LP relaxation as an incumbent heuristic.
            rounded = np.round(fractional)
            if program.is_feasible(rounded):
                cost = program.cost(rounded)
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    best_vector = rounded
            next_index = len(fixed)
            # Explore the branch suggested by the relaxation first.
            preferred = 1.0 if fractional[next_index] >= 0.5 else 0.0
            stack.append(fixed + [1.0 - preferred])
            stack.append(fixed + [preferred])

        if best_vector is None:
            raise InfeasibleProblemError("integer program has no feasible 0/1 point")
        return IntegerSolution(
            values=best_vector,
            objective_value=best_cost,
            nodes_explored=explored,
            optimal=explored < self.max_nodes,
        )

    def _relaxation(
        self, program: IntegerProgram, fixed: List[float]
    ) -> Optional[Tuple[float, np.ndarray]]:
        n = program.num_variables
        bounds: List[Tuple[float, float]] = []
        for index in range(n):
            if index < len(fixed):
                bounds.append((fixed[index], fixed[index]))
            else:
                bounds.append((0.0, 1.0))
        lp = LinearProgram(
            objective=list(program.objective),
            constraints_ge=[(list(row), bound) for row, bound in program.constraints_ge],
            bounds=bounds,
        )
        try:
            solution = solve_linear_program(lp)
        except InfeasibleProblemError:
            return None
        return solution.objective_value, solution.values
