"""BiGreedy: the paper's solver-free algorithm for Linear Program 3.4.

Phase 1 (Section 3.2.2): raise the retrieval probabilities ``R_a`` to 1 in
*decreasing* selectivity order until the (margined) recall constraint is met —
retrieval mass on a high-selectivity group is the cheapest expected recall
available at ``o_r`` per tuple.

Phase 2 — joint precision repair.  When the margined precision constraint is
still short, the cost model offers two repair channels:

* **evaluate at** ``o_e``: converting a retrieved-but-unevaluated tuple of
  group ``a`` into a retrieved-and-evaluated one filters its false positives
  and buys ``alpha * (1 - s_a)`` units of margined precision — cheapest on
  *low*-selectivity groups (the appendix greedy's only move);
* **retrieve at** ``o_r``: retrieving more of a group buys ``s_a - alpha``
  units unevaluated (positive when ``s_a > alpha``) or ``s_a * (1 - alpha)``
  units when also evaluated, *and* adds recall slack — cheapest on
  *high*-selectivity groups.

The pre-PR-2 implementation repaired with evaluations only, which is up to
``o_e / o_r`` times more expensive than the LP optimum on loose-recall
problems (the old ROADMAP open item).  The joint repair implemented here
compares the marginal cost of the two channels at every price point: it
sweeps the shadow price ``mu`` of the precision constraint across its
breakpoints — each breakpoint is exactly a price at which one channel starts
paying for itself or two channels trade places — and at each candidate price
solves the ``mu``-adjusted recall problem as a fractional knapsack (phase 1
is the ``mu = 0`` instance).  At the first price whose cheapest allocation
closes the deficit, blending the deficit-closing and deficit-short
allocations makes the precision constraint exactly tight; together with
recall feasibility and ``mu``-optimality that certifies a *global* LP
optimum by weak duality.  The result therefore matches
:func:`~repro.core.hoeffding_lp.solve_perfect_selectivity_lp` on every
feasible input — in particular wherever Theorem 3.8's pre-conditions hold —
and raises :class:`InfeasibleProblemError` exactly when the margined LP has
no solution (callers then fall back to the exhaustive plan).

Complexity: ``O(|A| log |A|)`` when phase 1 alone satisfies precision (the
common case, and the regime of Theorem 3.8); the repair sweep is
``O(|A|^3 log |A|)`` in the worst case, over group counts that are small by
construction (one group per bucket of the correlated column).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.constraints import CostModel, QueryConstraints
from repro.core.groups import SelectivityModel
from repro.core.hoeffding_lp import (
    LpSolution,
    SelectivityMargins,
    compute_margins,
    precision_headroom,
    recall_target,
    solve_perfect_selectivity_lp,
)
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.resilience.deadline import check_deadline
from repro.solvers.linear import InfeasibleProblemError

_ALPHA_CERTAIN = 1.0 - 1e-12
_EPS = 1e-12
#: Relative tolerance for detecting that two repair channels are tied at a
#: candidate shadow price (their price-adjusted costs agree to ~12 digits).
_TIE_RTOL = 1e-12
#: Absolute slack on the margined precision constraint; must stay well below
#: the 1e-6 slack the property suite grants feasible plans.
_PRECISION_SLACK = 1e-9

#: Group entry consumed by the allocator: ``(key, remaining, selectivity)``.
_Entry = Tuple[Hashable, float, float]
#: Per-group allocation: fractions bought ``(unevaluated, evaluated)``.
_Alloc = Dict[Hashable, Tuple[float, float]]


def bigreedy_feasibility_conditions(
    model: SelectivityModel,
    constraints: QueryConstraints,
    margins: Optional[SelectivityMargins] = None,
) -> bool:
    """The two sufficient conditions of Theorem 3.8.

    ``h^p_rho < sum_a max(t_a (s_a - alpha), 0)`` ensures the precision
    constraint can be met without evaluating high-selectivity groups, and
    ``h^r_rho < sum_a (1 - beta) t_a s_a`` ensures the recall constraint is
    satisfiable at all.  Note these scope the *theorem*, not the solver:
    :func:`solve_bigreedy` attains the LP optimum on every feasible input.
    """
    margins = margins or compute_margins(model, constraints)
    headroom = precision_headroom(model, constraints)
    recall_head_room = sum(
        (1.0 - constraints.beta) * group.remaining * group.selectivity for group in model
    )
    precision_ok = (
        constraints.alpha <= 0.0
        or constraints.alpha >= _ALPHA_CERTAIN
        or margins.precision_margin < headroom.retrieval
    )
    recall_ok = margins.recall_margin <= recall_head_room + _EPS
    return precision_ok and recall_ok


def _cheapest_recall_allocation(
    entries: List[_Entry],
    price: float,
    target: float,
    alpha: float,
    retrieval_cost: float,
    evaluation_cost: float,
    prefer_precision: bool,
) -> Tuple[_Alloc, float, float]:
    """Cheapest recall-feasible allocation at a fixed precision shadow price.

    With the precision constraint priced into the objective at ``price``,
    both channels of a group carry the same recall coefficient ``s_a``, so
    each group collapses to its cheaper price-adjusted channel and the
    problem becomes a fractional knapsack: buy every channel whose adjusted
    cost is negative outright, then close the remaining recall gap in
    increasing adjusted-cost-per-recall order.  ``prefer_precision`` selects
    which of the (generally many) tied optima to return — the
    precision-maximising one or the precision-minimising one; the repair
    sweep blends the two to make the precision constraint exactly tight.

    Returns ``(allocation, precision_lhs, recall_shortfall)``.
    """
    chosen = []
    for key, remaining, selectivity in entries:
        gain_unevaluated = selectivity - alpha
        gain_evaluated = selectivity * (1.0 - alpha)
        adjusted_unevaluated = retrieval_cost - price * gain_unevaluated
        adjusted_evaluated = (
            retrieval_cost + evaluation_cost - price * gain_evaluated
        )
        tie = _TIE_RTOL * (1.0 + abs(adjusted_unevaluated) + abs(adjusted_evaluated))
        if adjusted_evaluated < adjusted_unevaluated - tie:
            evaluated = True
        elif adjusted_unevaluated < adjusted_evaluated - tie:
            evaluated = False
        else:
            # Tied channels: the evaluated one never has less precision gain.
            evaluated = prefer_precision
        adjusted = adjusted_evaluated if evaluated else adjusted_unevaluated
        gain = gain_evaluated if evaluated else gain_unevaluated
        chosen.append((key, remaining, selectivity, evaluated, adjusted, gain))

    allocation: _Alloc = {}
    recall = 0.0
    deferred = []
    for key, remaining, selectivity, evaluated, adjusted, gain in chosen:
        tie = _TIE_RTOL * (1.0 + abs(adjusted))
        if adjusted < -tie or (adjusted <= tie and prefer_precision and gain > 0.0):
            # Strictly profitable at this price (or free precision, when the
            # caller wants the precision-maximising optimum): buy it all.
            allocation[key] = (0.0, 1.0) if evaluated else (1.0, 0.0)
            recall += remaining * selectivity
        elif selectivity > 0.0:
            deferred.append(
                (key, remaining, selectivity, evaluated, max(adjusted, 0.0), gain)
            )

    shortfall = target - recall
    if shortfall > _EPS:
        # Adjusted cost per unit of expected recall; among ties, take the
        # precision-richest (or -poorest) recall first so the two returned
        # optima bracket the whole optimal face.
        def order(item):
            _, _, selectivity, _, adjusted, gain = item
            per_recall = gain / selectivity
            return (
                adjusted / selectivity,
                -per_recall if prefer_precision else per_recall,
            )

        deferred.sort(key=order)
        for key, remaining, selectivity, evaluated, adjusted, gain in deferred:
            if shortfall <= _EPS:
                break
            capacity = remaining * selectivity
            if capacity <= shortfall + _EPS:
                fraction = 1.0
                shortfall -= capacity
            else:
                fraction = shortfall / capacity
                shortfall = 0.0
            allocation[key] = (0.0, fraction) if evaluated else (fraction, 0.0)

    precision = 0.0
    for key, remaining, selectivity, _evaluated, _adjusted, _gain in chosen:
        unevaluated, evaluated_mass = allocation.get(key, (0.0, 0.0))
        if unevaluated > 0.0 or evaluated_mass > 0.0:
            precision += remaining * (
                unevaluated * (selectivity - alpha)
                + evaluated_mass * selectivity * (1.0 - alpha)
            )
    return allocation, precision, max(shortfall, 0.0)


def _precision_price_breakpoints(
    entries: List[_Entry],
    alpha: float,
    retrieval_cost: float,
    evaluation_cost: float,
) -> List[float]:
    """Candidate shadow prices at which the cheapest allocation can change.

    Three families, all derived from the per-group channel lines
    ``adjusted(mu) = cost - mu * gain``:

    * a channel turns free (``adjusted = 0``) — ``o_r / (s_a - alpha)`` for
      unevaluated retrieval, ``(o_r + o_e) / (s_a (1 - alpha))`` evaluated;
    * a group's two channels tie — ``o_e / (alpha (1 - s_a))``, the price at
      which evaluating stops being worth the filtered false positives;
    * two channels of different groups swap order in adjusted cost per unit
      of recall.

    The first two are the pairwise crossings with the ``i == j`` diagonal, so
    a single pass over channel pairs produces all three.
    """
    channels = []
    for _key, _remaining, selectivity in entries:
        if selectivity <= 0.0:
            # Zero-selectivity groups contribute no recall and no positive
            # precision; no price ever makes them worth buying.
            continue
        channels.append((retrieval_cost, selectivity - alpha, selectivity))
        channels.append(
            (
                retrieval_cost + evaluation_cost,
                selectivity * (1.0 - alpha),
                selectivity,
            )
        )
    candidates = set()
    for i, (cost_i, gain_i, recall_i) in enumerate(channels):
        if gain_i > 0.0 and cost_i > 0.0:
            candidates.add(cost_i / gain_i)
        for cost_j, gain_j, recall_j in channels[i + 1 :]:
            denominator = gain_i * recall_j - gain_j * recall_i
            magnitude = abs(gain_i * recall_j) + abs(gain_j * recall_i)
            if abs(denominator) > 1e-15 * (magnitude + 1e-300):
                crossing = (cost_i * recall_j - cost_j * recall_i) / denominator
                if crossing > 0.0:
                    candidates.add(crossing)
    return sorted(candidates)


def _blend(low: _Alloc, high: _Alloc, theta: float) -> _Alloc:
    """Convex combination ``theta * high + (1 - theta) * low`` of allocations."""
    blended: _Alloc = {}
    for key in set(low) | set(high):
        low_u, low_e = low.get(key, (0.0, 0.0))
        high_u, high_e = high.get(key, (0.0, 0.0))
        blended[key] = (
            theta * high_u + (1.0 - theta) * low_u,
            theta * high_e + (1.0 - theta) * low_e,
        )
    return blended


def _joint_precision_repair(
    entries: List[_Entry],
    target: float,
    required: float,
    ceiling: float,
    alpha: float,
    retrieval_cost: float,
    evaluation_cost: float,
) -> Optional[_Alloc]:
    """Close a precision deficit at minimal cost via the breakpoint sweep.

    ``ceiling`` is :func:`precision_headroom`'s ``total`` channel — the LHS
    of retrieving and evaluating everything.  Returns the optimal
    allocation, or ``None`` when floating-point degeneracy prevented the
    sweep from certifying one (the caller then falls back to the scipy LP,
    preserving exactness).  Raises :class:`InfeasibleProblemError` when even
    ``ceiling`` cannot reach ``required``.
    """
    if ceiling < required - 1e-7:
        raise InfeasibleProblemError(
            "precision constraint unsatisfiable even when retrieving and "
            "evaluating every tuple; fall back to exhaustive evaluation"
        )
    prices = [0.0] + _precision_price_breakpoints(
        entries, alpha, retrieval_cost, evaluation_cost
    )
    for price in prices:
        # Breakpoint sweeps scale with group count; a deadlined request
        # bails between iterations rather than finishing a doomed solve.
        check_deadline("solve")
        high, high_precision, _ = _cheapest_recall_allocation(
            entries, price, target, alpha, retrieval_cost, evaluation_cost, True
        )
        if high_precision < required - _PRECISION_SLACK:
            continue
        low, low_precision, _ = _cheapest_recall_allocation(
            entries, price, target, alpha, retrieval_cost, evaluation_cost, False
        )
        if low_precision > required + 1e-6:
            # The optimal face should straddle the deficit at the first
            # closing price; if rounding broke the bracket, let scipy decide.
            return None
        if high_precision - low_precision <= _EPS:
            return high
        theta = (required - low_precision) / (high_precision - low_precision)
        return _blend(low, high, min(1.0, max(0.0, theta)))
    return None


def solve_bigreedy(
    model: SelectivityModel,
    constraints: QueryConstraints,
    cost_model: CostModel = CostModel(),
    margins: Optional[SelectivityMargins] = None,
) -> LpSolution:
    """Solve Linear Program 3.4 exactly, without an LP solver.

    Raises :class:`InfeasibleProblemError` when the margined constraints are
    unsatisfiable even with every tuple retrieved and evaluated (callers then
    fall back to the exhaustive plan, which is always correct).
    """
    groups = model.groups
    if not groups:
        return LpSolution(
            plan=ExecutionPlan({}),
            expected_cost=0.0,
            margins=SelectivityMargins(0.0, 0.0),
        )
    margins = margins or compute_margins(model, constraints)
    alpha = constraints.alpha
    browsing = alpha >= _ALPHA_CERTAIN
    retrieval_cost = cost_model.retrieval_cost
    evaluation_cost = cost_model.evaluation_cost
    entries: List[_Entry] = [
        (group.key, float(group.remaining), group.selectivity)
        for group in groups
        if group.remaining > 0
    ]

    # Phase 1 — the zero-price knapsack: raise R_a in decreasing selectivity
    # order (equivalently, increasing o_r per expected recall) to meet recall.
    target = recall_target(model, constraints, margins.recall_margin)
    allocation, precision, shortfall = _cheapest_recall_allocation(
        entries, 0.0, target, alpha, retrieval_cost, evaluation_cost, False
    )
    if shortfall > 1e-7:
        achieved = target - shortfall
        raise InfeasibleProblemError(
            "recall constraint unsatisfiable: even retrieving every tuple yields "
            f"{achieved:.3f} expected correct tuples versus a target of {target:.3f}"
        )

    if browsing:
        # Browsing scenario: everything retrieved must be evaluated; realized
        # precision is then exactly 1 and needs no margin.  Phase 1 may leave
        # the marginal R_a fractional — the E_a = R_a invariant must hold for
        # that fractional mass too, not only for the 0/1 groups.
        allocation = {
            key: (0.0, unevaluated + evaluated)
            for key, (unevaluated, evaluated) in allocation.items()
        }
    elif alpha > 0.0 and precision < margins.precision_margin - _PRECISION_SLACK:
        # Phase 2 — joint repair of the precision deficit.
        repaired = _joint_precision_repair(
            entries,
            target,
            margins.precision_margin,
            precision_headroom(model, constraints).total,
            alpha,
            retrieval_cost,
            evaluation_cost,
        )
        if repaired is None:  # pragma: no cover - numerical escape hatch
            return solve_perfect_selectivity_lp(model, constraints, cost_model, margins)
        allocation = repaired

    decisions = {}
    for group in groups:
        unevaluated, evaluated = allocation.get(group.key, (0.0, 0.0))
        retrieve = min(1.0, unevaluated + evaluated)
        decisions[group.key] = GroupDecision(
            retrieve=retrieve, evaluate=min(retrieve, evaluated)
        )
    plan = ExecutionPlan(decisions)
    if browsing:
        for _key, decision in plan:
            assert decision.evaluate == decision.retrieve, (
                "browsing-mode invariant violated: every retrieved tuple "
                f"(R_a={decision.retrieve}) must be evaluated (E_a={decision.evaluate})"
            )
    return LpSolution(
        plan=plan,
        expected_cost=plan.expected_cost(model, cost_model, include_sampling=False),
        margins=margins,
    )
