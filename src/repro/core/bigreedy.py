"""BiGreedy: the paper's O(|A| log |A|) solver for Linear Program 3.4.

Section 3.2.2: raise the retrieval probabilities ``R_a`` to 1 in *decreasing*
selectivity order until the (margined) recall constraint is met, then raise
the evaluation probabilities ``E_a`` towards ``R_a`` in *increasing*
selectivity order until the (margined) precision constraint is met.  The
appendix lemmas show the result is an optimal solution of the LP whenever the
pre-conditions of Theorem 3.8 hold.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.core.constraints import CostModel, QueryConstraints
from repro.core.groups import SelectivityModel
from repro.core.hoeffding_lp import (
    LpSolution,
    SelectivityMargins,
    compute_margins,
    recall_target,
)
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.solvers.linear import InfeasibleProblemError

_ALPHA_CERTAIN = 1.0 - 1e-12
_EPS = 1e-12


def bigreedy_feasibility_conditions(
    model: SelectivityModel,
    constraints: QueryConstraints,
    margins: Optional[SelectivityMargins] = None,
) -> bool:
    """The two sufficient conditions of Theorem 3.8.

    ``h^p_rho < sum_a max(t_a (s_a - alpha), 0)`` ensures the precision
    constraint can be met without evaluating high-selectivity groups, and
    ``h^r_rho < sum_a (1 - beta) t_a s_a`` ensures the recall constraint is
    satisfiable at all.
    """
    margins = margins or compute_margins(model, constraints)
    precision_head_room = sum(
        max(group.remaining * (group.selectivity - constraints.alpha), 0.0)
        for group in model
    )
    recall_head_room = sum(
        (1.0 - constraints.beta) * group.remaining * group.selectivity for group in model
    )
    precision_ok = (
        constraints.alpha <= 0.0
        or constraints.alpha >= _ALPHA_CERTAIN
        or margins.precision_margin < precision_head_room
    )
    recall_ok = margins.recall_margin <= recall_head_room + _EPS
    return precision_ok and recall_ok


def solve_bigreedy(
    model: SelectivityModel,
    constraints: QueryConstraints,
    cost_model: CostModel = CostModel(),
    margins: Optional[SelectivityMargins] = None,
) -> LpSolution:
    """Solve Linear Program 3.4 greedily, without an LP solver.

    Raises :class:`InfeasibleProblemError` when the margined constraints are
    unsatisfiable even with every tuple retrieved and evaluated (callers then
    fall back to the exhaustive plan, which is always correct).
    """
    groups = model.groups
    if not groups:
        return LpSolution(
            plan=ExecutionPlan({}),
            expected_cost=0.0,
            margins=SelectivityMargins(0.0, 0.0),
        )
    margins = margins or compute_margins(model, constraints)
    alpha = constraints.alpha
    browsing = alpha >= _ALPHA_CERTAIN

    retrieve: Dict[Hashable, float] = {group.key: 0.0 for group in groups}
    evaluate: Dict[Hashable, float] = {group.key: 0.0 for group in groups}

    # Phase 1 — raise R_a in decreasing selectivity order to meet recall.
    target = recall_target(model, constraints, margins.recall_margin)
    achieved = 0.0
    for group in model.sorted_by_selectivity(descending=True):
        if achieved >= target - _EPS:
            break
        capacity = group.remaining * group.selectivity
        if capacity <= 0.0:
            continue
        needed = target - achieved
        if capacity <= needed + _EPS:
            retrieve[group.key] = 1.0
            achieved += capacity
        else:
            retrieve[group.key] = needed / capacity
            achieved = target
    if achieved < target - 1e-7:
        raise InfeasibleProblemError(
            "recall constraint unsatisfiable: even retrieving every tuple yields "
            f"{achieved:.3f} expected correct tuples versus a target of {target:.3f}"
        )

    # Browsing scenario: everything retrieved must be evaluated; precision is
    # then exact and needs no margin.
    if browsing:
        evaluate = dict(retrieve)
    elif alpha > 0.0:
        # Phase 2 — raise E_a in increasing selectivity order to meet precision.
        def precision_lhs() -> float:
            total = 0.0
            for group in groups:
                r = retrieve[group.key]
                e = evaluate[group.key]
                total += group.remaining * group.selectivity * (1.0 - alpha) * r
                total -= group.remaining * (1.0 - group.selectivity) * alpha * (r - e)
            return total

        deficit = margins.precision_margin - precision_lhs()
        if deficit > _EPS:
            for group in model.sorted_by_selectivity(descending=False):
                if deficit <= _EPS:
                    break
                room = retrieve[group.key] - evaluate[group.key]
                if room <= 0.0:
                    continue
                gain_per_unit = group.remaining * (1.0 - group.selectivity) * alpha
                if gain_per_unit <= 0.0:
                    continue
                full_gain = gain_per_unit * room
                if full_gain <= deficit + _EPS:
                    evaluate[group.key] = retrieve[group.key]
                    deficit -= full_gain
                else:
                    evaluate[group.key] += deficit / gain_per_unit
                    deficit = 0.0
        if deficit > 1e-7:
            raise InfeasibleProblemError(
                "precision constraint unsatisfiable even when evaluating every "
                "retrieved tuple; fall back to exhaustive evaluation"
            )

    decisions = {
        group.key: GroupDecision(
            retrieve=min(1.0, retrieve[group.key]),
            evaluate=min(min(1.0, retrieve[group.key]), evaluate[group.key]),
        )
        for group in groups
    }
    plan = ExecutionPlan(decisions)
    return LpSolution(
        plan=plan,
        expected_cost=plan.expected_cost(model, cost_model, include_sampling=False),
        margins=margins,
    )
