"""Perfect-selectivity LP (paper Section 3.2, Problem 2 / Linear Program 3.4).

Group selectivities ``s_a`` are known exactly; decisions are probabilities.
The precision and recall constraints are imposed on expectations shifted by
Hoeffding safety margins ``h^p_rho`` / ``h^r_rho`` so that the realized
constraints hold with probability at least ``rho`` (Theorem 3.5), and the
resulting plan is asymptotically optimal (Theorems 3.6/3.7).

Two solvers produce identical plans: this module's scipy-backed LP and the
solver-free BiGreedy algorithm in :mod:`repro.core.bigreedy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.constraints import CostModel, QueryConstraints
from repro.core.groups import SelectivityModel
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.solvers.linear import (
    InfeasibleProblemError,
    LinearProgram,
    solve_linear_program,
)
from repro.stats.hoeffding import hoeffding_precision_margin, hoeffding_recall_margin

_ALPHA_CERTAIN = 1.0 - 1e-12


@dataclass(frozen=True)
class SelectivityMargins:
    """The Hoeffding margins used by a perfect-selectivity solve."""

    precision_margin: float
    recall_margin: float


@dataclass(frozen=True)
class LpSolution:
    """Plan plus diagnostics for a Problem 2 solve."""

    plan: ExecutionPlan
    expected_cost: float
    margins: SelectivityMargins


def compute_margins(
    model: SelectivityModel, constraints: QueryConstraints
) -> SelectivityMargins:
    """Hoeffding margins for the precision and recall constraints.

    The margins operate on the *remaining* (not-yet-sampled) tuples, because
    sampled tuples contribute deterministically to precision and recall.
    """
    remaining = model.total_remaining
    precision_margin = (
        0.0
        if constraints.alpha <= 0.0 or constraints.alpha >= _ALPHA_CERTAIN
        else hoeffding_precision_margin(remaining, constraints.rho)
    )
    recall_margin = hoeffding_recall_margin(remaining, constraints.beta, constraints.rho)
    return SelectivityMargins(
        precision_margin=precision_margin, recall_margin=recall_margin
    )


def recall_target(
    model: SelectivityModel, constraints: QueryConstraints, margin: float
) -> float:
    """The right-hand side of the recall constraint: ``beta * sum t_a s_a + h^r``."""
    expected_correct = sum(group.remaining * group.selectivity for group in model)
    return constraints.beta * expected_correct + margin


@dataclass(frozen=True)
class PrecisionHeadroom:
    """How much margined-precision slack a model can buy, per cost channel.

    The precision constraint's left-hand side grows through two channels:

    * retrieving a tuple of group ``a`` unevaluated (paid at ``o_r``)
      contributes ``s_a - alpha`` — positive only on high-selectivity groups;
    * retrieving *and* evaluating it (paid at ``o_r + o_e``) contributes
      ``s_a * (1 - alpha)``, which dominates the first channel by the
      filtered false-positive mass ``alpha * (1 - s_a)``.

    ``retrieval`` is the headroom of the first channel alone — the quantity
    Theorem 3.8's pre-condition compares against ``h^p_rho``.  ``total`` is
    the absolute ceiling (retrieve and evaluate everything); the margined LP
    is precision-feasible iff ``total >= h^p_rho``.
    """

    retrieval: float
    total: float


def precision_headroom(
    model: SelectivityModel, constraints: QueryConstraints
) -> PrecisionHeadroom:
    """Per-channel precision headroom of ``model`` under ``constraints``."""
    alpha = constraints.alpha
    retrieval = 0.0
    total = 0.0
    for group in model:
        retrieval += max(group.remaining * (group.selectivity - alpha), 0.0)
        total += group.remaining * group.selectivity * (1.0 - alpha)
    return PrecisionHeadroom(retrieval=retrieval, total=total)


def solve_perfect_selectivity_lp(
    model: SelectivityModel,
    constraints: QueryConstraints,
    cost_model: CostModel = CostModel(),
    margins: Optional[SelectivityMargins] = None,
) -> LpSolution:
    """Solve Linear Program 3.4 with scipy.

    Special cases handled outside the LP:

    * ``alpha >= 1`` (browsing scenario): every retrieved tuple must be
      evaluated, which makes the realized precision exactly 1; the LP drops
      the precision constraint and adds ``E_a = R_a``.
    * ``alpha = 0``: the precision constraint is vacuous and dropped.

    Raises :class:`InfeasibleProblemError` when no probabilistic plan meets
    the margined constraints (callers fall back to evaluating everything).
    """
    groups = model.groups
    k = len(groups)
    if k == 0:
        return LpSolution(
            plan=ExecutionPlan({}),
            expected_cost=0.0,
            margins=SelectivityMargins(0.0, 0.0),
        )
    margins = margins or compute_margins(model, constraints)
    alpha = constraints.alpha
    browsing = alpha >= _ALPHA_CERTAIN

    objective = [group.remaining * cost_model.retrieval_cost for group in groups] + [
        group.remaining * cost_model.evaluation_cost for group in groups
    ]
    program = LinearProgram(objective=objective)

    # Recall constraint.
    recall_row = [group.remaining * group.selectivity for group in groups] + [0.0] * k
    program.add_ge(recall_row, recall_target(model, constraints, margins.recall_margin))

    # Precision constraint (skipped for alpha == 0 and for the browsing case).
    if 0.0 < alpha < _ALPHA_CERTAIN:
        precision_row = [
            group.remaining * group.selectivity * (1.0 - alpha)
            - group.remaining * (1.0 - group.selectivity) * alpha
            for group in groups
        ] + [group.remaining * (1.0 - group.selectivity) * alpha for group in groups]
        program.add_ge(precision_row, margins.precision_margin)

    # Coupling R_a >= E_a (and E_a >= R_a in the browsing case).
    for index in range(k):
        row = [0.0] * (2 * k)
        row[index] = 1.0
        row[k + index] = -1.0
        program.add_ge(row, 0.0)
        if browsing:
            program.add_ge([-value for value in row], 0.0)

    solution = solve_linear_program(program)
    decisions = {}
    for index, group in enumerate(groups):
        retrieve = min(1.0, max(0.0, float(solution.values[index])))
        evaluate = min(retrieve, max(0.0, float(solution.values[k + index])))
        decisions[group.key] = GroupDecision(retrieve=retrieve, evaluate=evaluate)
    plan = ExecutionPlan(decisions)
    return LpSolution(
        plan=plan,
        expected_cost=plan.expected_cost(model, cost_model, include_sampling=False),
        margins=margins,
    )
