"""Execution plans: per-group retrieve/evaluate probabilities.

A plan assigns every group a pair ``(R_a, E_a)`` with ``0 <= E_a <= R_a <= 1``:

* ``R_a`` — probability that a tuple of group ``a`` is retrieved,
* ``E_a`` — probability that it is (retrieved and) evaluated.

Deterministic plans (Section 3.1) are the special case where both are 0/1.
The executor interprets a plan tuple-by-tuple: retrieve with probability
``R_a``; if retrieved, evaluate with probability ``E_a / R_a``; a retrieved
and evaluated tuple is returned only if the UDF passes, a retrieved but
unevaluated tuple is returned unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Tuple

from repro.core.constraints import CostModel
from repro.core.groups import SelectivityModel

_PROBABILITY_TOLERANCE = 1e-9


@dataclass(frozen=True)
class GroupDecision:
    """The ``(R_a, E_a)`` pair for one group."""

    retrieve: float
    evaluate: float

    def __post_init__(self) -> None:
        if not -_PROBABILITY_TOLERANCE <= self.retrieve <= 1.0 + _PROBABILITY_TOLERANCE:
            raise ValueError(f"retrieve probability out of range: {self.retrieve}")
        if not -_PROBABILITY_TOLERANCE <= self.evaluate <= 1.0 + _PROBABILITY_TOLERANCE:
            raise ValueError(f"evaluate probability out of range: {self.evaluate}")
        if self.evaluate > self.retrieve + _PROBABILITY_TOLERANCE:
            raise ValueError(
                f"evaluate probability ({self.evaluate}) cannot exceed retrieve "
                f"probability ({self.retrieve})"
            )

    @property
    def retrieve_probability(self) -> float:
        """``R_a`` clipped to [0, 1]."""
        return min(1.0, max(0.0, self.retrieve))

    @property
    def evaluate_probability(self) -> float:
        """``E_a`` clipped to [0, R_a]."""
        return min(self.retrieve_probability, max(0.0, self.evaluate))

    @property
    def conditional_evaluate_probability(self) -> float:
        """``E_a / R_a`` — probability of evaluating a tuple given it was retrieved."""
        retrieve = self.retrieve_probability
        if retrieve <= 0.0:
            return 0.0
        return min(1.0, self.evaluate_probability / retrieve)

    @property
    def is_deterministic(self) -> bool:
        """Whether both probabilities are (numerically) 0 or 1."""
        return all(
            abs(p) <= _PROBABILITY_TOLERANCE or abs(p - 1.0) <= _PROBABILITY_TOLERANCE
            for p in (self.retrieve, self.evaluate)
        )

    @classmethod
    def discard(cls) -> "GroupDecision":
        """Do nothing with the group."""
        return cls(retrieve=0.0, evaluate=0.0)

    @classmethod
    def return_all(cls) -> "GroupDecision":
        """Retrieve every tuple and return it without evaluation."""
        return cls(retrieve=1.0, evaluate=0.0)

    @classmethod
    def evaluate_all(cls) -> "GroupDecision":
        """Retrieve and evaluate every tuple."""
        return cls(retrieve=1.0, evaluate=1.0)


class ExecutionPlan:
    """A mapping from group key to :class:`GroupDecision`."""

    def __init__(self, decisions: Mapping[Hashable, GroupDecision]):
        self._decisions: Dict[Hashable, GroupDecision] = dict(decisions)

    # -- constructors ----------------------------------------------------------------
    @classmethod
    def from_probabilities(
        cls,
        retrieve: Mapping[Hashable, float],
        evaluate: Mapping[Hashable, float],
    ) -> "ExecutionPlan":
        """Build a plan from two aligned probability mappings."""
        if set(retrieve) != set(evaluate):
            raise ValueError("retrieve and evaluate mappings must share the same keys")
        return cls(
            {
                key: GroupDecision(retrieve=float(retrieve[key]), evaluate=float(evaluate[key]))
                for key in retrieve
            }
        )

    @classmethod
    def evaluate_everything(cls, keys: Iterable[Hashable]) -> "ExecutionPlan":
        """The always-feasible fallback plan: evaluate every tuple."""
        return cls({key: GroupDecision.evaluate_all() for key in keys})

    @classmethod
    def discard_everything(cls, keys: Iterable[Hashable]) -> "ExecutionPlan":
        """The empty plan: return nothing."""
        return cls({key: GroupDecision.discard() for key in keys})

    # -- access -----------------------------------------------------------------------
    def decision(self, key: Hashable) -> GroupDecision:
        """Decision for one group (discard when the plan does not mention it)."""
        return self._decisions.get(key, GroupDecision.discard())

    @property
    def decisions(self) -> Dict[Hashable, GroupDecision]:
        """All decisions keyed by group."""
        return dict(self._decisions)

    @property
    def keys(self) -> list:
        """Group keys covered by the plan."""
        return list(self._decisions.keys())

    @property
    def is_deterministic(self) -> bool:
        """Whether every decision is 0/1."""
        return all(decision.is_deterministic for decision in self._decisions.values())

    def __iter__(self) -> Iterator[Tuple[Hashable, GroupDecision]]:
        return iter(self._decisions.items())

    def __len__(self) -> int:
        return len(self._decisions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExecutionPlan):
            return NotImplemented
        return self._decisions == other._decisions

    # -- expectations --------------------------------------------------------------------
    def expected_retrievals(self, model: SelectivityModel, remaining_only: bool = True) -> float:
        """Expected number of retrieved tuples under ``model``."""
        total = 0.0
        for group in model:
            size = group.remaining if remaining_only else group.size
            total += size * self.decision(group.key).retrieve_probability
        return total

    def expected_evaluations(self, model: SelectivityModel, remaining_only: bool = True) -> float:
        """Expected number of UDF evaluations under ``model``."""
        total = 0.0
        for group in model:
            size = group.remaining if remaining_only else group.size
            total += size * self.decision(group.key).evaluate_probability
        return total

    def expected_cost(
        self,
        model: SelectivityModel,
        cost_model: CostModel,
        remaining_only: bool = True,
        include_sampling: bool = True,
    ) -> float:
        """Expected total cost of executing this plan.

        With ``include_sampling`` the sunk cost of already-sampled tuples
        (one retrieval plus one evaluation each) is added, matching the
        objective of Convex Program 4.1.
        """
        cost = cost_model.plan_cost(
            self.expected_retrievals(model, remaining_only),
            self.expected_evaluations(model, remaining_only),
        )
        if include_sampling:
            sampled = sum(group.sampled for group in model)
            cost += sampled * (cost_model.retrieval_cost + cost_model.evaluation_cost)
        return cost

    def expected_returned_correct(self, model: SelectivityModel) -> float:
        """Expected number of correct tuples returned from the un-sampled pool."""
        total = 0.0
        for group in model:
            decision = self.decision(group.key)
            total += group.remaining * group.selectivity * decision.retrieve_probability
        return total

    def expected_returned_incorrect(self, model: SelectivityModel) -> float:
        """Expected number of incorrect tuples returned from the un-sampled pool.

        Retrieved-and-evaluated incorrect tuples are filtered out, so only the
        retrieved-but-not-evaluated fraction contributes.
        """
        total = 0.0
        for group in model:
            decision = self.decision(group.key)
            unevaluated = decision.retrieve_probability - decision.evaluate_probability
            total += group.remaining * (1.0 - group.selectivity) * unevaluated
        return total

    def expected_precision(self, model: SelectivityModel, include_sampled: bool = True) -> float:
        """Expected-value approximation of the output precision."""
        correct = self.expected_returned_correct(model)
        incorrect = self.expected_returned_incorrect(model)
        if include_sampled:
            correct += model.total_sampled_positives
        denominator = correct + incorrect
        if denominator == 0.0:
            return 1.0
        return correct / denominator

    def expected_recall(self, model: SelectivityModel, include_sampled: bool = True) -> float:
        """Expected-value approximation of the output recall."""
        correct = self.expected_returned_correct(model)
        total_correct = sum(group.remaining * group.selectivity for group in model)
        if include_sampled:
            correct += model.total_sampled_positives
            total_correct += model.total_sampled_positives
        if total_correct == 0.0:
            return 1.0
        return correct / total_correct

    def describe(self) -> str:
        """A compact multi-line description of the plan."""
        lines = []
        for key, decision in self._decisions.items():
            lines.append(
                f"  {key!r}: retrieve={decision.retrieve_probability:.3f} "
                f"evaluate={decision.evaluate_probability:.3f}"
            )
        return "ExecutionPlan(\n" + "\n".join(lines) + "\n)"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExecutionPlan(groups={len(self._decisions)})"
