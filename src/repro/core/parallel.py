"""Parallel plan execution across table shards.

:class:`ParallelBatchExecutor` is the scale-out sibling of
:class:`~repro.core.executor.BatchExecutor`: it fans plan execution (and bulk
UDF evaluation for sampling/labelling) across the contiguous row spans of a
:class:`~repro.db.sharding.ShardedTable` on a shared thread pool.  Threads
are the right tool here because the heavy per-span work — block random
generation, ufunc comparisons, sorts inside index builds, bulk label reads —
runs in NumPy kernels that release the GIL; the python orchestration around
them is O(groups), not O(rows).

Position-addressable coin discipline
------------------------------------

The serial backends consume one sequential random stream, which couples every
coin to all earlier coins — correct, but impossible to decompose across
shards.  This executor instead derives, per execution, a 64-bit root key from
its seeded :class:`~repro.stats.random.RandomState` and gives every group two
*counter-based* SplitMix64 streams (:func:`repro.stats.random.counter_uniforms`):

* retrieval coin for the tuple at position ``p`` of the group's candidate
  list = stream ``(root, group code, phase 0)`` at position ``p``;
* evaluation coin for the same tuple = stream ``(root, group code, phase 1)``
  at position ``p`` (drawn per *candidate* position and applied only to
  retrieved tuples, so it never depends on how many tuples earlier workers
  retrieved).

Because every coin is a pure function of (seed, group, position), the result
is **bitwise identical for any shard layout and any ``max_workers``** —
including the serial fallback — which is what lets the scale benchmark pin
sharded work counters to the unsharded run at ±0.  The trade-off is that the
stream differs from the sequential one shared by ``BatchExecutor`` /
``PlanExecutor``; per-tuple marginals are unchanged (independent uniforms
either way), but seeds are not comparable across disciplines.

Ledger charging is span-granular (one retrieval block + one evaluation block
per span, charged under a lock before that span's UDF work), so a hard budget
stops whole spans, never mid-span.  ``max_workers=1`` — or a table with a
single span — degrades to a deterministic serial loop with no pool involved.
"""

from __future__ import annotations

import contextvars
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.executor import (
    ExecutionResult,
    GroupExecutionCounts,
    _sampled_positives,
)
from repro.core.plan import ExecutionPlan
from repro.db.index import GroupIndex
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.resilience.deadline import check_deadline
from repro.sampling.sampler import SampleOutcome
from repro.stats.random import (
    RandomState,
    SeedLike,
    as_random_state,
    counter_uniforms,
    stream_key,
)

#: Phase tags separating the retrieval and evaluation coin streams of a group.
_PHASE_RETRIEVE = 0
_PHASE_EVALUATE = 1

#: Below this many row ids a bulk-evaluation fan-out is not worth the
#: dispatch overhead; the call degrades to one serial ``evaluate_rows``.
_MIN_PARALLEL_EVAL_ROWS = 2048

_POOLS: Dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def default_max_workers() -> int:
    """Default worker bound: the machine's cores (at least 1)."""
    return max(1, os.cpu_count() or 1)


def shared_pool(max_workers: int) -> ThreadPoolExecutor:
    """A process-wide thread pool per worker bound (created lazily).

    Sharing one pool across executors and index builds avoids paying thread
    start-up per query; workers are plain daemon-less pool threads, joined at
    interpreter exit like any ``ThreadPoolExecutor``.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be positive, got {max_workers}")
    pool = _POOLS.get(max_workers)
    if pool is None:
        with _POOLS_LOCK:
            pool = _POOLS.get(max_workers)
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=max_workers,
                    thread_name_prefix=f"repro-shard-{max_workers}",
                )
                _POOLS[max_workers] = pool
    return pool


def _table_spans(table: Table) -> Tuple[int, ...]:
    """The table's natural contiguous row spans (shard bounds, else one span)."""
    offsets = getattr(table, "shard_offsets", None)
    if offsets is not None:
        return tuple(offsets)
    return (0, table.num_rows)


@dataclass
class _GroupSegment:
    """One group's row slice falling inside one span.

    ``rows`` are the group's global row ids within the span (ascending);
    ``already`` the sorted already-sampled members among them (excluded from
    the probabilistic pass *inside the worker* — membership removal between
    two sorted arrays is a searchsorted scatter, cheaper than the central
    ``np.isin`` and off the serial critical path).  ``position_offset`` is
    the index of this segment's first candidate within the group's full
    candidate list, which addresses the group's coin streams.
    """

    key: Hashable
    code: int
    retrieve_probability: float
    conditional_evaluate: float
    rows: np.ndarray
    already: np.ndarray
    position_offset: int


@dataclass
class _SpanOutcome:
    """What one span's worker hands back for merging.

    ``retrieved``/``evaluated_charge`` are the exact amounts the worker
    charged to the shared ledger (computed under the ledger lock) — the
    per-shard trace spans report these instead of diffing the ledger, which
    siblings mutate concurrently.
    """

    returned: Dict[int, np.ndarray]  # group code -> returned global row ids
    counts: Dict[int, GroupExecutionCounts]
    retrieved: int = 0
    evaluated_charge: int = 0


def build_span_tasks(
    index: GroupIndex,
    plan: ExecutionPlan,
    sampled_ids: Dict[Hashable, np.ndarray],
) -> Tuple[List[List[_GroupSegment]], Dict[Hashable, GroupExecutionCounts]]:
    """Partition every group's candidate rows into per-span worker tasks.

    Returns ``(span_tasks, group_counts)``: one task list per index span
    (``span_boundaries()`` order) and a zero-initialised counts dict covering
    every group.  Pure function of the plan and inputs — shared by the
    thread- and process-pool executors so their work decomposition cannot
    drift.
    """
    group_counts: Dict[Hashable, GroupExecutionCounts] = {}
    bounds = np.asarray(index.span_boundaries(), dtype=np.intp)
    num_spans = len(bounds) - 1
    span_tasks: List[List[_GroupSegment]] = [[] for _ in range(num_spans)]
    empty = np.empty(0, dtype=np.intp)

    for code, (key, rows) in enumerate(index.items()):
        decision = plan.decision(key)
        group_counts[key] = GroupExecutionCounts()
        retrieve_probability = decision.retrieve_probability
        conditional_evaluate = decision.conditional_evaluate_probability
        if retrieve_probability <= 0.0 or rows.size == 0:
            continue
        already = sampled_ids.get(key)
        if already is not None and already.size:
            # Sorted already-sampled ids restricted to actual group members
            # (rows is ascending, so membership is a binary search) —
            # BatchExecutor's np.isin semantics, but the O(n) removal itself
            # happens later, inside the span workers.
            candidates_sorted = np.sort(already)
            positions = np.searchsorted(rows, candidates_sorted)
            member = (positions < rows.size) & (
                rows[np.minimum(positions, rows.size - 1)] == candidates_sorted
            )
            already_members = candidates_sorted[member]
        else:
            already_members = empty
        if rows.size - already_members.size <= 0:
            continue
        row_cuts = np.searchsorted(rows, bounds)
        already_cuts = np.searchsorted(already_members, bounds)
        for span in range(num_spans):
            lo, hi = int(row_cuts[span]), int(row_cuts[span + 1])
            alo, ahi = int(already_cuts[span]), int(already_cuts[span + 1])
            if hi - lo - (ahi - alo) > 0:
                span_tasks[span].append(
                    _GroupSegment(
                        key=key,
                        code=code,
                        retrieve_probability=retrieve_probability,
                        conditional_evaluate=conditional_evaluate,
                        rows=rows[lo:hi],
                        already=already_members[alo:ahi],
                        position_offset=lo - alo,
                    )
                )
    return span_tasks, group_counts


def span_coin_pass(
    root: int, tasks: List[_GroupSegment]
) -> Tuple[List[np.ndarray], List[np.ndarray], int]:
    """Flip every task's retrieval and evaluation coins (no UDF, no ledger).

    Returns ``(retrieved_per_task, evaluate_per_task, total_retrieved)`` —
    per task, the retrieved global row ids and the evaluation mask over
    them.  Pure function of ``(root, tasks)``: this is the half of span
    execution that process-pool workers run remotely.
    """
    retrieved_per_task: List[np.ndarray] = []
    evaluate_per_task: List[np.ndarray] = []  # masks over retrieved
    total_retrieved = 0

    for task in tasks:
        if task.already.size:
            # Remove already-sampled members: both arrays are sorted and
            # task.already ⊆ task.rows, so this is a searchsorted scatter.
            keep = np.ones(task.rows.size, dtype=bool)
            keep[np.searchsorted(task.rows, task.already)] = False
            seg = task.rows[keep]
        else:
            seg = task.rows
        if task.retrieve_probability >= 1.0:
            retrieved = seg
            retrieved_positions = None  # all positions
        else:
            coins = counter_uniforms(
                stream_key(root, task.code, _PHASE_RETRIEVE),
                task.position_offset,
                seg.size,
            )
            keep = coins < task.retrieve_probability
            retrieved = seg[keep]
            retrieved_positions = keep
        if task.conditional_evaluate <= 0.0 or retrieved.size == 0:
            evaluate_mask = np.zeros(retrieved.size, dtype=bool)
        elif task.conditional_evaluate >= 1.0:
            evaluate_mask = np.ones(retrieved.size, dtype=bool)
        else:
            # Per-candidate-position evaluation coins, applied to the
            # retrieved subset (see the coin discipline in the module doc).
            eval_coins = counter_uniforms(
                stream_key(root, task.code, _PHASE_EVALUATE),
                task.position_offset,
                seg.size,
            )
            per_candidate = eval_coins < task.conditional_evaluate
            evaluate_mask = (
                per_candidate
                if retrieved_positions is None
                else per_candidate[retrieved_positions]
            )
        retrieved_per_task.append(retrieved)
        evaluate_per_task.append(evaluate_mask)
        total_retrieved += int(retrieved.size)
    return retrieved_per_task, evaluate_per_task, total_retrieved


def concat_to_evaluate(
    retrieved_per_task: List[np.ndarray], evaluate_per_task: List[np.ndarray]
) -> np.ndarray:
    """The span's rows needing UDF evaluation, in task order."""
    if not retrieved_per_task:
        return np.empty(0, dtype=np.intp)
    return np.concatenate(
        [r[m] for r, m in zip(retrieved_per_task, evaluate_per_task)]
    )


def fold_span_outcomes(
    tasks: List[_GroupSegment],
    retrieved_per_task: List[np.ndarray],
    evaluate_per_task: List[np.ndarray],
    outcomes: np.ndarray,
) -> Tuple[Dict[int, np.ndarray], Dict[int, GroupExecutionCounts]]:
    """Fold UDF outcomes back into per-group returned rows and counts.

    ``outcomes`` is the boolean result for :func:`concat_to_evaluate`'s rows
    (same order).  Pure: UDF outcomes are deterministic, so folding a worker
    process's fresh evaluations gives bitwise the same result as folding the
    parent's memo-assisted ones.
    """
    counts: Dict[int, GroupExecutionCounts] = {}
    returned: Dict[int, np.ndarray] = {}
    offset = 0
    for task, retrieved, evaluate_mask in zip(
        tasks, retrieved_per_task, evaluate_per_task
    ):
        task_counts = counts.setdefault(task.code, GroupExecutionCounts())
        if retrieved.size == 0:
            continue
        evaluated = int(evaluate_mask.sum())
        keep_mask = ~evaluate_mask
        if evaluated:
            group_outcomes = outcomes[offset : offset + evaluated]
            offset += evaluated
            positives = int(group_outcomes.sum())
            negatives = evaluated - positives
            task_counts.evaluated_correct += positives
            task_counts.retrieved_correct += positives
            task_counts.evaluated_incorrect += negatives
            task_counts.retrieved_incorrect += negatives
            task_counts.returned += positives
            keep_mask = keep_mask.copy()
            keep_mask[np.flatnonzero(evaluate_mask)] = group_outcomes
        unevaluated = int(retrieved.size) - evaluated
        task_counts.returned += unevaluated
        kept = retrieved[keep_mask]
        if kept.size:
            previous = returned.get(task.code)
            returned[task.code] = (
                kept if previous is None else np.concatenate([previous, kept])
            )
    return returned, counts


def merge_span_outcomes(
    index: GroupIndex,
    outcomes: Sequence[_SpanOutcome],
    group_counts: Dict[Hashable, GroupExecutionCounts],
    free_positives: Sequence[int],
) -> np.ndarray:
    """Merge per-span outcomes into the serial group-major returned array.

    Merges in (group, span) order: spans are ascending row ranges, so
    concatenating a group's per-span parts in span order reproduces the
    serial group-major, row-ascending output order exactly.  The result
    stays a single numpy array — materialising hundreds of thousands of
    python ints would put an O(returned) GIL-bound loop back on the serial
    critical path.  ``group_counts`` is mutated in place.
    """
    merged: Dict[int, List[np.ndarray]] = {}
    group_keys = index.values  # the property copies; read it once
    for outcome in outcomes:
        for code, part in outcome.returned.items():
            merged.setdefault(code, []).append(part)
        for code, delta in outcome.counts.items():
            key = group_keys[code]
            counts = group_counts[key]
            counts.retrieved_correct += delta.retrieved_correct
            counts.retrieved_incorrect += delta.retrieved_incorrect
            counts.evaluated_correct += delta.evaluated_correct
            counts.evaluated_incorrect += delta.evaluated_incorrect
            counts.returned += delta.returned
    parts: List[np.ndarray] = [np.asarray(free_positives, dtype=np.intp)]
    for code in sorted(merged):
        parts.extend(merged[code])
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


class ParallelBatchExecutor:
    """Sharded, thread-parallel plan executor (see module docstring).

    Parameters
    ----------
    random_state:
        Seed for the per-execution root key; two executions with the same
        seed, plan and inputs return identical results regardless of shard
        layout or ``max_workers``.
    max_workers:
        Thread bound; ``None`` means :func:`default_max_workers`, ``1``
        forces the serial fallback.
    free_memoized:
        Serving accounting — do not re-charge evaluations whose value the
        UDF already memoised (same semantics as ``BatchExecutor``).
    """

    def __init__(
        self,
        random_state: SeedLike = None,
        max_workers: Optional[int] = None,
        free_memoized: bool = False,
    ):
        self.random_state: RandomState = as_random_state(random_state)
        workers = default_max_workers() if max_workers is None else int(max_workers)
        if workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = workers
        self.free_memoized = free_memoized
        self._ledger_lock = threading.Lock()

    # -- bulk UDF evaluation fan-out ------------------------------------------
    def bulk_evaluator(
        self, udf: UserDefinedFunction
    ) -> Callable[[Table, Sequence[int]], np.ndarray]:
        """An ``evaluate_rows``-shaped callable that fans across shards.

        Drop-in for ``udf.evaluate_rows`` in ``draw_labeled_sample`` and
        ``GroupSampler.sample``: UDF outcomes are deterministic, so the fan
        changes wall-clock only — never results or paid-evaluation counters
        (the UDF's internal counters are lock-protected).
        """

        def evaluate(table: Table, row_ids: Sequence[int]) -> np.ndarray:
            return self.evaluate_rows(table, udf, row_ids)

        return evaluate

    def evaluate_rows(
        self, table: Table, udf: UserDefinedFunction, row_ids: Sequence[int]
    ) -> np.ndarray:
        """Evaluate ``udf`` on ``row_ids``, partitioned by the table's shards."""
        check_deadline("bulk-evaluate")
        ids = np.asarray(row_ids, dtype=np.intp)
        spans = _table_spans(table)
        if (
            self.max_workers == 1
            or len(spans) <= 2  # a single span
            or ids.size < _MIN_PARALLEL_EVAL_ROWS
        ):
            return udf.evaluate_rows(table, ids)
        masks = []
        for start, stop in zip(spans, spans[1:]):
            mask = (ids >= start) & (ids < stop)
            if mask.any():
                masks.append(mask)
        if len(masks) <= 1:
            return udf.evaluate_rows(table, ids)
        outcomes = np.empty(ids.size, dtype=bool)
        pool = shared_pool(self.max_workers)
        futures = [
            pool.submit(udf.evaluate_rows, table, ids[mask]) for mask in masks
        ]
        for mask, future in zip(masks, futures):
            outcomes[mask] = future.result()
        return outcomes

    # -- plan execution --------------------------------------------------------
    def execute(
        self,
        table: Table,
        index: GroupIndex,
        udf: UserDefinedFunction,
        plan: ExecutionPlan,
        ledger: CostLedger,
        sample_outcome: Optional[SampleOutcome] = None,
    ) -> ExecutionResult:
        """Run ``plan`` over every group of ``index``, fanned across spans."""
        _metrics.counter("repro_executor_runs_total", backend="parallel").inc()
        root = int(self.random_state.integers(0, 2**63))
        sampled_ids, free_positives = _sampled_positives(sample_outcome)
        span_tasks, group_counts = build_span_tasks(index, plan, sampled_ids)

        # Span indices (not list positions after filtering) name the shard
        # trace spans, so ``shard:<i>`` is deterministic for a given layout
        # regardless of which spans end up with work or how the pool
        # schedules them.
        active = [
            (span_index, tasks)
            for span_index, tasks in enumerate(span_tasks)
            if tasks
        ]
        if self.max_workers == 1 or len(active) <= 1:
            outcomes = [
                self._run_span_traced(span_index, root, table, udf, ledger, tasks)
                for span_index, tasks in active
            ]
        else:
            pool = shared_pool(self.max_workers)
            # Each worker runs in a copy of the submitting context, so the
            # per-shard trace spans it opens parent under this query's
            # current span even though the pool threads are long-lived and
            # shared across queries.  (A Context cannot be entered twice
            # concurrently, hence one copy per task.)
            futures = [
                pool.submit(
                    contextvars.copy_context().run,
                    self._run_span_traced,
                    span_index,
                    root,
                    table,
                    udf,
                    ledger,
                    tasks,
                )
                for span_index, tasks in active
            ]
            # Drain every span before propagating a failure: siblings share
            # the ledger, so raising while they still run would hand the
            # caller (and session settlement) a moving cost total.  A hard
            # budget trips each remaining span at its own charge step, so no
            # un-paid-for UDF work happens in the meantime.
            outcomes = []
            first_error: Optional[BaseException] = None
            for future in futures:
                try:
                    outcomes.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error

        returned = merge_span_outcomes(index, outcomes, group_counts, free_positives)

        return ExecutionResult(
            returned_row_ids=returned,
            ledger=ledger,
            group_counts=group_counts,
        )

    def _run_span_traced(
        self,
        span_index: int,
        root: int,
        table: Table,
        udf: UserDefinedFunction,
        ledger: CostLedger,
        tasks: List[_GroupSegment],
    ) -> _SpanOutcome:
        """Run one span inside a ``shard:<i>`` trace span.

        The shard span's work counters are the exact amounts the worker
        charged to the ledger — recorded via :meth:`Span.add`, never by
        diffing the ledger, which sibling shards mutate concurrently.  With
        no active trace this adds one ``ContextVar`` read over
        :meth:`_run_span`.
        """
        with _trace.span(f"shard:{span_index}") as shard_span:
            outcome = self._run_span(root, table, udf, ledger, tasks)
            shard_span.add("retrievals", outcome.retrieved)
            shard_span.add("udf_evals", outcome.evaluated_charge)
            shard_span.annotate("groups", len(tasks))
        return outcome

    def _run_span(
        self,
        root: int,
        table: Table,
        udf: UserDefinedFunction,
        ledger: CostLedger,
        tasks: List[_GroupSegment],
    ) -> _SpanOutcome:
        """Execute one span's group segments: coins, charge, one bulk UDF call."""
        # Span boundary = cancellation point.  Pool workers run in a copy of
        # the submitting context, so the request's deadline contextvar is
        # visible here; an expired request stops before this span charges.
        check_deadline("execute-span")
        retrieved_per_task, evaluate_per_task, total_retrieved = span_coin_pass(
            root, tasks
        )
        to_evaluate = concat_to_evaluate(retrieved_per_task, evaluate_per_task)

        # Charge the whole span before any of its UDF work (the serial
        # backends' charge-before-evaluate order, at span granularity): a
        # hard budget stops the span before any un-paid-for value could land
        # in the memo cache.  The lock makes concurrent span charges exact.
        evaluated_charge = 0
        with self._ledger_lock:
            if total_retrieved:
                ledger.charge_retrieval(total_retrieved)
            if to_evaluate.size:
                if self.free_memoized:
                    evaluated_charge = int(to_evaluate.size) - int(
                        udf.memoized_mask(to_evaluate).sum()
                    )
                else:
                    evaluated_charge = int(to_evaluate.size)
                if evaluated_charge:
                    ledger.charge_evaluation(evaluated_charge)

        outcomes = (
            udf.evaluate_rows(table, to_evaluate)
            if to_evaluate.size
            else np.empty(0, dtype=bool)
        )

        returned, counts = fold_span_outcomes(
            tasks, retrieved_per_task, evaluate_per_task, outcomes
        )
        return _SpanOutcome(
            returned=returned,
            counts=counts,
            retrieved=total_retrieved,
            evaluated_charge=evaluated_charge,
        )
