"""Process-pool plan execution over shared-memory shards.

:class:`ProcessPoolBatchExecutor` is the multi-core sibling of
:class:`~repro.core.parallel.ParallelBatchExecutor`.  Threads only help while
the per-span work stays inside GIL-releasing NumPy kernels; the moment the
UDF is a python callable evaluated row by row — the paper's whole premise is
that this is the expensive part — a thread pool serialises on the GIL and
runs *slower* than serial.  This executor fans the same span tasks across a
spawn-based process pool instead:

* **Zero-copy inputs** — sealed shard columns are exported once into
  :mod:`multiprocessing.shared_memory` segments (:mod:`repro.db.shm`);
  workers attach numpy views on first touch and reuse them for every later
  task, so per-task pickle traffic is row ids, not column data.
* **Stateless workers** — a worker receives the execution root key, its
  span's :class:`~repro.core.parallel._GroupSegment` tasks and a picklable
  :class:`~repro.db.udf.UdfSpec`; it flips the counter-based coins, evaluates
  the UDF locally (every pending row fresh — it has no memo cache), and
  ships back outcomes plus the folded per-group counts.
* **Parent-side accounting** — the parent replays, span by span in span
  order, exactly what serial execution would have charged: ledger retrieval
  and evaluation charges under the ledger lock (``free_memoized`` consults
  the parent's memo), then
  :meth:`~repro.db.udf.UserDefinedFunction.merge_remote_evaluations` to
  absorb outcomes into the memo cache with serial-identical counter
  advances.  A hard budget trips at the same span boundary as serial, and
  later spans are never absorbed.

Because the PR-4 coin discipline makes every coin a pure function of
(seed, group, position) and UDF outcomes are deterministic, results and every
gated work counter are **bitwise identical** to the serial and thread paths.

Anything that cannot cross the process boundary degrades gracefully to the
inherited in-process path (bitwise-identical results, just not multi-core):
unpicklable UDF callables, object-dtype columns, single-span tables,
``max_workers=1``, and a broken pool (a worker killed by the OOM killer)
all fall back, each counted on
``repro_executor_fallbacks_total{backend=process, reason=...}``.

Resilience (PR 8).  Transient pool faults are survived at *span*
granularity: a span whose worker died, returned a wrong-shaped result or
hit a shared-memory error is retried exactly once against a respawned
pool, and a span that still fails is recomputed in-process **at its serial
position in the fold loop** — charges only ever happen at fold time, in
span-index order, so a retried or locally recomputed span double-charges
nothing and budget boundaries stay bitwise-serial.  Each faulting round is
reported to the service's :class:`~repro.resilience.breaker.CircuitBreaker`
(when one is wired in), which eventually degrades the whole service to the
thread executor.  Harvest waits are bounded by the request's
:class:`~repro.resilience.deadline.Deadline`, so a *hung* worker surfaces
as a typed ``DeadlineExceeded`` — the pool is discarded and the table's
shared-memory exports are released (no leaked segments), never a wedged
request.  The failure paths themselves are exercised deterministically via
:mod:`repro.resilience.faults`; the active :class:`FaultPlan` ships inside
worker task payloads so worker-side sites fire in the right process.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.executor import ExecutionResult, GroupExecutionCounts, _sampled_positives
from repro.core.parallel import (
    _MIN_PARALLEL_EVAL_ROWS,
    ParallelBatchExecutor,
    _GroupSegment,
    _SpanOutcome,
    _table_spans,
    build_span_tasks,
    concat_to_evaluate,
    fold_span_outcomes,
    merge_span_outcomes,
    span_coin_pass,
)
from repro.core.plan import ExecutionPlan
from repro.db.errors import StorageError, UnpicklableUdfError
from repro.db.index import GroupIndex
from repro.db.shm import (
    SpanExport,
    UnshareableColumnError,
    attach_array,
    export_table_spans,
    release_exports,
)
from repro.db.table import Table
from repro.db.udf import CostLedger, UdfSpec, UserDefinedFunction
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.resilience import faults as _faults
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import (
    DeadlineExceeded,
    check_deadline,
    current_deadline,
)
from repro.sampling.sampler import SampleOutcome

_PROC_POOLS: Dict[int, ProcessPoolExecutor] = {}
_PROC_POOLS_LOCK = threading.Lock()


def shared_process_pool(max_workers: int) -> ProcessPoolExecutor:
    """A process-wide spawn pool per worker bound (created lazily).

    Spawn (not fork): workers must not inherit the parent's locks, pools, or
    open trace state, and spawn children share the parent's resource tracker,
    which is what makes the shared-memory cleanup story in
    :mod:`repro.db.shm` single-owner.  Workers are reused across queries, so
    the interpreter start-up cost is paid once per worker bound.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be positive, got {max_workers}")
    pool = _PROC_POOLS.get(max_workers)
    if pool is None:
        with _PROC_POOLS_LOCK:
            pool = _PROC_POOLS.get(max_workers)
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=max_workers,
                    mp_context=multiprocessing.get_context("spawn"),
                )
                _PROC_POOLS[max_workers] = pool
    return pool


def _discard_process_pool(max_workers: int) -> None:
    """Drop (and shut down) a broken cached pool so the next use respawns."""
    with _PROC_POOLS_LOCK:
        pool = _PROC_POOLS.pop(max_workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class _RemoteSpan:
    """What a worker process ships back for one span.

    ``outcome.evaluated_charge`` is left at 0 — the *parent* computes the
    charge (it owns the memo cache that ``free_memoized`` consults) while
    folding.  ``to_evaluate``/``outcomes`` feed
    :meth:`~repro.db.udf.UserDefinedFunction.merge_remote_evaluations`.
    """

    span_index: int
    outcome: _SpanOutcome
    to_evaluate: np.ndarray
    outcomes: np.ndarray


def spec_evaluate(
    spec: UdfSpec, exports: Sequence[SpanExport], row_ids: np.ndarray
) -> np.ndarray:
    """Evaluate a :class:`UdfSpec` on global ``row_ids`` via shared memory.

    Runs in worker processes (and in the pickle-safety check): attaches the
    needed column blocks, then either takes the vectorised label fast path or
    builds python row dicts and calls ``spec.func`` — the exact evaluation
    the parent's ``UserDefinedFunction`` would have performed for
    un-memoised rows.  Row dict values are python scalars (``ndarray.item``),
    matching ``Table.row`` fidelity.
    """
    result = np.empty(row_ids.size, dtype=bool)
    if not row_ids.size:
        return result
    starts = np.asarray([export.start for export in exports], dtype=np.intp)
    span_positions = np.searchsorted(starts, row_ids, side="right") - 1
    for position in np.unique(span_positions):
        export = exports[int(position)]
        mask = span_positions == position
        local = row_ids[mask] - export.start
        if spec.func is None:
            labels = attach_array(export.columns[spec.label_column])
            result[mask] = labels[local] == spec.positive_value
        else:
            arrays = {
                name: attach_array(block) for name, block in export.columns.items()
            }
            names = list(arrays)
            values = np.fromiter(
                (
                    bool(
                        spec.func(
                            {name: arrays[name].item(int(row)) for name in names}
                        )
                    )
                    for row in local
                ),
                dtype=bool,
                count=int(local.size),
            )
            result[mask] = values
    return result


def _remote_run_span(
    root: int,
    span_index: int,
    tasks: List[_GroupSegment],
    spec: UdfSpec,
    exports: Tuple[SpanExport, ...],
    fault_plan: Optional[_faults.FaultPlan] = None,
    attempt: int = 0,
) -> _RemoteSpan:
    """Worker entry point: coins, local UDF evaluation, local fold.

    ``fault_plan`` re-activates the parent's plan in this process (spawned
    workers inherit nothing) so the worker-side sites fire here; ``attempt``
    is part of the ``worker`` site's address, so a first-attempt-only crash
    rule lets the retried span succeed.
    """
    with _faults.fault_scope(fault_plan):
        kind = _faults.maybe_fire(fault_plan, "worker", span_index, attempt)
        retrieved_per_task, evaluate_per_task, total_retrieved = span_coin_pass(
            root, tasks
        )
        to_evaluate = concat_to_evaluate(retrieved_per_task, evaluate_per_task)
        outcomes = spec_evaluate(spec, exports, to_evaluate)
        returned, counts = fold_span_outcomes(
            tasks, retrieved_per_task, evaluate_per_task, outcomes
        )
        if kind == _faults.GARBAGE:
            # Ship a wrong-shaped outcome array: the parent's shape check
            # rejects the whole span before anything is charged or absorbed.
            outcomes = outcomes[:-1] if outcomes.size else np.zeros(1, dtype=bool)
        return _RemoteSpan(
            span_index=span_index,
            outcome=_SpanOutcome(
                returned=returned, counts=counts, retrieved=total_retrieved
            ),
            to_evaluate=to_evaluate,
            outcomes=outcomes,
        )


def _remote_evaluate(
    spec: UdfSpec,
    exports: Tuple[SpanExport, ...],
    row_ids: np.ndarray,
    fault_plan: Optional[_faults.FaultPlan] = None,
) -> np.ndarray:
    """Worker entry point for the bulk-evaluation (sampling/labelling) fan."""
    with _faults.fault_scope(fault_plan):
        return spec_evaluate(spec, exports, row_ids)


class ProcessPoolBatchExecutor(ParallelBatchExecutor):
    """Span-parallel executor running UDF evaluation in worker processes.

    Same results, same gated counters as :class:`ParallelBatchExecutor` —
    only the wall-clock differs: python-callable UDFs scale with cores
    instead of serialising on the GIL.  See the module docstring for the
    division of labour between workers and the parent, and for the fault
    handling added in PR 8 (span retry, breaker reporting, deadline-bounded
    harvest, export release on give-up).
    """

    def __init__(
        self,
        random_state=None,
        max_workers: Optional[int] = None,
        free_memoized: bool = False,
        breaker: Optional[CircuitBreaker] = None,
        retry_spans: bool = True,
    ):
        super().__init__(
            random_state=random_state,
            max_workers=max_workers,
            free_memoized=free_memoized,
        )
        #: The serving layer's circuit breaker, shared across this service's
        #: executors; ``None`` standalone — every note below no-ops then.
        self.breaker = breaker
        #: Retry transiently failed spans once against a respawned pool
        #: before recomputing them in-process.
        self.retry_spans = retry_spans

    def _fallback(self, reason: str) -> None:
        _metrics.counter(
            "repro_executor_fallbacks_total", backend="process", reason=reason
        ).inc()

    def _note_failure(self, reason: str) -> None:
        if self.breaker is not None:
            self.breaker.record_failure(reason)

    def _note_success(self) -> None:
        if self.breaker is not None:
            self.breaker.record_success()

    def _cancel_probe(self) -> None:
        """Release a half-open probe slot this run consumed but never used.

        Non-remote paths (single span, fallback before any worker ran) say
        nothing about pool health, so they must neither close nor re-open
        the breaker — just hand the probe back.
        """
        if self.breaker is not None:
            self.breaker.cancel_probe()

    def _prepare_remote(
        self, table: Table, udf: UserDefinedFunction
    ) -> Optional[Tuple[UdfSpec, Tuple[SpanExport, ...]]]:
        """The picklable spec + span exports, or ``None`` to fall back.

        Residency-managed durable tables export by segment-file coordinates
        (workers ``np.memmap`` the committed payload directly — no
        shared-memory copy, and the parent keeps sole charge of residency);
        everything else takes the shared-memory export path.
        """
        try:
            spec = udf.worker_spec()
        except UnpicklableUdfError:
            self._fallback("unpicklable_udf")
            return None
        if spec.func is None:
            if not table.schema.has_column(spec.label_column):
                # The serial path would use the callable fallback for this
                # table; workers only hold the spec, so stay in-process.
                self._fallback("label_column_missing")
                return None
            columns = [spec.label_column]
        else:
            columns = table.schema.column_names
        try:
            from repro.db.residency import durable_span_exports

            exports = durable_span_exports(table, columns)
        except (StorageError, _faults.InjectedFault, OSError):
            # Verification-time map trouble: note it and serve in-process
            # (the table's own map breaker handles repeated failures).
            self._note_failure("segment_map")
            self._fallback("segment_map")
            return None
        if exports is not None:
            _metrics.counter(
                "repro_executor_direct_attach_total", backend="process"
            ).inc()
            return spec, exports
        try:
            exports = export_table_spans(table, columns)
        except UnshareableColumnError:
            self._fallback("unshareable_column")
            return None
        except (_faults.InjectedFault, OSError):
            # Transient: /dev/shm exhaustion (or its injected stand-in).
            # Note it on the breaker and serve this query in-process.
            self._note_failure("shm_export")
            self._fallback("shm_export")
            return None
        return spec, exports

    def evaluate_rows(
        self, table: Table, udf: UserDefinedFunction, row_ids: Sequence[int]
    ) -> np.ndarray:
        """Evaluate ``udf`` on ``row_ids``, fanned across worker processes.

        Workers evaluate span-partitioned chunks fresh; the parent then folds
        everything through one :meth:`merge_remote_evaluations`, so the memo
        cache and every UDF counter advance exactly as one serial
        ``udf.evaluate_rows`` call would (one bulk call — unlike the thread
        path, which pays one per span chunk).
        """
        ids = np.asarray(row_ids, dtype=np.intp)
        spans = _table_spans(table)
        if (
            self.max_workers == 1
            or len(spans) <= 2  # a single span
            or ids.size < _MIN_PARALLEL_EVAL_ROWS
        ):
            return udf.evaluate_rows(table, ids)
        prepared = self._prepare_remote(table, udf)
        if prepared is None:
            return super().evaluate_rows(table, udf, ids)
        spec, exports = prepared
        masks = []
        for start, stop in zip(spans, spans[1:]):
            mask = (ids >= start) & (ids < stop)
            if mask.any():
                masks.append(mask)
        if len(masks) <= 1:
            return udf.evaluate_rows(table, ids)
        pool = shared_process_pool(self.max_workers)
        fault_plan = _faults.active_plan()
        futures = [
            pool.submit(_remote_evaluate, spec, exports, ids[mask], fault_plan)
            for mask in masks
        ]
        outcomes = np.empty(ids.size, dtype=bool)
        deadline = current_deadline()
        try:
            for mask, future in zip(masks, futures):
                if deadline is None:
                    outcomes[mask] = future.result()
                else:
                    remaining = deadline.remaining()
                    if remaining <= 0.0:
                        raise FuturesTimeout()
                    outcomes[mask] = future.result(timeout=remaining)
        except FuturesTimeout:
            # A hung worker cannot be interrupted; abandon the whole pool
            # (and its exports — no leaked segments) and surface the typed
            # deadline error within deadline + scheduling grace.
            for pending in futures:
                pending.cancel()
            _discard_process_pool(self.max_workers)
            release_exports(table)
            self._note_failure("worker_hang")
            self._fallback("worker_hang")
            raise DeadlineExceeded(deadline.timeout_s, "process-pool evaluate")
        except BrokenProcessPool:
            _discard_process_pool(self.max_workers)
            release_exports(table)
            self._note_failure("worker_crash")
            self._fallback("broken_pool")
            return super().evaluate_rows(table, udf, ids)
        except (_faults.InjectedFault, OSError):
            self._note_failure("shm_attach")
            self._fallback("shm_attach")
            return super().evaluate_rows(table, udf, ids)
        return udf.merge_remote_evaluations(ids, outcomes)

    def _harvest_spans(
        self,
        futures: Dict[int, "object"],
        results: Dict[int, _RemoteSpan],
        table: Table,
    ) -> Dict[int, str]:
        """Drain span futures into ``results``; classify transient failures.

        Returns ``{span_index: reason}`` for spans that failed transiently
        (worker crash, shm attach error, wrong-shaped result).  Fatal errors
        re-raise only after every future has settled — nothing mutates the
        ledger or memo until folding, so an abort leaves parent state
        untouched.  With an active deadline every wait is bounded by the
        remaining time: a *hung* worker abandons the pool (discard, cancel,
        release this table's exports — no leaked segments) and raises the
        typed ``DeadlineExceeded`` instead of wedging the request.
        """
        deadline = current_deadline()
        failed: Dict[int, str] = {}
        fatal: Optional[BaseException] = None
        broken = False
        for span_index, future in futures.items():
            try:
                if deadline is None:
                    span = future.result()
                else:
                    remaining = deadline.remaining()
                    if remaining <= 0.0:
                        raise FuturesTimeout()
                    span = future.result(timeout=remaining)
            except FuturesTimeout:
                for pending in futures.values():
                    pending.cancel()
                _discard_process_pool(self.max_workers)
                release_exports(table)
                self._note_failure("worker_hang")
                self._fallback("worker_hang")
                raise DeadlineExceeded(deadline.timeout_s, "process-pool harvest")
            except BrokenProcessPool:
                broken = True
                failed[span_index] = "worker_crash"
            except (_faults.InjectedFault, OSError):
                failed[span_index] = "shm_attach"
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if fatal is None:
                    fatal = exc
            else:
                if span.outcomes.shape != span.to_evaluate.shape:
                    failed[span_index] = "garbage"
                else:
                    results[span_index] = span
        if broken:
            _discard_process_pool(self.max_workers)
        if fatal is not None:
            raise fatal
        return failed

    def _run_remote_spans(
        self,
        active: List[Tuple[int, List[_GroupSegment]]],
        root: int,
        spec: UdfSpec,
        exports: Tuple[SpanExport, ...],
        table: Table,
    ) -> Tuple[Dict[int, _RemoteSpan], Set[int]]:
        """Fan spans to the pool; retry transient failures exactly once.

        Returns successful spans by index plus the indices that must be
        recomputed in-process at fold time.  Each faulting round notes one
        failure on the breaker; a fully clean remote run notes a success.
        Retried spans re-flip the same counter-addressed coins, and charges
        only happen at fold — so a retry can never double-charge.
        """
        fault_plan = _faults.active_plan()
        results: Dict[int, _RemoteSpan] = {}
        pool = shared_process_pool(self.max_workers)
        futures = {
            span_index: pool.submit(
                _remote_run_span, root, span_index, tasks, spec, exports, fault_plan, 0
            )
            for span_index, tasks in active
        }
        failed = self._harvest_spans(futures, results, table)
        if failed:
            self._note_failure(sorted(failed.values())[0])
            if self.retry_spans:
                # Retry against a (re)spawned pool.  Exports stay linked
                # until a give-up: unlinking here would strand the fresh
                # workers' attaches.
                tasks_by_index = dict(active)
                pool = shared_process_pool(self.max_workers)
                retry_futures = {
                    span_index: pool.submit(
                        _remote_run_span,
                        root,
                        span_index,
                        tasks_by_index[span_index],
                        spec,
                        exports,
                        fault_plan,
                        1,
                    )
                    for span_index in sorted(failed)
                }
                _metrics.counter(
                    "repro_executor_retried_spans_total", backend="process"
                ).inc(len(retry_futures))
                if self.breaker is not None:
                    self.breaker.record_retry(len(retry_futures))
                failed = self._harvest_spans(retry_futures, results, table)
                if failed:
                    self._note_failure(sorted(failed.values())[0])
        if failed:
            # Give up on the pool for these spans: they recompute in-process
            # at fold time, and the suspect exports must not outlive the
            # failure (the leak-check invariant: zero segments after
            # teardown, even on degraded paths).
            self._fallback(sorted(failed.values())[0])
            release_exports(table)
        elif results:
            self._note_success()
        return results, set(failed)

    def execute(
        self,
        table: Table,
        index: GroupIndex,
        udf: UserDefinedFunction,
        plan: ExecutionPlan,
        ledger: CostLedger,
        sample_outcome: Optional[SampleOutcome] = None,
    ) -> ExecutionResult:
        """Run ``plan`` with span workers in processes (see module doc)."""
        if self.max_workers == 1:
            self._cancel_probe()
            return super().execute(table, index, udf, plan, ledger, sample_outcome)
        prepared = self._prepare_remote(table, udf)
        if prepared is None:
            self._cancel_probe()
            return super().execute(table, index, udf, plan, ledger, sample_outcome)
        spec, exports = prepared

        _metrics.counter("repro_executor_runs_total", backend="process").inc()
        root = int(self.random_state.integers(0, 2**63))
        sampled_ids, free_positives = _sampled_positives(sample_outcome)
        span_tasks, group_counts = build_span_tasks(index, plan, sampled_ids)
        active = [
            (span_index, tasks)
            for span_index, tasks in enumerate(span_tasks)
            if tasks
        ]

        if len(active) <= 1:
            self._cancel_probe()
            outcomes = [
                self._run_span_traced(span_index, root, table, udf, ledger, tasks)
                for span_index, tasks in active
            ]
            returned = merge_span_outcomes(index, outcomes, group_counts, free_positives)
            return ExecutionResult(
                returned_row_ids=returned, ledger=ledger, group_counts=group_counts
            )

        remote, failed = self._run_remote_spans(active, root, spec, exports, table)

        # Fold in span-index order (the submit order), replaying serial
        # charging: retrieval then evaluation per span, under the ledger
        # lock, *before* that span's outcomes are absorbed — so a hard
        # budget raises at exactly the span boundary the serial loop would,
        # with no later span absorbed.  A span the pool failed twice is
        # recomputed in-process *here, at its serial position* (it charges
        # internally), so the charge order — and any budget trip point —
        # stays bitwise-serial whether or not faults occurred.
        outcomes = []
        for span_index, tasks in active:
            check_deadline("process-fold")
            if span_index in failed:
                outcomes.append(
                    self._run_span_traced(span_index, root, table, udf, ledger, tasks)
                )
                continue
            span = remote[span_index]
            with _trace.span(f"shard:{span.span_index}") as shard_span:
                evaluated_charge = 0
                with self._ledger_lock:
                    if span.outcome.retrieved:
                        ledger.charge_retrieval(span.outcome.retrieved)
                    if span.to_evaluate.size:
                        if self.free_memoized:
                            evaluated_charge = int(span.to_evaluate.size) - int(
                                udf.memoized_mask(span.to_evaluate).sum()
                            )
                        else:
                            evaluated_charge = int(span.to_evaluate.size)
                        if evaluated_charge:
                            ledger.charge_evaluation(evaluated_charge)
                if span.to_evaluate.size:
                    udf.merge_remote_evaluations(span.to_evaluate, span.outcomes)
                span.outcome.evaluated_charge = evaluated_charge
                shard_span.add("retrievals", span.outcome.retrieved)
                shard_span.add("udf_evals", evaluated_charge)
                shard_span.annotate("groups", len(span.outcome.counts))
            outcomes.append(span.outcome)

        returned = merge_span_outcomes(index, outcomes, group_counts, free_positives)
        return ExecutionResult(
            returned_row_ids=returned, ledger=ledger, group_counts=group_counts
        )
