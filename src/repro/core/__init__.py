"""The paper's core contribution: correlation-aware expensive-predicate evaluation.

Public surface:

* data model — :class:`GroupStatistics`, :class:`SelectivityModel`,
  :class:`QueryConstraints`, :class:`CostModel`, :class:`ExecutionPlan`,
* optimizers — :func:`solve_perfect_information` (Section 3.1),
  :func:`solve_perfect_selectivity_lp` and :func:`solve_bigreedy`
  (Section 3.2), :func:`solve_estimated_selectivity` (Section 3.3),
  :func:`solve_with_samples` (Section 4.2),
* execution — :class:`BatchExecutor` (vectorised default),
  :class:`ParallelBatchExecutor` (sharded, thread-parallel scale-out),
  :class:`ProcessPoolBatchExecutor` (multi-core over shared-memory shards)
  and :class:`PlanExecutor` (tuple-at-a-time reference); strategies that
  accept an injected backend implement the :class:`ExecutorAware` protocol,
* end-to-end strategies — :class:`IntelSample`, :class:`AdaptiveIntelSample`,
  :class:`OptimalOracle`,
* column selection — :func:`select_correlated_column`,
  :func:`build_virtual_column`, and
* extensions — budget-constrained, multi-predicate and join-aware variants in
  :mod:`repro.core.extensions`.
"""

from repro.core.adaptive import AdaptiveIntelSample, AdaptiveReport, AdaptiveRound
from repro.core.bigreedy import bigreedy_feasibility_conditions, solve_bigreedy
from repro.core.column_selection import (
    ColumnSelectionResult,
    LabeledSample,
    VirtualColumnResult,
    build_virtual_column,
    candidate_correlated_columns,
    draw_labeled_sample,
    estimate_column_cost,
    select_correlated_column,
)
from repro.core.constraints import CostModel, QueryConstraints
from repro.core.estimated import EstimatedSolution, solve_estimated_selectivity
from repro.core.executor import (
    BatchExecutor,
    ExecutionResult,
    ExecutorAware,
    ExecutorBackend,
    GroupExecutionCounts,
    PlanExecutor,
)
from repro.core.parallel import ParallelBatchExecutor, default_max_workers, shared_pool
from repro.core.procpool import ProcessPoolBatchExecutor
from repro.core.groups import GroupStatistics, SelectivityModel
from repro.core.hoeffding_lp import (
    LpSolution,
    SelectivityMargins,
    compute_margins,
    solve_perfect_selectivity_lp,
)
from repro.core.perfect_info import (
    PerfectInformationSolution,
    greedy_perfect_information,
    knapsack_to_perfect_information,
    solve_perfect_information,
)
from repro.core.pipeline import IntelSample, IntelSampleReport, OptimalOracle
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.core.sampling_program import (
    SamplingProgramSolution,
    solve_from_model,
    solve_with_samples,
    solve_with_shard_outcomes,
)

__all__ = [
    "GroupStatistics",
    "SelectivityModel",
    "QueryConstraints",
    "CostModel",
    "ExecutionPlan",
    "GroupDecision",
    "PerfectInformationSolution",
    "solve_perfect_information",
    "greedy_perfect_information",
    "knapsack_to_perfect_information",
    "LpSolution",
    "SelectivityMargins",
    "compute_margins",
    "solve_perfect_selectivity_lp",
    "solve_bigreedy",
    "bigreedy_feasibility_conditions",
    "EstimatedSolution",
    "solve_estimated_selectivity",
    "SamplingProgramSolution",
    "solve_with_samples",
    "solve_with_shard_outcomes",
    "solve_from_model",
    "PlanExecutor",
    "BatchExecutor",
    "ParallelBatchExecutor",
    "ProcessPoolBatchExecutor",
    "default_max_workers",
    "shared_pool",
    "ExecutorAware",
    "ExecutorBackend",
    "ExecutionResult",
    "GroupExecutionCounts",
    "IntelSample",
    "IntelSampleReport",
    "OptimalOracle",
    "AdaptiveIntelSample",
    "AdaptiveReport",
    "AdaptiveRound",
    "LabeledSample",
    "ColumnSelectionResult",
    "VirtualColumnResult",
    "draw_labeled_sample",
    "candidate_correlated_columns",
    "estimate_column_cost",
    "select_correlated_column",
    "build_virtual_column",
]
