"""Query constraints and cost model (paper Section 2)."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class QueryConstraints:
    """User-specified accuracy requirements.

    Attributes
    ----------
    alpha:
        Precision lower bound.
    beta:
        Recall lower bound.
    rho:
        Satisfaction probability: both bounds must hold with probability at
        least ``rho`` under the randomness of the execution strategy and (when
        applicable) the selectivity estimates.
    """

    alpha: float = 0.8
    beta: float = 0.8
    rho: float = 0.8

    def __post_init__(self) -> None:
        for name, value in (("alpha", self.alpha), ("beta", self.beta)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 <= self.rho < 1.0:
            raise ValueError(
                f"rho must be in [0, 1); probability-1 guarantees require "
                f"evaluating every tuple (got {self.rho})"
            )

    @property
    def requires_perfect_precision(self) -> bool:
        """The "browsing scenario": every returned tuple must be verified."""
        return self.alpha >= 1.0

    @property
    def requires_perfect_recall(self) -> bool:
        """Every correct tuple must be returned."""
        return self.beta >= 1.0

    def with_rho(self, rho: float) -> "QueryConstraints":
        """Copy with a different satisfaction probability."""
        return replace(self, rho=rho)

    def with_alpha(self, alpha: float) -> "QueryConstraints":
        """Copy with a different precision bound."""
        return replace(self, alpha=alpha)

    def with_beta(self, beta: float) -> "QueryConstraints":
        """Copy with a different recall bound."""
        return replace(self, beta=beta)


@dataclass(frozen=True)
class CostModel:
    """Unit costs: ``o_r`` per retrieved tuple and ``o_e`` per UDF evaluation.

    The paper's experiments use ``o_r = 1`` and ``o_e = 3``; results are not
    very sensitive to the ratio because UDF evaluations dominate either way.
    """

    retrieval_cost: float = 1.0
    evaluation_cost: float = 3.0

    def __post_init__(self) -> None:
        if self.retrieval_cost < 0 or self.evaluation_cost < 0:
            raise ValueError("unit costs must be non-negative")

    def plan_cost(self, retrievals: float, evaluations: float) -> float:
        """Total cost of a given number of retrievals and evaluations."""
        return retrievals * self.retrieval_cost + evaluations * self.evaluation_cost

    @property
    def evaluation_to_retrieval_ratio(self) -> float:
        """How much more expensive an evaluation is than a retrieval."""
        if self.retrieval_cost == 0:
            return float("inf") if self.evaluation_cost > 0 else 1.0
        return self.evaluation_cost / self.retrieval_cost
