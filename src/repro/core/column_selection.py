"""Finding the correlated column (paper Section 4.4).

Two strategies, both bootstrapped from a small uniformly-drawn labelled sample
(the paper uses ~1% of the table):

* **real column**: for every candidate categorical column with at most
  ``sqrt(t)`` distinct values (``t`` = labelled-sample size), estimate each
  group's selectivity from the labelled rows, run the Section 3.2 optimizer as
  if those estimates were exact, and pick the column with the smallest
  estimated cost;
* **virtual column**: train a logistic regressor from the table's available
  columns to the labels, score every tuple, and split tuples into
  equal-frequency probability buckets; the bucket id is the correlated column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bigreedy import solve_bigreedy
from repro.core.constraints import CostModel, QueryConstraints
from repro.core.groups import SelectivityModel
from repro.db.column import Column, ColumnType
from repro.db.index import GroupIndex
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.ml.bucketer import ScoreBucketer
from repro.ml.features import FeatureEncoder
from repro.ml.logistic import LogisticRegression
from repro.sampling.sampler import GroupSample, SampleOutcome
from repro.solvers.linear import InfeasibleProblemError
from repro.stats.beta import BetaPosterior
from repro.stats.random import (
    SeedLike,
    as_random_state,
    counter_uniforms,
    stream_key,
)


@dataclass
class LabeledSample:
    """A uniformly drawn set of rows whose UDF value has been paid for."""

    outcomes: Dict[int, bool] = field(default_factory=dict)

    @property
    def row_ids(self) -> List[int]:
        """Row ids of the labelled rows."""
        return list(self.outcomes.keys())

    @property
    def size(self) -> int:
        """Number of labelled rows."""
        return len(self.outcomes)

    @property
    def positives(self) -> List[int]:
        """Labelled rows that satisfied the predicate."""
        return [row_id for row_id, outcome in self.outcomes.items() if outcome]

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The labelled rows as parallel ``(row_ids, outcomes)`` arrays."""
        ids = np.fromiter(self.outcomes.keys(), dtype=np.intp, count=len(self.outcomes))
        flags = np.fromiter(
            self.outcomes.values(), dtype=bool, count=len(self.outcomes)
        )
        return ids, flags

    def to_sample_outcome(self, index: GroupIndex) -> SampleOutcome:
        """Re-express the labelled rows as a per-group :class:`SampleOutcome`.

        This lets the pipeline reuse the labelled rows both as selectivity
        evidence and as already-paid-for output for whichever correlated
        column ends up being chosen.  Group membership comes from the index's
        per-row codes — one vectorised gather instead of a membership dict
        over the whole table.
        """
        by_group: Dict = {
            key: GroupSample(group_key=key, group_size=len(row_ids))
            for key, row_ids in index.items()
        }
        if not self.outcomes:
            return SampleOutcome(samples=by_group)
        labeled_ids, flags = self.as_arrays()
        # Labelled rows outside the indexed table (e.g. a sample drawn on the
        # full table re-expressed against a sub-table's index) are skipped,
        # matching the historical membership-dict behaviour.
        in_range = (labeled_ids >= 0) & (labeled_ids < index.total_rows())
        if not in_range.all():
            labeled_ids, flags = labeled_ids[in_range], flags[in_range]
            if not labeled_ids.size:
                return SampleOutcome(samples=by_group)
        codes = index.codes_for_rows(labeled_ids)
        keys = index.values
        for row_id, code, outcome in zip(
            labeled_ids.tolist(), codes.tolist(), flags.tolist()
        ):
            sample = by_group[keys[code]]
            sample.sampled_row_ids.append(row_id)
            if outcome:
                sample.positive_row_ids.append(row_id)
        return SampleOutcome(samples=by_group)


def draw_labeled_sample(
    table: Table,
    udf: UserDefinedFunction,
    ledger: CostLedger,
    fraction: float = 0.01,
    minimum_size: int = 50,
    random_state: SeedLike = None,
    bulk_evaluator: Optional[Callable[[Table, np.ndarray], np.ndarray]] = None,
) -> LabeledSample:
    """Uniformly sample rows and evaluate the UDF on them (charging costs).

    ``bulk_evaluator`` optionally replaces ``udf.evaluate_rows`` for the
    batched evaluation (the parallel executor's shard fan-out); row selection
    stays on this function's stream, so the drawn sample is identical either
    way.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = as_random_state(random_state)
    count = max(minimum_size, int(round(fraction * table.num_rows)))
    count = min(count, table.num_rows)
    chosen = np.atleast_1d(rng.choice(table.num_rows, size=count, replace=False))
    # Bulk charge + one batched UDF call: identical counter/ledger totals to
    # the historical per-row loop, minus the per-tuple python overhead.
    ledger.charge_retrieval(int(chosen.size))
    ledger.charge_evaluation(int(chosen.size))
    evaluate = bulk_evaluator if bulk_evaluator is not None else udf.evaluate_rows
    outcomes = evaluate(table, chosen)
    sample = LabeledSample()
    sample.outcomes.update(zip(chosen.tolist(), outcomes.tolist()))
    return sample


#: Phase tags separating the admission and eviction coin streams of the
#: reservoir top-up (mirroring the parallel executor's phase discipline).
_RESERVOIR_ADMIT = 0
_RESERVOIR_EVICT = 1


def top_up_labeled_sample(
    table: Table,
    udf: UserDefinedFunction,
    ledger: CostLedger,
    labeled: LabeledSample,
    previous_rows: int,
    fraction: float = 0.01,
    minimum_size: int = 50,
    stream_seed: int = 0,
    bulk_evaluator: Optional[Callable[[Table, np.ndarray], np.ndarray]] = None,
) -> LabeledSample:
    """Reservoir-style top-up of a labelled sample after rows were appended.

    ``labeled`` was drawn over the table's first ``previous_rows`` rows; the
    rows appended since (``previous_rows .. table.num_rows``) stream through
    a reservoir update so the sample keeps tracking the grown table, while
    **UDF evaluations are charged only for newly admitted delta rows** —
    never for the rows whose labels were already paid for.

    The coins are *counter-based* (position-addressable SplitMix64 streams
    keyed by ``stream_seed``, see :func:`repro.stats.random.counter_uniforms`):
    the admission and eviction coins of delta row ``i`` are pure functions of
    ``(stream_seed, i)``, so topping up after one big append and topping up
    after the same rows arrived in many small appends produce **bitwise
    identical samples**.  The reservoir target grows with the table
    (``max(minimum_size, round(fraction * rows_seen))``), so the maintained
    sample is the classic uniform reservoir while the target is flat and a
    slightly delta-favouring approximation while it grows — good enough for
    the column-selection heuristics it feeds, and pinned deterministic by
    tests either way.

    Returns a new :class:`LabeledSample`; ``labeled`` is left untouched.
    Evicted old rows keep their memoised UDF values, so readmitting them
    later costs nothing.
    """
    total_rows = table.num_rows
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if not 0 <= previous_rows <= total_rows:
        raise ValueError(
            f"previous_rows must be within [0, {total_rows}], got {previous_rows}"
        )
    delta_rows = total_rows - previous_rows
    if delta_rows == 0:
        return LabeledSample(outcomes=dict(labeled.outcomes))

    # Reservoir state: the member list in ascending row-id order.  The order
    # is part of the deterministic state (eviction indexes into it), and
    # ascending order is the one ordering a later top-up can *reconstruct*
    # from the stored sample — admitted rows always exceed every existing
    # member, so pop-and-append keeps the list sorted, which is what makes
    # chunked appends bitwise identical to one big append.
    reservoir: List[int] = sorted(labeled.outcomes.keys())
    admit_coins = counter_uniforms(
        stream_key(stream_seed, _RESERVOIR_ADMIT), previous_rows, delta_rows
    )
    evict_coins = counter_uniforms(
        stream_key(stream_seed, _RESERVOIR_EVICT), previous_rows, delta_rows
    )
    for position, row_id in enumerate(range(previous_rows, total_rows)):
        seen = row_id + 1
        target = min(seen, max(minimum_size, int(round(fraction * seen))))
        if len(reservoir) < target:
            reservoir.append(row_id)
            continue
        if admit_coins[position] * seen < target:
            evicted = int(evict_coins[position] * len(reservoir))
            reservoir.pop(min(evicted, len(reservoir) - 1))
            reservoir.append(row_id)
    members = set(reservoir)

    # Charge and evaluate only the *surviving newly admitted* rows (their
    # labels were never paid for); survivors of the old sample carry their
    # existing labels over for free.
    fresh = np.asarray(
        sorted(row_id for row_id in members if row_id not in labeled.outcomes),
        dtype=np.intp,
    )
    outcomes: Dict[int, bool] = {
        row_id: outcome
        for row_id, outcome in labeled.outcomes.items()
        if row_id in members
    }
    if fresh.size:
        ledger.charge_retrieval(int(fresh.size))
        ledger.charge_evaluation(int(fresh.size))
        evaluate = bulk_evaluator if bulk_evaluator is not None else udf.evaluate_rows
        flags = evaluate(table, fresh)
        outcomes.update(zip(fresh.tolist(), flags.tolist()))
    return LabeledSample(outcomes=outcomes)


# ---------------------------------------------------------------------------
# Real-column selection
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnSelectionResult:
    """Outcome of the correlated-column search."""

    best_column: str
    estimated_costs: Dict[str, float]
    candidate_columns: List[str]


def _column_cardinality(table: Table, column: str) -> int:
    """Distinct-value count of a column, vectorised where numpy can sort it.

    Scans shard-at-a-time (resident segments first) and unions the
    per-shard distinct sets, so a lazy durable table never needs the whole
    column mapped at once; the union of per-shard uniques is exactly the
    global distinct set.
    """
    from repro.db.residency import iter_column_spans

    try:
        distinct: set = set()
        for _start, _stop, values in iter_column_spans(table, column):
            distinct.update(np.unique(values).tolist())
        return len(distinct)
    except TypeError:  # mixed-type object columns numpy cannot sort
        return table.num_distinct(column)


def candidate_correlated_columns(
    table: Table,
    labeled_size: int,
    exclude_columns: Sequence[str] = (),
    hard_cap: int = 50,
) -> List[str]:
    """Categorical columns eligible to be the correlated column.

    The paper restricts attention to columns with at most ``sqrt(t)`` distinct
    values where ``t`` is the labelled-sample size; if nothing qualifies the
    cap is relaxed up to ``hard_cap`` (mirroring "keep increasing t").
    """
    excluded = set(exclude_columns)
    categorical = [
        column.name
        for column in table.schema.categorical_columns()
        if column.name not in excluded
    ]
    # sqrt(t) distinct values at most, but never below 10 so that small labelled
    # samples (scaled-down datasets, tests) do not exclude every real column.
    soft_cap = max(10, int(math.sqrt(max(labeled_size, 1))))
    # Cheap vectorised cardinality check first — a full GroupIndex is only
    # built (and cached on the table) for columns that can actually qualify;
    # near-unique columns are discarded without paying O(rows) per group.
    cardinality = {name: _column_cardinality(table, name) for name in categorical}
    for cap in (soft_cap, hard_cap):
        qualifying = [
            name for name in categorical if 2 <= cardinality[name] <= cap
        ]
        if qualifying:
            return qualifying
    return []


def estimate_column_cost(
    table: Table,
    column: str,
    labeled: LabeledSample,
    constraints: QueryConstraints,
    cost_model: CostModel = CostModel(),
) -> float:
    """Estimated query cost if ``column`` is used as the correlated column.

    Selectivities are estimated from the labelled rows falling in each group
    (Beta-posterior means) and fed to the Section 3.2 optimizer as if exact;
    an infeasible optimization falls back to the evaluate-everything cost so
    that uninformative columns are never preferred.
    """
    labeled_ids, labeled_flags = labeled.as_arrays()
    return _estimate_column_cost_from_arrays(
        table, column, labeled_ids, labeled_flags, constraints, cost_model
    )


def _estimate_column_cost_from_arrays(
    table: Table,
    column: str,
    labeled_ids: np.ndarray,
    labeled_flags: np.ndarray,
    constraints: QueryConstraints,
    cost_model: CostModel,
) -> float:
    """Cost estimate sharing one factorised labelled sample across columns.

    The labelled rows are factorised against the column's shared
    :class:`GroupIndex` with two ``bincount`` calls, so evaluating a new
    candidate column never re-walks the table — this is what makes the
    column search O(columns) instead of O(columns × rows).
    """
    index = table.group_index(column)
    totals, positives = index.label_counts(labeled_ids, labeled_flags)
    sizes = index.group_sizes()
    selectivities = {
        key: BetaPosterior(
            positives=int(positives[code]),
            negatives=int(totals[code] - positives[code]),
        ).mean
        for code, key in enumerate(index.values)
    }
    model = SelectivityModel.from_selectivities(sizes, selectivities)
    try:
        solution = solve_bigreedy(model, constraints, cost_model)
    except InfeasibleProblemError:
        return cost_model.plan_cost(table.num_rows, table.num_rows)
    return solution.expected_cost


def select_correlated_column(
    table: Table,
    labeled: LabeledSample,
    constraints: QueryConstraints,
    cost_model: CostModel = CostModel(),
    candidate_columns: Optional[Sequence[str]] = None,
    exclude_columns: Sequence[str] = (),
) -> ColumnSelectionResult:
    """Pick the candidate column with the lowest estimated query cost."""
    candidates = (
        list(candidate_columns)
        if candidate_columns is not None
        else candidate_correlated_columns(table, labeled.size, exclude_columns)
    )
    if not candidates:
        raise ValueError(
            "no candidate correlated columns found; consider building a virtual "
            "column with build_virtual_column()"
        )
    # One factorised labelled sample shared by every candidate column: the
    # (row_ids, outcomes) arrays are built once, each column then groups them
    # with two bincounts over its cached index.
    labeled_ids, labeled_flags = labeled.as_arrays()
    costs = {
        column: _estimate_column_cost_from_arrays(
            table, column, labeled_ids, labeled_flags, constraints, cost_model
        )
        for column in candidates
    }
    best = min(costs, key=costs.get)
    return ColumnSelectionResult(
        best_column=best, estimated_costs=costs, candidate_columns=candidates
    )


# ---------------------------------------------------------------------------
# Virtual column via logistic regression
# ---------------------------------------------------------------------------
@dataclass
class VirtualColumnResult:
    """A logistic-regression-derived correlated column added to the table."""

    table: Table
    column_name: str
    model: LogisticRegression
    encoder: FeatureEncoder
    bucketer: ScoreBucketer
    scores: List[float]


def build_virtual_column(
    table: Table,
    labeled: LabeledSample,
    num_buckets: int = 10,
    column_name: str = "udf_score_bucket",
    exclude_columns: Sequence[str] = (),
    max_categorical_cardinality: int = 50,
    random_state: SeedLike = None,
) -> VirtualColumnResult:
    """Train a logistic regressor on the labelled rows and bucket its scores.

    Returns a copy of the table with the bucket id as a new categorical
    column, ready to be used as the correlated attribute.
    """
    if labeled.size == 0:
        raise ValueError("cannot build a virtual column from an empty labelled sample")
    encoder = FeatureEncoder(
        max_categorical_cardinality=max_categorical_cardinality,
        exclude_columns=tuple(exclude_columns) + ("record_id",),
    )
    labeled_ids = labeled.row_ids
    features = encoder.fit_transform(table, labeled_ids)
    labels = [1 if labeled.outcomes[row_id] else 0 for row_id in labeled_ids]

    model = LogisticRegression(random_state=random_state)
    model.fit(features, labels)

    all_features = encoder.transform(table)
    scores = model.predict_proba(all_features)

    bucketer = ScoreBucketer(num_buckets=num_buckets)
    training_scores = model.predict_proba(features)
    bucketer.fit(training_scores)
    buckets = bucketer.transform(scores)

    new_column = Column(
        name=column_name,
        column_type=ColumnType.CATEGORICAL,
        description="logistic-regression probability bucket (virtual correlated column)",
    )
    augmented = table.with_column(new_column, [f"b{b}" for b in buckets])
    return VirtualColumnResult(
        table=augmented,
        column_name=column_name,
        model=model,
        encoder=encoder,
        bucketer=bucketer,
        scores=[float(s) for s in scores],
    )
